"""Shared helpers for the figure benchmarks: synthetic no-op campaigns and
formatting utilities."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.apps import AppMethod, TopicPolicy, build_workflow
from repro.core.result import Result
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, Testbed, build_paper_testbed
from repro.serialize import Blob


def noop_task(payload=None):
    """The synthetic no-input-processing task of §V-C."""
    return None


@dataclass
class NoopRun:
    config: str
    payload_bytes: int
    results: list[Result]

    def median(self, attribute: str) -> float:
        values = [
            getattr(r, attribute)
            for r in self.results
            if getattr(r, attribute) is not None
        ]
        return statistics.median(values) if values else float("nan")

    def mean(self, attribute: str) -> float:
        values = [
            getattr(r, attribute)
            for r in self.results
            if getattr(r, attribute) is not None
        ]
        return statistics.fmean(values) if values else float("nan")


def run_noop_campaign(
    config: str,
    *,
    payload_bytes: int = 10_000,
    n_tasks: int = 30,
    threshold: int | None = 0,
    locality: str = "local",
    resource: str = "cpu",
    n_workers: int = 2,
    max_outstanding: int = 4,
    testbed: Testbed | None = None,
    constants: PaperConstants | None = None,
    seed: int = 0,
) -> NoopRun:
    """Run ``n_tasks`` no-op tasks with ``payload_bytes`` inputs and collect
    their Result ledgers.

    ``threshold=0`` proxies everything (the Fig. 3 setting); ``None``
    disables proxying.  ``max_outstanding`` bounds concurrency so component
    medians reflect per-task latency rather than queue backlog.
    """
    testbed = testbed or build_paper_testbed(seed=seed)
    topic = "bench"
    methods = [AppMethod(noop_task, resource=resource, topic=topic)]
    policies = {topic: TopicPolicy(locality=locality, threshold=threshold)}
    handle = build_workflow(
        config,
        testbed,
        methods,
        policies,
        n_cpu_workers=n_workers if resource == "cpu" else 1,
        n_gpu_workers=n_workers if resource == "gpu" else 1,
    )
    results: list[Result] = []
    with handle:
        with at_site(testbed.theta_login):
            outstanding = 0
            submitted = 0
            while len(results) < n_tasks:
                while outstanding < max_outstanding and submitted < n_tasks:
                    handle.queues.send_request(
                        "noop_task", args=(Blob(payload_bytes),), topic=topic
                    )
                    submitted += 1
                    outstanding += 1
                result = handle.queues.get_result(topic, timeout=240)
                assert result is not None, "benchmark task timed out"
                assert result.success, result.error
                result.access_value()
                results.append(result)
                outstanding -= 1
    return NoopRun(config=config, payload_bytes=payload_bytes, results=results)


def fmt_s(value: float) -> str:
    """Format seconds compactly (µs/ms/s)."""
    if value != value:  # NaN
        return "n/a"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.0f}ms"
    return f"{value:.2f}s"
