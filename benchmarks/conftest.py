"""Benchmark harness fixtures.

Benchmarks run the simulator at a small time scale (1 nominal second =
4 ms wall) and write their paper-vs-measured tables to
``benchmarks/results/`` as well as stdout.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.apps.environment import clear_software
from repro.batch.reactor import reset_reactor
from repro.bench.recording import set_global_log
from repro.net.clock import reset_clock
from repro.proxystore.store import clear_store_registry

BENCH_TIME_SCALE = 0.004

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def bench_state():
    reset_reactor()
    reset_clock(BENCH_TIME_SCALE)
    clear_store_registry()
    clear_software()
    set_global_log(None)
    yield
    set_global_log(None)
    clear_store_registry()
    clear_software()


@pytest.fixture
def report_sink():
    """Write a rendered report table to the results directory and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(name: str, table) -> None:
        text = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text + "\n")

    return sink
