"""Ablations of the design choices DESIGN.md calls out.

Each ablation corresponds to an explicit recommendation or observation in
the paper:

* **Proxy threshold** (§V-E2): proxying sub-threshold messages costs more
  than sending them by value — "our application could be accelerated by
  avoiding the overhead of proxying small messages".
* **Task backlog** (§V-E1): "utilization can be improved even further by
  submitting at least one more simulation task ... than there are CPU
  workers available".
* **Concurrent-transfer limit** (§V-D1): transfers queue behind the
  per-user limit; fusing (or raising the limit) removes the stall.
* **Ahead-of-time staging + caching** (§V-D3): re-used objects resolve from
  the per-site cache instead of re-crossing the wire.
"""

from __future__ import annotations

import statistics

import pytest

from common import fmt_s, run_noop_campaign
from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign
from repro.bench.reporting import ReportTable
from repro.net.clock import get_clock, reset_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.proxystore import GlobusConnector, Store
from repro.serialize import Blob
from repro.transfer import TransferClient, TransferEndpoint, TransferService


@pytest.mark.benchmark(group="ablations")
def test_ablation_proxy_threshold(benchmark, report_sink):
    """Small (20 kB) payloads: by-value vs forced proxying on Parsl+Redis."""
    runs = {}

    def run():
        for label, threshold in (("by-value", None), ("proxied", 0)):
            reset_clock()
            runs[label] = run_noop_campaign(
                "parsl+redis",
                payload_bytes=20_000,
                n_tasks=20,
                threshold=threshold,
                locality="local",
                max_outstanding=2,
            )
        return runs

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ReportTable("Ablation — proxy threshold for small messages (§V-E2)")
    by_value = runs["by-value"].median("task_lifetime")
    proxied = runs["proxied"].median("task_lifetime")
    table.add("20kB by-value lifetime", "-", fmt_s(by_value))
    table.add("20kB always-proxied lifetime", "-", fmt_s(proxied))
    table.add(
        "proxying small messages adds overhead",
        "yes — use a threshold",
        f"{proxied / by_value:.2f}x",
        holds=proxied > by_value,
    )
    report_sink("ablation_proxy_threshold", table)
    assert table.all_hold


@pytest.mark.benchmark(group="ablations")
def test_ablation_simulation_backlog(benchmark, report_sink):
    """Backlog 0 vs 1 extra queued simulation on the FuncX stack."""
    outcomes = {}
    config_base = dict(
        n_molecules=600,
        n_initial=16,
        max_simulations=64,
        retrain_after=100,  # no retraining: isolate the dispatch loop
        n_ensemble=2,
        inference_chunks=2,
    )

    def run():
        for backlog in (0, 1):
            reset_clock()
            outcomes[backlog] = run_moldesign_campaign(
                "funcx+globus",
                MolDesignConfig(**config_base, backlog=backlog),
                seed=31,
                join_timeout=300,
            )
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ReportTable("Ablation — simulation backlog (§V-E1)")
    idle = {
        b: statistics.median(outcomes[b].cpu_idle_gaps) for b in (0, 1)
    }
    table.add("idle/task, backlog=0", "~500ms (paper's measured mode)", fmt_s(idle[0]))
    table.add("idle/task, backlog=1", "further improved", fmt_s(idle[1]))
    table.add(
        "backlog hides dispatch latency",
        "submit >= 1 extra task",
        f"{idle[0] / max(idle[1], 1e-9):.0f}x less idle",
        holds=idle[1] < 0.5 * idle[0],
    )
    report_sink("ablation_backlog", table)
    assert table.all_hold


@pytest.mark.benchmark(group="ablations")
def test_ablation_transfer_concurrency_limit(benchmark, report_sink):
    """8 concurrent 100 MB transfers under per-user limits of 2 vs 8."""
    waits = {}

    from repro.net.topology import UniformLatency

    def run():
        for limit in (2, 8):
            # Coarser scale: the measured window is ~0.5 s of wall time, so
            # GC/scheduler noise cannot distort the comparison.
            reset_clock(0.02)
            # Fast submissions + slow DTN work isolate the queueing effect.
            constants = PaperConstants(
                globus_concurrent_transfer_limit=limit,
                globus_request_latency=UniformLatency(0.05, 0.06),
                globus_transfer_base=UniformLatency(3.0, 3.5),
                globus_poll_interval=0.05,
            )
            testbed = build_paper_testbed(seed=41, constants=constants)
            service = TransferService(
                testbed.globus_cloud, testbed.network, constants
            ).start()
            ep_a = TransferEndpoint(
                "a", testbed.theta_login, testbed.mounts.volume("theta-lustre")
            )
            ep_b = TransferEndpoint(
                "b", testbed.venti, testbed.mounts.volume("venti-local")
            )
            service.register_endpoint(ep_a)
            service.register_endpoint(ep_b)
            client = TransferClient(service, user="abl")
            store = Store(
                f"abl-limit-{limit}",
                GlobusConnector(
                    client,
                    {
                        testbed.theta_login.name: ep_a,
                        testbed.venti.name: ep_b,
                    },
                ),
            )
            try:
                with at_site(testbed.theta_login):
                    keys = [store.put(Blob(100_000_000)) for _ in range(8)]
                clock = get_clock()
                with at_site(testbed.venti):
                    start = clock.now()
                    for key in keys:
                        store.get(key, timeout=600)
                    waits[limit] = clock.now() - start
            finally:
                store.close()
                service.stop()
        return waits

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ReportTable("Ablation — per-user concurrent transfer limit (§V-D1)")
    table.add("8x100MB drain, limit=2", "-", fmt_s(waits[2]))
    table.add("8x100MB drain, limit=8", "-", fmt_s(waits[8]))
    table.add(
        "limit throttles a burst of transfers",
        "fuse transfers to avoid the limit",
        f"{waits[2] / waits[8]:.2f}x slower at limit 2",
        holds=waits[2] > 1.2 * waits[8],
    )
    report_sink("ablation_transfer_limit", table)
    assert table.all_hold


@pytest.mark.benchmark(group="ablations")
def test_ablation_transfer_fusion(benchmark, report_sink):
    """§V-D1: fuse many objects into one transfer task vs one task each.

    Measures wall-to-resolution for 8×100 MB objects under a tight
    per-user limit — the fused batch occupies one slot and pays one HTTPS
    submission.
    """
    from repro.net.topology import UniformLatency

    measured = {}

    def run():
        for label in ("separate", "fused"):
            reset_clock(0.02)  # coarse scale: immune to GC/scheduler noise
            constants = PaperConstants(
                globus_concurrent_transfer_limit=2,
                globus_transfer_base=UniformLatency(2.0, 2.5),
                globus_poll_interval=0.05,
            )
            testbed = build_paper_testbed(seed=47, constants=constants)
            service = TransferService(
                testbed.globus_cloud, testbed.network, constants
            ).start()
            ep_a = TransferEndpoint(
                "a", testbed.theta_login, testbed.mounts.volume("theta-lustre")
            )
            ep_b = TransferEndpoint(
                "b", testbed.venti, testbed.mounts.volume("venti-local")
            )
            service.register_endpoint(ep_a)
            service.register_endpoint(ep_b)
            store = Store(
                f"abl-fuse-{label}",
                GlobusConnector(
                    TransferClient(service, user="fuse"),
                    {testbed.theta_login.name: ep_a, testbed.venti.name: ep_b},
                ),
            )
            objs = [Blob(100_000_000, tag=str(i)) for i in range(8)]
            clock = get_clock()
            try:
                start = clock.now()
                with at_site(testbed.theta_login):
                    if label == "fused":
                        keys = store.put_batch(objs)
                    else:
                        keys = [store.put(obj) for obj in objs]
                with at_site(testbed.venti):
                    for key in keys:
                        store.get(key, timeout=600)
                measured[label] = clock.now() - start
            finally:
                store.close()
                service.stop()
        return measured

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ReportTable("Ablation — transfer fusion (§V-D1)")
    table.add("8x100MB, one transfer task each", "-", fmt_s(measured["separate"]))
    table.add("8x100MB, single fused task", "-", fmt_s(measured["fused"]))
    table.add(
        "fusing avoids the concurrency limit",
        "viable route (§V-D1)",
        f"{measured['separate'] / measured['fused']:.2f}x faster fused",
        holds=measured["fused"] < measured["separate"],
    )
    report_sink("ablation_transfer_fusion", table)
    assert table.all_hold


@pytest.mark.benchmark(group="ablations")
def test_ablation_cache_reuse(benchmark, report_sink):
    """Resolving one shared object N times vs N distinct objects."""
    measured = {}

    def run():
        reset_clock()
        testbed = build_paper_testbed(seed=43)
        constants = testbed.constants
        service = TransferService(
            testbed.globus_cloud, testbed.network, constants
        ).start()
        ep_a = TransferEndpoint(
            "a", testbed.theta_login, testbed.mounts.volume("theta-lustre")
        )
        ep_b = TransferEndpoint(
            "b", testbed.venti, testbed.mounts.volume("venti-local")
        )
        service.register_endpoint(ep_a)
        service.register_endpoint(ep_b)
        store = Store(
            "abl-cache",
            GlobusConnector(
                TransferClient(service, user="cache"),
                {testbed.theta_login.name: ep_a, testbed.venti.name: ep_b},
            ),
        )
        clock = get_clock()
        try:
            with at_site(testbed.theta_login):
                shared = store.put(Blob(10_000_000))
                distinct = [store.put(Blob(10_000_000)) for _ in range(4)]
            with at_site(testbed.venti):
                start = clock.now()
                for _ in range(4):
                    store.get(shared, timeout=600)
                measured["shared"] = clock.now() - start
                start = clock.now()
                for key in distinct:
                    store.get(key, timeout=600)
                measured["distinct"] = clock.now() - start
            measured["hit_rate"] = store.metrics.summary()["cache_hit_rate"]
        finally:
            store.close()
            service.stop()
        return measured

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ReportTable("Ablation — ahead-of-time staging and per-site caching (§V-D3)")
    table.add("4 resolutions of one shared object", "-", fmt_s(measured["shared"]))
    table.add("4 resolutions of distinct objects", "-", fmt_s(measured["distinct"]))
    table.add(
        "re-use resolves from cache",
        "12% of inference proxies <100ms",
        f"{measured['distinct'] / max(measured['shared'], 1e-9):.1f}x faster shared; "
        f"hit rate {100 * measured['hit_rate']:.0f}%",
        holds=measured["shared"] < 0.5 * measured["distinct"]
        and measured["hit_rate"] > 0,
    )
    report_sink("ablation_cache_reuse", table)
    assert table.all_hold
