"""Figure 1 — resource utilization and cumulative data transfer over time.

Paper setup: both applications on 20 T4 GPUs + 8 KNL processors, "a
workflow based on Parsl without pass-by-reference", plotting tasks running
on each resource and cumulative data transferred to each resource.

Shape claims under test:
* molecular design keeps GPUs busy in periodic bursts and moves O(10) GB
  per ML batch to the GPU resource;
* surrogate fine-tuning uses GPUs sporadically and moves roughly an order
  of magnitude less data than molecular design;
* CPU workers stay saturated in both applications.
"""

from __future__ import annotations

import pytest

from common import fmt_s
from repro.apps.finetuning import FineTuneConfig, run_finetuning_campaign
from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign
from repro.bench.recording import (
    EventLog,
    cumulative_series,
    running_series,
    set_global_log,
)
from repro.bench.reporting import ReportTable

MD_CONFIG = MolDesignConfig(
    n_molecules=1000,
    n_initial=24,
    max_simulations=100,
    retrain_after=16,
    n_ensemble=3,
    inference_chunks=3,
)
FT_CONFIG = FineTuneConfig(
    n_waters=3,
    n_pretrain=120,
    target_new_structures=24,
    retrain_after=8,
    n_ensemble=3,
    uncertainty_batch=40,
    inference_batch=20,
    pretrain_epochs=15,
    train_epochs=10,
    n_rbf_centers=8,
)


def _campaign_with_log(run):
    log = EventLog()
    set_global_log(log)
    try:
        outcome = run()
    finally:
        set_global_log(None)
    return outcome, log


def _gb_to(log: EventLog, resource: str) -> float:
    series = cumulative_series(
        log.events("data_transfer", resource=resource), "data_transfer", "bytes"
    )
    return series[-1][1] / 1e9 if series else 0.0


def _max_running(log: EventLog, resource: str) -> int:
    events = [
        e
        for e in log.events()
        if e.kind in ("worker_task_start", "worker_task_end")
        and e.get("resource") == resource
    ]
    series = running_series(events, "worker_task_start", "worker_task_end")
    return max((v for _, v in series), default=0)


@pytest.mark.benchmark(group="fig1")
def test_fig1_resource_utilization(benchmark, report_sink):
    state = {}

    def run():
        state["md"], state["md_log"] = _campaign_with_log(
            lambda: run_moldesign_campaign(
                "parsl", MD_CONFIG, seed=5, join_timeout=400
            )
        )
        state["ft"], state["ft_log"] = _campaign_with_log(
            lambda: run_finetuning_campaign(
                "parsl", FT_CONFIG, seed=5, join_timeout=400
            )
        )
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)

    md, md_log = state["md"], state["md_log"]
    ft, ft_log = state["ft"], state["ft_log"]

    table = ReportTable("Fig. 1 — resource utilization and data movement (Parsl, no pass-by-reference)")
    md_gpu_gb = _gb_to(md_log, "venti")
    md_cpu_gb = _gb_to(md_log, "theta-compute")
    ft_gpu_gb = _gb_to(ft_log, "venti")
    ft_cpu_gb = _gb_to(ft_log, "theta-compute")

    table.add("moldesign: GB to GPU resource", "O(10) GB per batch", f"{md_gpu_gb:.1f} GB")
    table.add("moldesign: GB to CPU resource", "small", f"{md_cpu_gb:.2f} GB")
    table.add("finetuning: GB to GPU resource", "~10x less than moldesign", f"{ft_gpu_gb:.2f} GB")
    table.add(
        "data ratio moldesign/finetuning (GPU)",
        "order of magnitude",
        f"{md_gpu_gb / max(ft_gpu_gb, 1e-9):.0f}x",
        holds=md_gpu_gb > 5 * ft_gpu_gb,
    )
    table.add(
        "moldesign moves multi-GB to GPUs",
        ">= several GB",
        f"{md_gpu_gb:.1f} GB",
        holds=md_gpu_gb > 2.0,
    )

    md_cpu_peak = _max_running(md_log, "theta-compute")
    md_gpu_peak = _max_running(md_log, "venti")
    ft_cpu_peak = _max_running(ft_log, "theta-compute")
    table.add(
        "moldesign: CPU workers saturated",
        "8 running",
        f"peak {md_cpu_peak}",
        holds=md_cpu_peak >= 8,
    )
    table.add(
        "moldesign: GPU bursts use many workers",
        "bursts to ~20",
        f"peak {md_gpu_peak}",
        holds=md_gpu_peak >= MD_CONFIG.n_ensemble,
    )
    table.add(
        "finetuning: CPU workers saturated",
        "8 running",
        f"peak {ft_cpu_peak}",
        holds=ft_cpu_peak >= 8,
    )
    # Sporadic GPU use in fine-tuning: total GPU busy-time far below CPU's.
    ft_gpu_busy = sum(
        r.time_running or 0 for t in ("train", "infer") for r in ft.results[t]
    )
    ft_cpu_busy = sum(
        r.time_running or 0 for t in ("simulate", "sample") for r in ft.results[t]
    )
    table.add(
        "finetuning: GPU tasks sporadic",
        "GPU busy << CPU busy",
        f"{fmt_s(ft_gpu_busy)} vs {fmt_s(ft_cpu_busy)}",
        holds=ft_gpu_busy < 0.5 * ft_cpu_busy,
    )
    table.note(
        f"moldesign completed {md.n_simulated} simulations, "
        f"finetuning added {ft.n_new_structures} structures"
    )

    report_sink("fig1_utilization", table)

    # Render the actual Fig. 1 panels (ASCII) alongside the claim table.
    from conftest import RESULTS_DIR
    from repro.bench.plotting import ascii_timeseries

    def concurrency_series(log, resource):
        events = [
            e
            for e in log.events()
            if e.kind in ("worker_task_start", "worker_task_end")
            and e.get("resource") == resource
        ]
        return [(t, float(v)) for t, v in running_series(
            events, "worker_task_start", "worker_task_end"
        )]

    panels = []
    for label, log in (("molecular design", md_log), ("surrogate fine-tuning", ft_log)):
        for resource, resource_label in (
            ("theta-compute", "CPU tasks running"),
            ("venti", "GPU tasks running"),
        ):
            series = concurrency_series(log, resource)
            if series:
                panels.append(
                    ascii_timeseries(
                        series,
                        title=f"{label}: {resource_label}",
                        y_label="tasks",
                        x_label="nominal seconds",
                    )
                )
        gb = cumulative_series(
            log.events("data_transfer", resource="venti"), "data_transfer", "bytes"
        )
        if gb:
            panels.append(
                ascii_timeseries(
                    [(t, v / 1e9) for t, v in gb],
                    title=f"{label}: cumulative GB to GPU resource",
                    y_label="GB",
                    x_label="nominal seconds",
                )
            )
    charts = "\n\n".join(panels)
    (RESULTS_DIR / "fig1_panels.txt").write_text(charts + "\n")
    print("\n" + charts + "\n")

    assert table.all_hold, "Fig. 1 qualitative claims diverged; see table"
