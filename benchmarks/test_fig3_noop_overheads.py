"""Figure 3 — component times of no-op tasks over FuncX, with and without
ProxyStore.

Paper setup (§V-C1): Thinker + Task Server on a Theta login node, one FuncX
endpoint executing on a Theta KNL node, 50 no-op tasks per cell, inputs of
10 kB and 1 MB, proxy threshold zero.  Compared backends: none (everything
through the FuncX cloud), ProxyStore-file (Lustre), ProxyStore-redis.

Paper claims under test:
* Task-Server→worker communication dominates the by-value task lifetime;
* proxying cuts that communication 2–3× at 10 kB and up to 10× at 1 MB;
* Thinker↔Task-Server gains appear for large objects.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics

import pytest

from common import fmt_s, noop_task
from repro.batch import BatchPolicy
from repro.bench.reporting import ReportTable
from repro.core.queues import ColmenaQueues, TopicSpec
from repro.core.task_server import FuncXTaskServer, MethodSpec
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import build_paper_testbed
from repro.net.kvstore import KVServer
from repro.observe import MetricsRegistry, set_metrics
from repro.proxystore import FileConnector, RedisConnector, Store
from repro.resources import WorkerPool
from repro.serialize import Blob

N_TASKS = 30
SIZES = {"10kB": 10_000, "1MB": 1_000_000}
BACKENDS = ("none", "file", "redis")

#: Small-task storm scale for the batched-vs-unbatched comparison;
#: REPRO_BATCH_QUICK=1 shrinks it for the CI smoke job.
STORM_TASKS = 60 if os.environ.get("REPRO_BATCH_QUICK") else 200
STORM_SINGLES = 4 if os.environ.get("REPRO_BATCH_QUICK") else 8
STORM_PAYLOAD = 10_000  # the redis band: the second-hop cost batching skips


def _run_cell(backend: str, payload_bytes: int, seed: int) -> list:
    testbed = build_paper_testbed(seed=seed)
    if backend == "none":
        store, threshold = None, None
    elif backend == "file":
        store = Store(f"f3-file-{seed}", FileConnector(testbed.mounts.volume("theta-lustre")))
        threshold = 0
    else:
        store = Store(
            f"f3-redis-{seed}",
            RedisConnector(KVServer(testbed.theta_login, name="data"), testbed.network),
        )
        threshold = 0

    queues = ColmenaQueues(
        KVServer(testbed.theta_login),
        testbed.network,
        topic_specs={"bench": TopicSpec("bench", store=store, proxy_threshold=threshold)},
    )
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("bench", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name=f"f3-{backend}-{payload_bytes}")
    endpoint = FaasEndpoint("theta", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    server = FuncXTaskServer(
        queues,
        [
            MethodSpec(
                noop_task,
                target=endpoint.endpoint_id,
                output_store=store.name if store else None,
                output_threshold=threshold,
            )
        ],
        testbed.theta_login,
        client,
    )
    server.start()
    results = []
    try:
        with at_site(testbed.theta_login):
            for _ in range(N_TASKS):
                # One task in flight at a time: clean per-component medians.
                queues.send_request("noop_task", args=(Blob(payload_bytes),), topic="bench")
                result = queues.get_result("bench", timeout=240)
                assert result is not None and result.success
                results.append(result)
            queues.send_kill_signal()
        server.join(timeout=10)
    finally:
        server.stop()
        endpoint.stop()
        if store is not None:
            store.close()
    return results


def _median(results, attr):
    return statistics.median(getattr(r, attr) for r in results)


@pytest.mark.benchmark(group="fig3")
def test_fig3_noop_overheads(benchmark, report_sink):
    cells: dict[tuple[str, str], list] = {}

    def run():
        for size_label, nbytes in SIZES.items():
            for backend in BACKENDS:
                cells[(size_label, backend)] = _run_cell(backend, nbytes, seed=11)
        return cells

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ReportTable("Fig. 3 — no-op task component medians (FuncX fabric)")
    for size_label in SIZES:
        for backend in BACKENDS:
            results = cells[(size_label, backend)]
            table.add(
                f"{size_label}/{backend}: lifetime",
                "-",
                fmt_s(_median(results, "task_lifetime")),
            )
            table.add(
                f"{size_label}/{backend}: server->worker",
                "dominant (by value)",
                fmt_s(_median(results, "comm_server_to_worker")),
            )
            table.add(
                f"{size_label}/{backend}: thinker->server",
                "-",
                fmt_s(_median(results, "comm_client_to_server")),
            )
            table.add(
                f"{size_label}/{backend}: on worker",
                "-",
                fmt_s(_median(results, "time_on_worker")),
            )
            table.add(
                f"{size_label}/{backend}: serialization",
                "-",
                fmt_s(_median(results, "time_serialization")),
            )

    # Claim 1: by-value, server->worker communication dominates lifetime.
    by_value = cells[("1MB", "none")]
    s2w = _median(by_value, "comm_server_to_worker")
    dominant = s2w >= max(
        _median(by_value, "comm_client_to_server"),
        _median(by_value, "time_on_worker"),
        _median(by_value, "time_serialization"),
    )
    table.add(
        "1MB by-value: server->worker dominates",
        "yes",
        "yes" if dominant else "no",
        holds=dominant,
    )

    # Claim 2: proxying speeds up server->worker 2-3x at 10 kB, up to 10x at 1 MB.
    for size_label, low, high in (("10kB", 1.5, 30.0), ("1MB", 3.0, 100.0)):
        base = _median(cells[(size_label, "none")], "comm_server_to_worker")
        best = min(
            _median(cells[(size_label, b)], "comm_server_to_worker")
            for b in ("file", "redis")
        )
        speedup = base / best
        claim = "2-3x" if size_label == "10kB" else "up to 10x"
        table.add(
            f"{size_label}: proxy speedup (server->worker)",
            claim,
            f"{speedup:.1f}x",
            holds=speedup >= low,
        )

    # Claim 3: proxied lifetimes beat by-value lifetimes at both sizes.
    for size_label in SIZES:
        base = _median(cells[(size_label, "none")], "task_lifetime")
        best = min(
            _median(cells[(size_label, b)], "task_lifetime") for b in ("file", "redis")
        )
        table.add(
            f"{size_label}: proxied lifetime < by-value",
            "yes",
            f"{best:.2f}s vs {base:.2f}s",
            holds=best < base,
        )

    report_sink("fig3_noop_overheads", table)
    assert table.all_hold, "Fig. 3 qualitative claims diverged; see table"


def _storm_cell(batched: bool, seed: int) -> dict:
    """Drive one small-task storm straight through the FaaS client and
    measure sustained throughput plus per-task overhead operations."""
    testbed = build_paper_testbed(seed=seed)
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("bench", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 8, name=f"storm-{batched}")
    endpoint = FaasEndpoint(
        "theta", cloud, token, testbed.theta_login, pool, uplink_batching=batched
    ).start()
    metrics = MetricsRegistry()
    set_metrics(metrics)
    client = FaasClient(
        cloud,
        token,
        site=testbed.theta_login,
        batch=(
            BatchPolicy(max_batch=32, flush_deadline=0.05, min_hold=0.002)
            if batched
            else None
        ),
    )
    clock = get_clock()
    try:
        with at_site(testbed.theta_login):
            func_id = client.register_function(noop_task)
            started = clock.now()
            futures = [
                client.submit(func_id, endpoint.endpoint_id, Blob(STORM_PAYLOAD))
                for _ in range(STORM_TASKS)
            ]
            for future in futures:
                assert future.result(timeout=1200) is None
            makespan = clock.now() - started
            # Sequential lone tasks: the single-task p50 the adaptive hold
            # must not regress.
            single_latencies = []
            for _ in range(STORM_SINGLES):
                t0 = clock.now()
                client.submit(
                    func_id, endpoint.endpoint_id, Blob(STORM_PAYLOAD)
                ).result(timeout=1200)
                single_latencies.append(clock.now() - t0)
    finally:
        client.close()
        endpoint.stop()
        set_metrics(None)
    api_calls = metrics.counter_total("faas.api_calls")
    second_hop_ops = sum(
        int(counter.value)
        for name, labels, counter in metrics.counters()
        if name in ("faas.store_writes", "faas.store_reads")
        and labels.get("tier") != "inline"
    )
    overhead_ops = api_calls + second_hop_ops
    return {
        "batched": batched,
        "n_tasks": STORM_TASKS,
        "makespan_s": round(makespan, 4),
        "tasks_per_s": round(STORM_TASKS / makespan, 2),
        "api_calls": int(api_calls),
        "second_hop_store_ops": second_hop_ops,
        "overhead_ops_per_task": round(overhead_ops / STORM_TASKS, 3),
        "single_task_p50_s": round(statistics.median(single_latencies), 4),
        "batch_submits": int(metrics.counter_total("cloud.batch_submits")),
        "uplink_batches": int(metrics.counter_total("endpoint.uplink_batches")),
    }


@pytest.mark.benchmark(group="fig3")
def test_fig3_batched_storm(benchmark, report_sink):
    """The repro.batch claims: batching a small-task storm sustains >= 3x
    the tasks/sec of the unbatched hot path, cuts per-task round-trip +
    second-hop overhead >= 2x, and keeps the lone-task p50 within 1.25x."""
    cells: dict[str, dict] = {}

    def run():
        cells["unbatched"] = _storm_cell(False, seed=17)
        cells["batched"] = _storm_cell(True, seed=17)
        return cells

    benchmark.pedantic(run, rounds=1, iterations=1)
    plain, fast = cells["unbatched"], cells["batched"]
    throughput_gain = fast["tasks_per_s"] / plain["tasks_per_s"]
    overhead_cut = plain["overhead_ops_per_task"] / max(
        fast["overhead_ops_per_task"], 1e-9
    )
    p50_ratio = fast["single_task_p50_s"] / plain["single_task_p50_s"]

    table = ReportTable("Fig. 3 addendum — adaptive batching on a no-op storm")
    table.add("unbatched tasks/s", "-", f"{plain['tasks_per_s']:.1f}")
    table.add("batched tasks/s", "-", f"{fast['tasks_per_s']:.1f}")
    table.add(
        "storm throughput gain", ">= 3x", f"{throughput_gain:.1f}x",
        holds=throughput_gain >= 3.0,
    )
    table.add(
        "per-task overhead ops cut", ">= 2x", f"{overhead_cut:.1f}x",
        holds=overhead_cut >= 2.0,
    )
    table.add(
        "lone-task p50 ratio", "<= 1.25x", f"{p50_ratio:.2f}x",
        holds=p50_ratio <= 1.25,
    )
    report_sink("fig3_batched_storm", table)

    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_fig3.json").write_text(
        json.dumps(
            {
                "figure": "fig3-batched-storm",
                "payload_bytes": STORM_PAYLOAD,
                "unbatched": plain,
                "batched": fast,
                "claims": {
                    "throughput_gain_x": round(throughput_gain, 2),
                    "throughput_target_x": 3.0,
                    "overhead_cut_x": round(overhead_cut, 2),
                    "overhead_target_x": 2.0,
                    "single_task_p50_ratio_x": round(p50_ratio, 3),
                    "single_task_p50_target_x": 1.25,
                },
            },
            indent=2,
        )
        + "\n"
    )
    assert table.all_hold, "repro.batch storm claims diverged; see table"
