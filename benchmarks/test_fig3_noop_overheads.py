"""Figure 3 — component times of no-op tasks over FuncX, with and without
ProxyStore.

Paper setup (§V-C1): Thinker + Task Server on a Theta login node, one FuncX
endpoint executing on a Theta KNL node, 50 no-op tasks per cell, inputs of
10 kB and 1 MB, proxy threshold zero.  Compared backends: none (everything
through the FuncX cloud), ProxyStore-file (Lustre), ProxyStore-redis.

Paper claims under test:
* Task-Server→worker communication dominates the by-value task lifetime;
* proxying cuts that communication 2–3× at 10 kB and up to 10× at 1 MB;
* Thinker↔Task-Server gains appear for large objects.
"""

from __future__ import annotations

import statistics

import pytest

from common import fmt_s, noop_task
from repro.bench.reporting import ReportTable
from repro.core.queues import ColmenaQueues, TopicSpec
from repro.core.task_server import FuncXTaskServer, MethodSpec
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.context import at_site
from repro.net.defaults import build_paper_testbed
from repro.net.kvstore import KVServer
from repro.proxystore import FileConnector, RedisConnector, Store
from repro.resources import WorkerPool
from repro.serialize import Blob

N_TASKS = 30
SIZES = {"10kB": 10_000, "1MB": 1_000_000}
BACKENDS = ("none", "file", "redis")


def _run_cell(backend: str, payload_bytes: int, seed: int) -> list:
    testbed = build_paper_testbed(seed=seed)
    if backend == "none":
        store, threshold = None, None
    elif backend == "file":
        store = Store(f"f3-file-{seed}", FileConnector(testbed.mounts.volume("theta-lustre")))
        threshold = 0
    else:
        store = Store(
            f"f3-redis-{seed}",
            RedisConnector(KVServer(testbed.theta_login, name="data"), testbed.network),
        )
        threshold = 0

    queues = ColmenaQueues(
        KVServer(testbed.theta_login),
        testbed.network,
        topic_specs={"bench": TopicSpec("bench", store=store, proxy_threshold=threshold)},
    )
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("bench", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name=f"f3-{backend}-{payload_bytes}")
    endpoint = FaasEndpoint("theta", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    server = FuncXTaskServer(
        queues,
        [
            MethodSpec(
                noop_task,
                target=endpoint.endpoint_id,
                output_store=store.name if store else None,
                output_threshold=threshold,
            )
        ],
        testbed.theta_login,
        client,
    )
    server.start()
    results = []
    try:
        with at_site(testbed.theta_login):
            for _ in range(N_TASKS):
                # One task in flight at a time: clean per-component medians.
                queues.send_request("noop_task", args=(Blob(payload_bytes),), topic="bench")
                result = queues.get_result("bench", timeout=240)
                assert result is not None and result.success
                results.append(result)
            queues.send_kill_signal()
        server.join(timeout=10)
    finally:
        server.stop()
        endpoint.stop()
        if store is not None:
            store.close()
    return results


def _median(results, attr):
    return statistics.median(getattr(r, attr) for r in results)


@pytest.mark.benchmark(group="fig3")
def test_fig3_noop_overheads(benchmark, report_sink):
    cells: dict[tuple[str, str], list] = {}

    def run():
        for size_label, nbytes in SIZES.items():
            for backend in BACKENDS:
                cells[(size_label, backend)] = _run_cell(backend, nbytes, seed=11)
        return cells

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ReportTable("Fig. 3 — no-op task component medians (FuncX fabric)")
    for size_label in SIZES:
        for backend in BACKENDS:
            results = cells[(size_label, backend)]
            table.add(
                f"{size_label}/{backend}: lifetime",
                "-",
                fmt_s(_median(results, "task_lifetime")),
            )
            table.add(
                f"{size_label}/{backend}: server->worker",
                "dominant (by value)",
                fmt_s(_median(results, "comm_server_to_worker")),
            )
            table.add(
                f"{size_label}/{backend}: thinker->server",
                "-",
                fmt_s(_median(results, "comm_client_to_server")),
            )
            table.add(
                f"{size_label}/{backend}: on worker",
                "-",
                fmt_s(_median(results, "time_on_worker")),
            )
            table.add(
                f"{size_label}/{backend}: serialization",
                "-",
                fmt_s(_median(results, "time_serialization")),
            )

    # Claim 1: by-value, server->worker communication dominates lifetime.
    by_value = cells[("1MB", "none")]
    s2w = _median(by_value, "comm_server_to_worker")
    dominant = s2w >= max(
        _median(by_value, "comm_client_to_server"),
        _median(by_value, "time_on_worker"),
        _median(by_value, "time_serialization"),
    )
    table.add(
        "1MB by-value: server->worker dominates",
        "yes",
        "yes" if dominant else "no",
        holds=dominant,
    )

    # Claim 2: proxying speeds up server->worker 2-3x at 10 kB, up to 10x at 1 MB.
    for size_label, low, high in (("10kB", 1.5, 30.0), ("1MB", 3.0, 100.0)):
        base = _median(cells[(size_label, "none")], "comm_server_to_worker")
        best = min(
            _median(cells[(size_label, b)], "comm_server_to_worker")
            for b in ("file", "redis")
        )
        speedup = base / best
        claim = "2-3x" if size_label == "10kB" else "up to 10x"
        table.add(
            f"{size_label}: proxy speedup (server->worker)",
            claim,
            f"{speedup:.1f}x",
            holds=speedup >= low,
        )

    # Claim 3: proxied lifetimes beat by-value lifetimes at both sizes.
    for size_label in SIZES:
        base = _median(cells[(size_label, "none")], "task_lifetime")
        best = min(
            _median(cells[(size_label, b)], "task_lifetime") for b in ("file", "redis")
        )
        table.add(
            f"{size_label}: proxied lifetime < by-value",
            "yes",
            f"{best:.2f}s vs {base:.2f}s",
            holds=best < base,
        )

    report_sink("fig3_noop_overheads", table)
    assert table.all_hold, "Fig. 3 qualitative claims diverged; see table"
