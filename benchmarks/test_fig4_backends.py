"""Figure 4 — ProxyStore backend comparison across task input sizes.

Paper setup (§V-C2): no-op tasks on a Theta KNL endpoint; proxied inputs
from 10 kB to 100 MB through the Redis, file-system, and Globus backends.
Redis/file runs place the Thinker on the Theta login node; Globus runs
place it at UChicago (no shared file system with the workers).

Paper claims under test:
* Redis has the lowest latency for small objects;
* file-system serialize time converges with Redis for ~100 MB objects;
* Globus "time on worker" is larger (it waits on the managed transfer) but
  roughly constant with input size up to 100 MB (web-service bound, not
  bandwidth bound);
* Globus becomes competitive with tunneled Redis beyond ~10 MB (§V-F).
"""

from __future__ import annotations

import statistics

import pytest

from common import fmt_s, noop_task
from repro.bench.reporting import ReportTable
from repro.core.queues import ColmenaQueues, TopicSpec
from repro.core.task_server import FuncXTaskServer, MethodSpec
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.context import at_site
from repro.net.defaults import build_paper_testbed
from repro.net.kvstore import KVServer
from repro.proxystore import (
    FileConnector,
    GlobusConnector,
    RedisConnector,
    Store,
)
from repro.resources import WorkerPool
from repro.serialize import Blob
from repro.transfer import TransferClient, TransferEndpoint, TransferService

N_TASKS = 12
SIZES = {
    "10kB": 10_000,
    "100kB": 100_000,
    "1MB": 1_000_000,
    "10MB": 10_000_000,
    "100MB": 100_000_000,
}
BACKENDS = ("redis", "file", "globus")


def _build_store(backend: str, testbed, tag: str):
    if backend == "redis":
        # Cross-resource Redis needs the tunneled port (§V-B).
        return Store(
            f"f4-redis-{tag}",
            RedisConnector(
                KVServer(testbed.theta_login, name=f"d-{tag}"),
                testbed.network,
                via_tunnel=True,
            ),
        ), None
    if backend == "file":
        return Store(
            f"f4-file-{tag}", FileConnector(testbed.mounts.volume("theta-lustre"))
        ), None
    service = TransferService(
        testbed.globus_cloud, testbed.network, testbed.constants
    ).start()
    ep_uc = TransferEndpoint(
        f"f4-uc-{tag}", testbed.uchicago_login, testbed.mounts.volume("uchicago-fs")
    )
    ep_theta = TransferEndpoint(
        f"f4-th-{tag}", testbed.theta_login, testbed.mounts.volume("theta-lustre")
    )
    service.register_endpoint(ep_uc)
    service.register_endpoint(ep_theta)
    store = Store(
        f"f4-globus-{tag}",
        GlobusConnector(
            TransferClient(service, user=f"f4-{tag}"),
            {
                testbed.uchicago_login.name: ep_uc,
                testbed.theta_login.name: ep_theta,
                testbed.theta_compute.name: ep_theta,
            },
        ),
    )
    return store, service


def _run_cell(backend: str, payload_bytes: int, seed: int):
    testbed = build_paper_testbed(seed=seed)
    # Globus experiments put the Thinker at UChicago (§V-C2); the others on
    # the Theta login node.
    thinker_site = (
        testbed.uchicago_login if backend == "globus" else testbed.theta_login
    )
    tag = f"{backend}-{payload_bytes}"
    store, service = _build_store(backend, testbed, tag)
    queues = ColmenaQueues(
        KVServer(thinker_site, name=f"q-{tag}"),
        testbed.network,
        topic_specs={"bench": TopicSpec("bench", store=store, proxy_threshold=0)},
    )
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("bench", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name=f"f4-{tag}")
    endpoint = FaasEndpoint("theta", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=thinker_site)
    server = FuncXTaskServer(
        queues,
        [MethodSpec(noop_task, target=endpoint.endpoint_id)],
        thinker_site,
        client,
    )
    server.start()
    results = []
    try:
        with at_site(thinker_site):
            for index in range(N_TASKS):
                queues.send_request(
                    "noop_task",
                    args=(Blob(payload_bytes, tag=str(index)),),
                    topic="bench",
                )
                result = queues.get_result("bench", timeout=600)
                assert result is not None and result.success
                results.append(result)
            queues.send_kill_signal()
        server.join(timeout=10)
    finally:
        server.stop()
        endpoint.stop()
        store.close()
        if service is not None:
            service.stop()
    return results


def _mean(results, attr):
    return statistics.fmean(getattr(r, attr) for r in results)


@pytest.mark.benchmark(group="fig4")
def test_fig4_backend_sweep(benchmark, report_sink):
    cells: dict[tuple[str, str], list] = {}

    def run():
        for backend in BACKENDS:
            for size_label, nbytes in SIZES.items():
                cells[(backend, size_label)] = _run_cell(backend, nbytes, seed=13)
        return cells

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ReportTable("Fig. 4 — ProxyStore backend component means vs input size")
    for backend in BACKENDS:
        for size_label in SIZES:
            results = cells[(backend, size_label)]
            serialize_t = _mean(results, "dur_proxy_inputs") + _mean(
                results, "dur_serialize_inputs"
            )
            table.add(
                f"{backend}/{size_label}: serialize | on-worker | lifetime",
                "-",
                f"{fmt_s(serialize_t)} | {fmt_s(_mean(results, 'time_on_worker'))} | "
                f"{fmt_s(_mean(results, 'task_lifetime'))}",
            )

    def serialize_time(backend, size):
        results = cells[(backend, size)]
        return _mean(results, "dur_proxy_inputs") + _mean(results, "dur_serialize_inputs")

    # Claim 1: Redis wins small-object latency.
    redis_small = serialize_time("redis", "10kB")
    file_small = serialize_time("file", "10kB")
    table.add(
        "10kB serialize: redis < file",
        "much lower latency",
        f"{fmt_s(redis_small)} vs {fmt_s(file_small)}",
        holds=redis_small < file_small,
    )

    # Claim 2: file converges with redis at 100 MB (within ~2x).
    redis_big = serialize_time("redis", "100MB")
    file_big = serialize_time("file", "100MB")
    ratio = max(redis_big, file_big) / min(redis_big, file_big)
    table.add(
        "100MB serialize: file ~ redis",
        "comparable",
        f"{fmt_s(file_big)} vs {fmt_s(redis_big)} ({ratio:.1f}x)",
        holds=ratio < 3.0,
    )

    # Claim 3: Globus on-worker time >> redis, but ~constant with size.
    globus_small = _mean(cells[("globus", "10kB")], "time_on_worker")
    globus_big = _mean(cells[("globus", "100MB")], "time_on_worker")
    redis_worker = _mean(cells[("redis", "10kB")], "time_on_worker")
    table.add(
        "globus on-worker >> redis on-worker",
        "waits on transfer (1-5s)",
        f"{fmt_s(globus_small)} vs {fmt_s(redis_worker)}",
        holds=globus_small > 3 * redis_worker,
    )
    growth = globus_big / globus_small
    table.add(
        "globus on-worker growth 10kB->100MB",
        "~constant (service-bound)",
        f"{growth:.1f}x",
        holds=growth < 3.0,
    )
    table.add(
        "globus transfer wait in 1-5s band",
        "1-5s",
        fmt_s(_mean(cells[("globus", "1MB")], "dur_resolve_proxies")),
        holds=0.5 <= _mean(cells[("globus", "1MB")], "dur_resolve_proxies") <= 8.0,
    )

    # Claim 4 (§V-F): Globus becomes competitive with tunneled Redis as
    # payloads grow past ~10 MB: its relative penalty shrinks monotonically
    # and lands within ~2.5x at 100 MB.
    ratios = {}
    for size_label in ("1MB", "10MB", "100MB"):
        globus_lt = _mean(cells[("globus", size_label)], "task_lifetime")
        redis_lt = _mean(cells[("redis", size_label)], "task_lifetime")
        ratios[size_label] = globus_lt / redis_lt
        table.add(
            f"{size_label} lifetime: globus / tunneled redis",
            "gap narrows with size",
            f"{ratios[size_label]:.1f}x",
        )
    table.add(
        "globus penalty shrinks 1MB -> 100MB",
        "competitive beyond 10MB",
        f"{ratios['1MB']:.1f}x -> {ratios['100MB']:.1f}x",
        holds=ratios["100MB"] < ratios["1MB"] and ratios["100MB"] < 2.5,
    )

    report_sink("fig4_backends", table)

    # Panel: lifetime vs size per backend, as ASCII bars (the Fig. 4 shape).
    from conftest import RESULTS_DIR
    from repro.bench.plotting import ascii_bars

    panels = []
    for backend in BACKENDS:
        panels.append(
            ascii_bars(
                [
                    (size, _mean(cells[(backend, size)], "task_lifetime"))
                    for size in SIZES
                ],
                title=f"{backend}: mean task lifetime by input size",
                unit="s",
            )
        )
    charts = "\n\n".join(panels)
    (RESULTS_DIR / "fig4_panels.txt").write_text(charts + "\n")
    print("\n" + charts + "\n")

    assert table.all_hold, "Fig. 4 qualitative claims diverged; see table"
