"""Figure 5 + §V-D — reaction, decision, and dispatch latencies for the
molecular design application on the cloud-managed (FuncX+Globus) stack.

Paper numbers reproduced as shape/band claims:

* Fig. 5 top: result-notification time — simulation tasks ≈500 ms median,
  faster than train/inference (those must initiate a Globus transfer,
  adding an ≈500 ms HTTPS call);
* Fig. 5 bottom: data-access time — >1 s only when data crosses resources
  (train/inference), with Globus transfers completing in 1–5 s;
* §V-D2: simulation re-dispatch decisions are milliseconds; decisions that
  read AI results take seconds (transfer-bound);
* §V-D3: simulation dispatch ≈100 ms (FuncX hop), and dispatch overheads
  are small fractions of task runtimes.
"""

from __future__ import annotations

import statistics

import pytest

from common import fmt_s
from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign
from repro.bench.reporting import ReportTable

CONFIG = MolDesignConfig(
    n_molecules=1200,
    n_initial=24,
    max_simulations=120,
    retrain_after=20,
    n_ensemble=3,
    inference_chunks=3,
)


def _median(results, metric):
    values = [getattr(r, metric) for r in results if getattr(r, metric) is not None]
    return statistics.median(values) if values else float("nan")


@pytest.mark.benchmark(group="fig5")
def test_fig5_notification_and_latencies(benchmark, report_sink):
    state = {}

    def run():
        state["outcome"] = run_moldesign_campaign(
            "funcx+globus", CONFIG, seed=17, join_timeout=400
        )
        return state["outcome"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    outcome = state["outcome"]
    sim = [r for r in outcome.results["simulate"] if r.success]
    train = [r for r in outcome.results["train"] if r.success]
    infer = [r for r in outcome.results["infer"] if r.success]
    assert sim and train and infer, "campaign did not exercise all task types"

    table = ReportTable("Fig. 5 / §V-D — molecular design latencies (FuncX+Globus)")

    # --- Fig. 5 top: notification -----------------------------------------
    notif = {
        "simulate": _median(sim, "notification_latency"),
        "train": _median(train, "notification_latency"),
        "infer": _median(infer, "notification_latency"),
    }
    for kind, value in notif.items():
        paper = "~500ms" if kind == "simulate" else "slower (Globus HTTPS)"
        table.add(f"notification median: {kind}", paper, fmt_s(value))
    table.add(
        "simulation notification in sub-second band",
        "~500ms",
        fmt_s(notif["simulate"]),
        holds=0.05 <= notif["simulate"] <= 2.0,
    )
    table.add(
        "sim notification < train notification",
        "yes (no transfer to start)",
        f"{fmt_s(notif['simulate'])} vs {fmt_s(notif['train'])}",
        holds=notif["simulate"] < notif["train"],
    )

    # --- Fig. 5 bottom: data access ----------------------------------------
    access = {
        "simulate": _median(sim, "dur_resolve_value"),
        "train": _median(train, "dur_resolve_value"),
        "infer": _median(infer, "dur_resolve_value"),
    }
    for kind, value in access.items():
        paper = "<1s (local FS)" if kind == "simulate" else "1-5s (Globus)"
        table.add(f"data access median: {kind}", paper, fmt_s(value))
    table.add(
        "only cross-resource access exceeds 1s",
        "inference >1s, simulate <1s",
        f"infer {fmt_s(access['infer'])}, sim {fmt_s(access['simulate'])}",
        holds=access["infer"] > 1.0 > access["simulate"],
    )
    table.add(
        "cross-resource waits within Globus band",
        "1-5s (can be shorter if pre-staged)",
        f"train {fmt_s(access['train'])}, infer {fmt_s(access['infer'])}",
        holds=0.2 <= access["train"] <= 8.0 and 0.2 <= access["infer"] <= 8.0,
    )

    # --- §V-D3: dispatch -----------------------------------------------------
    sim_dispatch = _median(sim, "comm_server_to_worker")
    table.add(
        "simulation dispatch (server->worker)",
        "~100ms",
        fmt_s(sim_dispatch),
        holds=0.02 <= sim_dispatch <= 1.0,
    )
    sim_runtime = _median(sim, "time_running")
    table.add(
        "sim dispatch / runtime",
        "<1%... small",
        f"{100 * sim_dispatch / sim_runtime:.1f}%",
        holds=sim_dispatch / sim_runtime < 0.05,
    )
    infer_resolve = _median(infer, "dur_resolve_proxies")
    infer_runtime = _median(infer, "time_running")
    table.add(
        "inference input resolve / runtime",
        "<10%",
        f"{100 * infer_resolve / infer_runtime:.1f}%",
        holds=infer_resolve / infer_runtime < 0.25,
    )

    # --- per-proxy resolve breakdown: which *input* the inference workers
    # actually waited on.  arg0 is the shared model proxy — cache-hit after
    # the first chunk — so the large padding input dominates.  The per-arg
    # details must exist and sum to the aggregate resolve counter.
    by_arg: dict[str, list[float]] = {}
    for r in infer:
        for arg_name, seconds in r.proxy_resolve_detail.items():
            by_arg.setdefault(arg_name, []).append(seconds)
    for arg_name in sorted(by_arg):
        table.add(
            f"inference resolve breakdown: {arg_name}",
            "-",
            fmt_s(statistics.median(by_arg[arg_name])),
        )
    detail_ok = all(
        abs(sum(r.proxy_resolve_detail.values()) - r.dur_resolve_proxies)
        <= 0.05 * max(r.dur_resolve_proxies, 1e-9) + 1e-3
        for r in infer
    )
    table.add(
        "per-arg resolve details sum to aggregate",
        "yes",
        f"{len(by_arg)} distinct proxied inputs",
        holds=bool(by_arg) and detail_ok,
    )

    # --- ahead-of-time caching (§V-D3's 12% sub-100 ms resolutions): the
    # shared model proxy hits the per-site cache on every chunk after the
    # first, so the cross store must show cache hits.
    cross = outcome.store_metrics.get("cross", {})
    hit_rate = cross.get("cache_hit_rate", 0.0)
    table.add(
        "cross-store proxy cache hit rate",
        ">0 (12% of inference resolutions <100ms)",
        f"{100 * hit_rate:.0f}%",
        holds=hit_rate > 0.0,
    )
    table.note(
        f"{len(sim)} simulate, {len(train)} train, {len(infer)} inference results"
    )

    report_sink("fig5_notification", table)
    assert table.all_hold, "Fig. 5 qualitative claims diverged; see table"
