"""Figure 6 + §V-E1 — molecular design across the three workflow systems.

Paper numbers:
* scientific parity: 145.0 molecules found (FuncX+Globus) vs 140.3
  (Parsl+Redis), within run-to-run spread (129–149 across seeds);
* ML makespan (time to reorder the task queue after requesting retraining):
  FuncX+Globus 1565 s < Parsl+Redis 1676 s < Parsl 1828 s — both
  pass-by-reference systems beat plain Parsl, and Globus wins given the
  inference tasks' multi-GB data;
* CPU idle time between simulations: ~500 ms (FuncX) vs ~100 ms
  (Parsl+Redis); both keep utilization above 99 %.
"""

from __future__ import annotations

import statistics

import pytest

from common import fmt_s
from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign
from repro.bench.reporting import ReportTable
from repro.net.clock import reset_clock

CONFIG = MolDesignConfig(n_molecules=1200)
SEEDS = (1, 2)
CONFIGS = ("funcx+globus", "parsl+redis", "parsl")


@pytest.mark.benchmark(group="fig6")
def test_fig6_system_comparison(benchmark, report_sink):
    outcomes: dict[str, list] = {}

    def run():
        for config in CONFIGS:
            outcomes[config] = []
            for seed in SEEDS:
                reset_clock()  # re-zero between campaigns, same scale
                outcomes[config].append(
                    run_moldesign_campaign(
                        config, CONFIG, seed=seed, join_timeout=400
                    )
                )
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ReportTable("Fig. 6 / §V-E1 — molecular design system comparison")

    found = {c: [o.n_found for o in outcomes[c]] for c in CONFIGS}
    makespan = {
        c: statistics.median(
            m for o in outcomes[c] for m in o.ml_makespans
        )
        for c in CONFIGS
    }
    idle = {
        c: statistics.median(g for o in outcomes[c] for g in o.cpu_idle_gaps)
        for c in CONFIGS
    }
    utilization = {
        c: min(o.cpu_utilization for o in outcomes[c]) for c in CONFIGS
    }

    for config in CONFIGS:
        table.add(
            f"{config}: found | makespan | idle | util",
            "-",
            f"{statistics.fmean(found[config]):.1f} | {makespan[config]:.0f}s | "
            f"{fmt_s(idle[config])} | {100 * utilization[config]:.1f}%",
        )

    # Claim 1: scientific parity between FuncX+Globus and Parsl+Redis.
    fx = statistics.fmean(found["funcx+globus"])
    pr = statistics.fmean(found["parsl+redis"])
    spread = max(
        max(found[c]) - min(found[c]) for c in ("funcx+globus", "parsl+redis")
    )
    table.add(
        "outcome parity funcx vs parsl+redis",
        "145.0 vs 140.3 (within seed spread)",
        f"{fx:.1f} vs {pr:.1f} (seed spread {spread})",
        holds=abs(fx - pr) <= max(spread, 0.25 * max(fx, pr)),
    )

    # Claim 2: makespan ordering funcx < parsl+redis < parsl.
    ordering = (
        makespan["funcx+globus"] < makespan["parsl+redis"] < makespan["parsl"]
    )
    table.add(
        "ML makespan ordering",
        "1565s < 1676s < 1828s",
        f"{makespan['funcx+globus']:.0f} < {makespan['parsl+redis']:.0f} "
        f"< {makespan['parsl']:.0f}",
        holds=ordering,
    )
    table.add(
        "pass-by-reference beats plain Parsl",
        "clear advantage",
        f"{makespan['parsl'] / makespan['parsl+redis']:.2f}x",
        holds=makespan["parsl+redis"] < makespan["parsl"]
        and makespan["funcx+globus"] < makespan["parsl"],
    )

    # Claim 3: idle times — FuncX ~500 ms, Parsl+Redis ~100 ms.
    table.add(
        "idle: funcx > parsl+redis",
        "~500ms vs ~100ms",
        f"{fmt_s(idle['funcx+globus'])} vs {fmt_s(idle['parsl+redis'])}",
        holds=idle["funcx+globus"] > idle["parsl+redis"],
    )
    table.add(
        "funcx idle in sub-second band",
        "~500ms",
        fmt_s(idle["funcx+globus"]),
        holds=0.1 <= idle["funcx+globus"] <= 2.0,
    )

    # Claim 4: both keep CPU utilization high.
    table.add(
        "CPU utilization high in both",
        ">99% (at paper-scale 60s tasks; see EXPERIMENTS.md)",
        f"funcx {100 * utilization['funcx+globus']:.1f}%, "
        f"parsl+redis {100 * utilization['parsl+redis']:.1f}%",
        holds=utilization["funcx+globus"] > 0.95
        and utilization["parsl+redis"] > 0.97,
    )
    table.note(
        f"{len(SEEDS)} seeds per config; budget {CONFIG.max_simulations} "
        f"simulations of ~{CONFIG.sim_duration:.0f}s on "
        f"{8} CPU workers"
    )

    report_sink("fig6_moldesign", table)

    # Fig. 6a panel: molecules found vs simulation time, one chart per system.
    from conftest import RESULTS_DIR
    from repro.bench.plotting import ascii_timeseries

    panels = []
    for config in CONFIGS:
        timeline = outcomes[config][0].found_timeline
        panels.append(
            ascii_timeseries(
                [(t / 3600.0, float(n)) for t, n in timeline],
                title=f"{config}: molecules found vs simulation time",
                y_label="found",
                x_label="CPU-hours",
                height=8,
            )
        )
    charts = "\n\n".join(panels)
    (RESULTS_DIR / "fig6_panels.txt").write_text(charts + "\n")
    print("\n" + charts + "\n")

    assert table.all_hold, "Fig. 6 qualitative claims diverged; see table"
