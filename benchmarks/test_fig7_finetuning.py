"""Figure 7 — surrogate fine-tuning across the three workflow systems.

Paper numbers:
* (a) force RMSD on the held-out DFT test set: 1.30±0.08 eV/Å (FuncX),
  1.47±0.09 (Parsl+ProxyStore), 1.36±0.07 (Parsl) — indistinguishable
  across systems, all better than before fine-tuning (dashed line);
* (b) per-task overheads: remote-GPU tasks dominated by Globus transfer
  time under FuncX; Parsl-without-proxystore CPU overheads scale with the
  task's data size (820 ms for 3 MB sampling vs 20 ms for 20 kB
  simulation), while pass-by-reference keeps them flat (~200 vs ~170 ms).
"""

from __future__ import annotations

import statistics

import pytest

from common import fmt_s
from repro.apps.finetuning import FineTuneConfig, run_finetuning_campaign
from repro.bench.reporting import ReportTable
from repro.net.clock import reset_clock

CONFIG = FineTuneConfig(
    n_waters=3,
    n_pretrain=200,
    target_new_structures=36,
    retrain_after=12,
    n_ensemble=3,
    uncertainty_batch=60,
    inference_batch=30,
    pretrain_epochs=25,
    train_epochs=20,
    n_rbf_centers=10,
)
CONFIGS = ("funcx+globus", "parsl+redis", "parsl")


def _median_overhead(results):
    values = [r.overhead for r in results if r.success and r.overhead is not None]
    return statistics.median(values) if values else float("nan")


@pytest.mark.benchmark(group="fig7")
def test_fig7_finetuning_comparison(benchmark, report_sink):
    outcomes = {}

    def run():
        for config in CONFIGS:
            reset_clock()
            outcomes[config] = run_finetuning_campaign(
                config, CONFIG, seed=9, join_timeout=400
            )
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ReportTable("Fig. 7 — surrogate fine-tuning system comparison")

    # --- (a) scientific outcome ---------------------------------------------
    rmsds = {c: outcomes[c].rmsd_after for c in CONFIGS}
    before = statistics.fmean(outcomes[c].rmsd_before for c in CONFIGS)
    for config in CONFIGS:
        table.add(
            f"{config}: force RMSD after fine-tune",
            "1.30-1.47 eV/A (all systems alike)",
            f"{rmsds[config]:.3f} (before {outcomes[config].rmsd_before:.3f})",
        )
    improved = all(
        outcomes[c].rmsd_after < outcomes[c].rmsd_before for c in CONFIGS
    )
    table.add(
        "fine-tuning improves on pre-trained model",
        "all below the dashed line",
        "yes" if improved else "no",
        holds=improved,
    )
    spread = max(rmsds.values()) / min(rmsds.values())
    table.add(
        "systems scientifically indistinguishable",
        "run-to-run variation dominates",
        f"max/min RMSD = {spread:.2f}x",
        holds=spread < 1.6,
    )
    energy_improved = all(
        outcomes[c].energy_rmse_after < outcomes[c].energy_rmse_before
        for c in CONFIGS
    )
    table.add(
        "energy RMSE improves everywhere",
        "(implied)",
        "yes" if energy_improved else "no",
        holds=energy_improved,
    )

    # --- (b) per-task overheads ------------------------------------------------
    overheads = {
        (config, topic): _median_overhead(outcomes[config].results[topic])
        for config in CONFIGS
        for topic in ("simulate", "sample", "train", "infer")
    }
    for config in CONFIGS:
        table.add(
            f"{config}: overhead sim|sample|train|infer",
            "-",
            " | ".join(
                fmt_s(overheads[(config, t)])
                for t in ("simulate", "sample", "train", "infer")
            ),
        )

    # FuncX: remote-GPU task overhead dominated by cross-site data movement.
    fx_gpu = statistics.fmean(
        [overheads[("funcx+globus", "train")], overheads[("funcx+globus", "infer")]]
    )
    fx_cpu = overheads[("funcx+globus", "simulate")]
    table.add(
        "funcx: GPU-task overhead > CPU-task overhead",
        "transfer-dominated",
        f"{fmt_s(fx_gpu)} vs {fmt_s(fx_cpu)}",
        holds=fx_gpu > fx_cpu,
    )
    fx_infer = [r for r in outcomes["funcx+globus"].results["infer"] if r.success]
    wait_share = statistics.fmean(
        (r.dur_resolve_proxies + (r.dur_resolve_value or 0)) / r.overhead
        for r in fx_infer
        if r.overhead
    )
    table.add(
        "funcx infer: share of overhead waiting on data",
        "gray bars dominate",
        f"{100 * wait_share:.0f}%",
        holds=wait_share > 0.2,
    )

    # Parsl (by value): overhead grows with payload; proxied configs flatter.
    # Informational rows only: at our scaled task mix the 3 MB-vs-20 kB
    # contrast (~10 ms of transport) sits below the simulator's measurement
    # floor and is dominated by worker-queue contention, so the ratio is
    # reported but not asserted (see EXPERIMENTS.md "known divergences").
    parsl_ratio = overheads[("parsl", "sample")] / overheads[("parsl", "simulate")]
    proxied_ratio = overheads[("parsl+redis", "sample")] / overheads[
        ("parsl+redis", "simulate")
    ]
    table.add(
        "parsl overhead vs task data size",
        "820ms (3MB) vs 20ms (20kB)",
        f"sample/sim overhead ratio {parsl_ratio:.1f}x",
    )
    table.add(
        "proxied sample/sim overhead ratio",
        "200ms vs 170ms (flat)",
        f"{proxied_ratio:.1f}x",
    )
    table.note(
        f"{CONFIG.target_new_structures} new DFT structures per run; "
        f"test set from ground-truth MD at 100/300/900K"
    )

    report_sink("fig7_finetuning", table)
    assert table.all_hold, "Fig. 7 qualitative claims diverged; see table"
