"""Durability benchmark — journal replay cost and write-ahead overhead.

The paper's cloud tier outlives any process because its state is durable;
``repro.durable`` buys that property with a write-ahead journal.  Two costs
decide whether that trade is honest, and this benchmark measures both:

* **Recovery time scales with journal length** — replay pays the journal
  medium's read charges, so a crash-rebuilt shard's ``recovery_s`` grows
  with the log; snapshot compaction (one state document instead of the
  per-task submit/dispatch/result triple) shrinks the bytes replayed and
  with them the recovery time.
* **Journaling stays off the critical path** — each submit's fsync rides a
  2 ms-latency WAL volume while the client pays a ~40 ms cloud API round
  trip, so the end-to-end submit overhead of write-ahead journaling must
  stay under 15%.

Quick mode (``REPRO_DURABLE_QUICK=1``, the CI smoke job) shrinks the task
counts but keeps every assertion.
"""

from __future__ import annotations

import os

import pytest

from common import noop_task
from repro.bench.reporting import ReportTable
from repro.durable import FileJournalBackend, Journal, recover_cloud
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud
from repro.net.clock import get_clock, reset_clock
from repro.net.context import at_site
from repro.net.defaults import build_paper_testbed
from repro.net.fs import FileSystem
from repro.serialize import serialize

QUICK = os.environ.get("REPRO_DURABLE_QUICK", "") not in ("", "0")

#: Task-ledger sizes for the replay-scaling sweep.
LEDGER_SIZES = [12, 36] if QUICK else [20, 60, 120]
#: Requeue rounds piled onto the compaction comparison: pure lease history.
CHURN_ROUNDS = 25 if QUICK else 40
#: Submits timed for the write-ahead overhead comparison.
OVERHEAD_SUBMITS = 10 if QUICK else 30
#: WAL volume: cheap appends (the fsync), deliberately modest read
#: bandwidth so replay bytes — not the op floor — dominate recovery.
WAL_READ_BANDWIDTH = 2e4
WAL_OP_LATENCY = 2e-3
#: The virtual clock is wall-driven, so Python execution time leaks into
#: nominal measurements; the replay sweep runs coarse (1 nominal s = 20 ms
#: wall) to keep the WAL's charged I/O dominant over that noise.
DURABLE_TIME_SCALE = 0.02


def _wal() -> FileSystem:
    return FileSystem(
        "wal", read_bandwidth=WAL_READ_BANDWIDTH, op_latency=WAL_OP_LATENCY
    )


def _journaled_cloud(seed: int, journal: Journal | None):
    testbed = build_paper_testbed(seed=seed)
    auth = AuthServer()
    identity = auth.register_identity("bench", "anl.gov")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(
        testbed.faas_cloud, testbed.network, auth, testbed.constants, journal=journal
    )
    endpoint_id = cloud.register_endpoint(token, "bench", testbed.theta_compute)
    func_id = cloud.register_function(token, serialize(noop_task))
    return testbed, auth, token, cloud, endpoint_id, func_id


def _run_ledger(cloud, token, endpoint_id, func_id, n_tasks: int, churn: int) -> None:
    """Admit ``n_tasks``, dispatch half, complete half of the dispatched —
    a mixed WAITING/DISPATCHED/terminal ledger — then run ``churn`` rounds
    of endpoint crash/requeue.  Each round appends a dispatch record
    (lease history) without growing the live state: exactly the redundancy
    snapshot compaction exists to erase."""
    for i in range(n_tasks):
        cloud.submit(token, "bench-client", func_id, endpoint_id, serialize(((i,), {})))
    dispatched = cloud.fetch_tasks(token, endpoint_id, n_tasks // 2, timeout=1.0)
    for dispatch in dispatched[: n_tasks // 4]:
        cloud.report_result(
            token, endpoint_id, dispatch.task_id, True, serialize({"ok": True})
        )
    for _ in range(churn):
        cloud.fetch_tasks(token, endpoint_id, n_tasks, timeout=1.0)
        cloud.requeue_dispatched(token, endpoint_id)


def _recovery_time(
    n_tasks: int, compact_every: int | None = None, churn: int = 0
) -> tuple[float, int]:
    """(recovery_s for a crash after ``n_tasks`` admissions, bytes replayed)."""
    wal = _wal()
    journal = Journal(FileJournalBackend(wal, "shard"), compact_every=compact_every)
    testbed, auth, token, cloud, endpoint_id, func_id = _journaled_cloud(11, journal)
    _run_ledger(cloud, token, endpoint_id, func_id, n_tasks, churn)
    replay_bytes = journal.log_bytes()
    snap = journal.backend.load_snapshot()
    replay_bytes += len(snap) if snap else 0

    fresh = FaasCloud(
        testbed.faas_cloud,
        testbed.network,
        auth,
        testbed.constants,
        bus=cloud.bus,
        completed=cloud._completed,
        journal=journal,
    )
    report = recover_cloud(fresh)
    assert len(fresh._tasks) == n_tasks  # zero lost tasks, every time
    return report.recovery_s, replay_bytes


def _submit_elapsed(journal: Journal | None) -> float:
    """Nominal seconds for OVERHEAD_SUBMITS client submits (remote site,
    real API round trips) against a cloud with/without a journal."""
    testbed, _auth, token, cloud, endpoint_id, func_id = _journaled_cloud(13, journal)
    client = FaasClient(cloud, token, site=testbed.theta_login)
    # Stop the notifier before timing: its polls interleave latency-sample
    # draws with the submit thread's, which would make the two runs diverge
    # by scheduling noise instead of by the journal's cost.
    client.kill()
    clock = get_clock()
    with at_site(testbed.theta_login):
        start = clock.now()
        for i in range(OVERHEAD_SUBMITS):
            client.submit(func_id, endpoint_id, i)
        return clock.now() - start


def test_fig_durable(report_sink):
    table = ReportTable(title="Durability: journal replay cost and WAL overhead")

    reset_clock(DURABLE_TIME_SCALE)
    sweep = [(n, *_recovery_time(n)) for n in LEDGER_SIZES]
    times = [t for _n, t, _b in sweep]
    monotone = all(a < b for a, b in zip(times, times[1:]))
    table.add(
        "recovery_s across ledger sizes "
        f"{LEDGER_SIZES}",
        "grows with journal length",
        " / ".join(f"{t:.3f}s" for t in times),
        monotone,
    )

    biggest = LEDGER_SIZES[-1]
    uncompacted_s, uncompacted_b = _recovery_time(biggest, churn=CHURN_ROUNDS)[:2]
    compacted_s, compacted_b = _recovery_time(
        biggest, compact_every=8, churn=CHURN_ROUNDS
    )
    table.add(
        f"compaction (every 8) at n={biggest}, {CHURN_ROUNDS} requeue rounds",
        "fewer bytes, faster replay",
        f"{compacted_b}B/{compacted_s:.3f}s vs {uncompacted_b}B/{uncompacted_s:.3f}s",
        compacted_b < uncompacted_b and compacted_s < uncompacted_s,
    )

    reset_clock(DURABLE_TIME_SCALE)  # re-zero; coarse keeps the leak small
    plain = _submit_elapsed(None)
    journaled = _submit_elapsed(Journal(FileJournalBackend(_wal(), "shard")))
    overhead = (journaled - plain) / plain
    table.add(
        f"WAL submit overhead ({OVERHEAD_SUBMITS} submits)",
        "< 15%",
        f"{100 * overhead:.1f}% ({journaled:.2f}s vs {plain:.2f}s)",
        overhead < 0.15,
    )
    table.note(
        "Replay pays the WAL's read charges; the fsync rides a "
        f"{1e3 * WAL_OP_LATENCY:.0f} ms volume under a ~40 ms API RTT."
    )

    report_sink("fig_durable", table)
    assert table.all_hold, table.render()
