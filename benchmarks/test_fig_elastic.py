"""Elastic endpoints benchmark — autoscaling vs static pilots, scale-to-zero,
and runtime task-ratio steering.

The paper's pilot jobs are fixed-size: a campaign requests N nodes up front
and pays for them through every lull.  ``repro.elastic`` makes the pilot a
runtime variable — an ``Autoscaler`` watches the endpoint's canonical demand
signals (local queue depth + active closures + the cloud-side tenant
backlog) and grows/drains the ``ElasticWorkerPool``, releasing *all* nodes
when the endpoint goes idle and re-provisioning from a bus doorbell on the
next submission.  This benchmark quantifies the three claims:

* **Bursty efficiency** — on a diurnal burst/lull trace, the elastic
  endpoint beats an equal-throughput static pilot by >= 1.3x mean worker
  utilization OR <= 0.8x node-hours, while staying within a 1.35x makespan
  envelope;
* **Scale-from-zero** — waking a dormant (zero-worker) endpoint is
  event-driven and bounded: time-to-first-task is recorded
  (``autoscale.time_to_first_task_s``) and stays under 15 nominal s;
* **Task-ratio steering** — the molecular-design campaign with
  ``elastic_steering`` on re-apportions workers from the simulation lane to
  the training lane at the learning threshold (the bragg.py move) with zero
  lost tasks, even under ``provision_delay`` chaos, and the chaos cell's
  ledger digest is bit-identical across reruns.

Quick mode (``REPRO_ELASTIC_QUICK=1``, the CI smoke job) shrinks the trace
and the steered campaign but keeps every assertion.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.reporting import ReportTable
from repro.chaos.campaign import run_cell
from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
from repro.elastic import AutoscalePolicy, Autoscaler, ElasticWorkerPool
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import build_paper_testbed
from repro.observe import MetricsRegistry, set_metrics
from repro.resources import WorkerPool

QUICK = os.environ.get("REPRO_ELASTIC_QUICK", "") not in ("", "0")

#: The diurnal trace: bursts of equal work separated by long lulls.
BURSTS = 2 if QUICK else 3
TASKS_PER_BURST = 8 if QUICK else 14
TASK_DURATION = 8.0  # nominal s of compute per task
LULL = 30.0 if QUICK else 45.0  # nominal s of silence between bursts
STATIC_WORKERS = 8  # the fixed pilot the elastic endpoint competes with

TTFT_BOUND = 15.0  # nominal s: doorbell wake -> first closure starts
MAKESPAN_TOLERANCE = 1.35

ELASTIC_POLICY = AutoscalePolicy(
    min_workers=0,
    max_workers=STATIC_WORKERS,
    target_tasks_per_worker=1.5,
    scale_up_step=3,
    scale_down_step=2,
    interval=1.0,
    cooldown=1.0,
    idle_grace=4.0,
    zero_grace=8.0,
)


def _sim_task(duration):
    get_clock().sleep(duration)
    return duration


def _run_trace(elastic: bool) -> dict:
    """Drive the burst/lull trace through one endpoint; return the ledger."""
    testbed = build_paper_testbed(seed=7)
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("bench", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    if elastic:
        pool: WorkerPool = ElasticWorkerPool(
            testbed.theta_compute, 0, name="fig-elastic", poll_interval=0.1
        )
    else:
        pool = WorkerPool(testbed.theta_compute, STATIC_WORKERS, name="fig-static")
    endpoint = FaasEndpoint(
        "trace", cloud, token, testbed.theta_login, pool
    ).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    scaler = Autoscaler(endpoint, policy=ELASTIC_POLICY).start() if elastic else None

    clock = get_clock()
    start = clock.now()
    try:
        for burst in range(BURSTS):
            with at_site(testbed.theta_login):
                futures = [
                    client.run(_sim_task, endpoint.endpoint_id, TASK_DURATION)
                    for _ in range(TASKS_PER_BURST)
                ]
            for future in futures:
                assert future.result(timeout=240) == TASK_DURATION
            if burst < BURSTS - 1:
                clock.sleep(LULL)
        makespan = clock.now() - start
        if elastic:
            node_seconds = pool.node_seconds_total()
            wakes = list(pool.wake_latencies)
            decisions = [d.action for d in scaler.decisions]
        else:
            node_seconds = STATIC_WORKERS * makespan
            wakes, decisions = [], []
        busy = pool.busy_seconds
    finally:
        if scaler is not None:
            scaler.stop()
        client.close()
        endpoint.stop()
    return {
        "makespan": makespan,
        "node_seconds": node_seconds,
        "busy_seconds": busy,
        "utilization": busy / node_seconds if node_seconds > 0 else 0.0,
        "wake_latencies": wakes,
        "decisions": decisions,
    }


def _steered_campaign() -> dict:
    """The moldesign campaign with elastic steering, under provision chaos."""
    from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign

    config = MolDesignConfig(
        n_molecules=300 if QUICK else 400,
        max_simulations=36 if QUICK else 60,
        n_initial=12 if QUICK else 16,
        retrain_after=10 if QUICK else 12,
        n_ensemble=2,
        inference_chunks=2,
        elastic_steering=True,
    )
    # Half of all first provision attempts stall 1 nominal s, then fail; the
    # pool's retry policy must absorb every one.  The fixed run_id pins the
    # chaos keys (``<run_id>-cpu|w<i>``) so fires are deterministic.
    injector = FaultInjector(
        FaultPlan.build(
            23,
            (FaultSpec("scheduler.provision", "provision_delay", rate=0.5,
                       delay=1.0, match={"attempt": 0}),),
        )
    )
    set_injector(injector)
    try:
        outcome = run_moldesign_campaign(
            "funcx+globus",
            config,
            seed=23,
            run_id="fig-elastic-steer",
            n_cpu_workers=6,
            n_gpu_workers=6,
            join_timeout=400,
        )
    finally:
        set_injector(None)
    return {"outcome": outcome, "fires": injector.fire_count()}


@pytest.mark.benchmark(group="elastic")
def test_fig_elastic_endpoints(benchmark, report_sink):
    state: dict = {}

    def run():
        registry = MetricsRegistry()
        set_metrics(registry)
        try:
            state["static"] = _run_trace(elastic=False)
            state["elastic"] = _run_trace(elastic=True)
            state["ttft_recorded"] = sum(
                h.count
                for name, _, h in registry.histograms()
                if name == "autoscale.time_to_first_task_s"
            )
            state["wake_count"] = registry.counter_total("autoscale.wakes")
        finally:
            set_metrics(None)
        state["steered"] = _steered_campaign()
        state["cells"] = [
            run_cell("provision_delay", "faas-file", seed=23, n_tasks=6)
            for _ in range(2)
        ]
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ReportTable(
        "Elastic endpoints — autoscaling, scale-to-zero, task-ratio steering"
    )

    static, elastic = state["static"], state["elastic"]
    util_ratio = elastic["utilization"] / max(static["utilization"], 1e-9)
    hour_ratio = elastic["node_seconds"] / max(static["node_seconds"], 1e-9)
    makespan_ratio = elastic["makespan"] / max(static["makespan"], 1e-9)
    table.add(
        "mean worker utilization (static vs elastic)",
        ">= 1.3x OR <= 0.8x node-hours",
        f"{100 * static['utilization']:.0f}% vs "
        f"{100 * elastic['utilization']:.0f}% ({util_ratio:.2f}x util, "
        f"{hour_ratio:.2f}x node-hours)",
        holds=util_ratio >= 1.3 or hour_ratio <= 0.8,
    )
    table.add(
        "node-seconds consumed on the bursty trace",
        "elastic well below static",
        f"{static['node_seconds']:.0f}s vs {elastic['node_seconds']:.0f}s",
    )
    table.add(
        "makespan envelope (elastic ramp-up cost)",
        f"<= {MAKESPAN_TOLERANCE:.2f}x static",
        f"{static['makespan']:.0f}s vs {elastic['makespan']:.0f}s "
        f"({makespan_ratio:.2f}x)",
        holds=makespan_ratio <= MAKESPAN_TOLERANCE,
    )

    wakes = elastic["wake_latencies"]
    table.add(
        "scale-from-zero: time-to-first-task",
        f"recorded, each < {TTFT_BOUND:.0f}s nominal",
        f"{len(wakes)} wake(s): "
        + ", ".join(f"{w:.2f}s" for w in wakes[:4]),
        holds=bool(wakes)
        and all(w < TTFT_BOUND for w in wakes)
        and state["ttft_recorded"] >= len(wakes)
        and state["wake_count"] >= 1,
    )
    table.add(
        "scale-to-zero actually happened during lulls",
        "to_zero decision(s)",
        ", ".join(sorted(set(elastic["decisions"]))) or "-",
        holds="to_zero" in elastic["decisions"],
    )

    steered = state["steered"]
    outcome = steered["outcome"]
    events = outcome.steering_events
    retrain_moves = [e for e in events if e.reason.startswith("retrain")]
    gpu_heavy = bool(retrain_moves) and all(
        e.targets["gpu"] > e.targets["cpu"] for e in retrain_moves
    )
    table.add(
        "steered campaign: sim->train reallocation at the learning threshold",
        "gpu-heavy targets on retrain",
        f"{len(events)} steer(s), retrain targets "
        + (str(retrain_moves[0].targets) if retrain_moves else "none"),
        holds=gpu_heavy,
    )
    table.add(
        "steered campaign under provision_delay chaos: lost tasks",
        "0 failures, >= 1 fire",
        f"{outcome.n_failures} failures over {outcome.n_simulated} sims, "
        f"{steered['fires']} provision fault(s)",
        holds=outcome.n_failures == 0
        and outcome.n_simulated > 0
        and steered["fires"] >= 1,
    )

    cell_a, cell_b = state["cells"]
    table.add(
        "provision_delay chaos cell: deterministic ledger digest",
        "bit-identical across reruns",
        f"{cell_a.digest[:16]} vs {cell_b.digest[:16]}",
        holds=cell_a.passed and cell_b.passed and cell_a.digest == cell_b.digest,
    )

    table.note(
        f"trace: {BURSTS} bursts x {TASKS_PER_BURST} tasks x "
        f"{TASK_DURATION:.0f}s, {LULL:.0f}s lulls; static pilot = "
        f"{STATIC_WORKERS} workers"
        + (" (quick mode)" if QUICK else "")
    )
    report_sink("fig_elastic", table)
    assert table.all_hold, "elastic endpoint claims diverged; see table"
