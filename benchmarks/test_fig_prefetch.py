"""Proxy data-plane benchmark — ahead-of-time prefetch, byte-budgeted
caching, and single-flight resolution vs. the seed's cold read path.

The paper attributes the FuncX+Globus configuration's parity with
direct-connection Parsl largely to ProxyStore keeping bulk data off the task
path: model weights reach a site once and are reused, giving sub-100 ms
proxy resolutions for 12 % of inference tasks (§V-B/§V-D).  This benchmark
quantifies the three mechanisms that reproduce that behavior:

* **Prefetch** — a hinted site's first resolve is a cache hit (>= 10x
  faster than the unhinted cold path under the virtual clock);
* **Single-flight** — an N-worker fan-out on one key pays exactly one
  connector fetch instead of N;
* **End-to-end hints** — the molecular-design campaign with
  ``prefetch_hints=True`` resolves inference inputs at least as fast, with
  at least the cache hit rate, of the unhinted seed path.

Quick mode (``REPRO_PREFETCH_QUICK=1``, used by the CI smoke job) skips the
campaign A/B and shrinks the synthetic sections.
"""

from __future__ import annotations

import os
import statistics
import threading

import pytest

from common import fmt_s
from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign
from repro.bench.reporting import ReportTable
from repro.net.clock import get_clock, reset_clock
from repro.net.context import at_site
from repro.net.defaults import build_paper_testbed
from repro.net.kvstore import KVServer
from repro.proxystore import RedisConnector, Store
from repro.serialize import Blob

QUICK = os.environ.get("REPRO_PREFETCH_QUICK", "") not in ("", "0")

WEIGHT_BYTES = 200_000_000  # model-weight scale: the wire cost dominates
N_GENERATIONS = 3 if QUICK else 5
FANOUT = 8 if QUICK else 16


class CountingConnector(RedisConnector):
    """RedisConnector counting backend fetches (the actual wire transfers)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fetches = 0
        self._count_lock = threading.Lock()

    def get(self, key, timeout=None):
        with self._count_lock:
            self.fetches += 1
        return super().get(key, timeout=timeout)


def _weights_store(testbed, name):
    server = KVServer(testbed.theta_login, name=f"kv-{name}")
    connector = CountingConnector(server, testbed.network)
    store = Store(name, connector, cache_bytes=4_000_000_000)
    return store, connector


@pytest.mark.benchmark(group="prefetch")
def test_fig_prefetch_data_plane(benchmark, report_sink):
    testbed = build_paper_testbed(seed=7)
    state = {}

    def run():
        clock = get_clock()

        # -- prefetch: hinted warm site vs unhinted (seed) cold path --------
        store, connector = _weights_store(testbed, "bench-prefetch")
        with at_site(testbed.theta_login):
            cold = [
                store.put(Blob(WEIGHT_BYTES, tag=f"cold-{i}"))
                for i in range(N_GENERATIONS)
            ]
            warm = [
                store.put(Blob(WEIGHT_BYTES, tag=f"warm-{i}"))
                for i in range(N_GENERATIONS)
            ]
        store.prefetch(warm, site=testbed.theta_compute, pin=True, wait=True)

        def first_resolve(key):
            start = clock.now()
            store.get(key)
            return clock.now() - start

        with at_site(testbed.theta_compute):
            state["cold_p50"] = statistics.median(first_resolve(k) for k in cold)
            state["warm_p50"] = statistics.median(first_resolve(k) for k in warm)
        state["prefetch_summary"] = store.metrics.summary()
        state["cache_stats"] = store.cache_stats(testbed.theta_compute)
        store.close()

        # -- single-flight: N-worker fan-out on one weights key -------------
        store, connector = _weights_store(testbed, "bench-fanout")
        with at_site(testbed.theta_login):
            key = store.put(Blob(WEIGHT_BYTES, tag="shared-weights"))
        barrier = threading.Barrier(FANOUT)

        def resolve():
            barrier.wait(timeout=60)
            with at_site(testbed.theta_compute):
                store.get(key)

        threads = [
            threading.Thread(target=resolve, daemon=True) for _ in range(FANOUT)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        state["fanout_fetches"] = connector.fetches
        state["fanout_summary"] = store.metrics.summary()
        store.close()

        # -- end to end: moldesign campaign, hinted vs seed ------------------
        if not QUICK:
            cfg = dict(
                n_molecules=1200,
                n_initial=24,
                max_simulations=80,
                retrain_after=20,
                n_ensemble=3,
                inference_chunks=3,
            )
            outcomes = {}
            for hinted in (False, True):
                reset_clock()  # re-zero between campaigns, same scale
                outcomes[hinted] = run_moldesign_campaign(
                    "funcx+globus",
                    MolDesignConfig(prefetch_hints=hinted, **cfg),
                    seed=17,
                    join_timeout=400,
                )
            state["campaign"] = outcomes
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ReportTable("Prefetch data plane — warm hits, single-flight, hints")
    cold_p50, warm_p50 = state["cold_p50"], state["warm_p50"]
    speedup = cold_p50 / max(warm_p50, 1e-9)
    table.add("cold first-resolve p50 (seed path)", "wire-bound", fmt_s(cold_p50))
    table.add("warm first-resolve p50 (hinted site)", "cache hit", fmt_s(warm_p50))
    table.add(
        "warm-site speedup",
        ">= 10x",
        f"{speedup:.0f}x",
        holds=cold_p50 >= 10 * max(warm_p50, 1e-9),
    )
    summary = state["prefetch_summary"]
    table.add(
        "hinted-site hit rate (first touches)",
        "1.0 for hinted keys",
        f"{summary['cache_hit_rate']:.2f}",
        holds=summary["cache_hit_rate"] >= 0.5,  # cold half misses by design
    )
    stats = state["cache_stats"]
    table.add(
        "cache occupancy within byte budget",
        "never exceeded",
        f"{stats.bytes_used / 1e6:.0f}/{stats.bytes_budget / 1e6:.0f} MB",
        holds=stats.bytes_used <= stats.bytes_budget,
    )
    table.add(
        "evictions reconcile (inserts = residents + evictions)",
        "exact",
        f"{stats.inserts} = {stats.entries} + {stats.evictions}",
        holds=stats.inserts == stats.entries + stats.evictions,
    )
    table.add(
        f"connector fetches for {FANOUT}-worker fan-out on one key",
        "exactly 1 (seed: one per worker)",
        str(state["fanout_fetches"]),
        holds=state["fanout_fetches"] == 1,
    )
    fanout = state["fanout_summary"]
    table.add(
        "fan-out waiters coalesced onto the leader",
        f"{FANOUT - 1}",
        f"{fanout['coalesced']:.0f} coalesced, rest hit the fresh replica",
        holds=fanout["cache_hit_rate"] >= (FANOUT - 1) / FANOUT,
    )

    if not QUICK:
        seed_run = state["campaign"][False]
        hinted_run = state["campaign"][True]

        def infer_resolve_p50(outcome):
            vals = [
                r.dur_resolve_proxies
                for r in outcome.results["infer"]
                if r.success and r.dur_resolve_proxies is not None
            ]
            return statistics.median(vals) if vals else float("nan")

        seed_resolve = infer_resolve_p50(seed_run)
        hinted_resolve = infer_resolve_p50(hinted_run)
        seed_hits = seed_run.store_metrics.get("cross", {}).get("cache_hit_rate", 0.0)
        hinted_hits = hinted_run.store_metrics.get("cross", {}).get(
            "cache_hit_rate", 0.0
        )
        table.add(
            "campaign: inference resolve p50 (seed vs hinted)",
            "hinted <= seed",
            f"{fmt_s(seed_resolve)} vs {fmt_s(hinted_resolve)}",
            holds=hinted_resolve <= seed_resolve * 1.05,
        )
        table.add(
            "campaign: cross-store cache hit rate (seed vs hinted)",
            "hinted >= seed",
            f"{seed_hits:.2f} vs {hinted_hits:.2f}",
            holds=hinted_hits >= seed_hits,
        )
        table.note(
            f"{len(hinted_run.results['infer'])} hinted inference tasks; "
            f"weights {WEIGHT_BYTES / 1e6:.0f} MB nominal"
        )
    else:
        table.note("quick mode: campaign A/B skipped (CI smoke)")

    report_sink("fig_prefetch", table)
    assert table.all_hold, "prefetch data-plane claims diverged; see table"
