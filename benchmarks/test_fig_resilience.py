"""Gray-failure defense benchmark — hedged execution + circuit breakers
against a degraded (10x-slow) endpoint.

The paper's fleet treats an endpoint as either alive (heartbeating) or dead
(lease lapsed).  A *gray* endpoint — alive but slow — defeats that
dichotomy: its lease never lapses, so the lease-failover path never fires
and every task routed to it pays the degradation.  ``repro.resilience``
closes the gap from two sides:

* **Hedged execution** — the client launches a speculative duplicate on a
  healthy endpoint once a task has been in flight past the hedge delay;
  first result wins and the loser is cancelled or reconciled as duplicate
  work (``client.hedges{outcome=won|lost|wasted}``);
* **Circuit breaker** — the gray endpoint's dispatch->result latency EWMA
  drives its health score under the open threshold, the breaker opens, and
  subsequent submits steer away while its backlog sheds to group peers.

This benchmark runs one round-robin campaign over eight single-worker
endpoints, one of them gray, with and without the defenses, and checks the
headline claims:

* **>= 2x makespan improvement** with hedging + breaker over the baseline;
* **< 15% extra task executions** — the tail defense pays a bounded
  duplicate-work premium, not a thundering herd;
* **zero lost tasks** in both runs, and the breaker demonstrably opens and
  steers a post-degradation submit away from the gray endpoint;
* the ``endpoint_slow`` and ``poison_task`` chaos cells produce
  bit-identical ledger digests across reruns.

Quick mode (``REPRO_RESILIENCE_QUICK=1``, the CI smoke job) shrinks the
campaign but keeps every assertion.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.reporting import ReportTable
from repro.chaos.campaign import run_cell
from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
from repro.chaos.policy import RetryPolicy
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.observe import MetricsRegistry, set_metrics
from repro.resilience import EndpointHealthTracker, HealthPolicy, HedgePolicy
from repro.resources import WorkerPool
from repro.serialize import serialize

QUICK = os.environ.get("REPRO_RESILIENCE_QUICK", "") not in ("", "0")

N_ENDPOINTS = 8
TASKS = 16 if QUICK else 24  # round-robin: TASKS / N_ENDPOINTS per endpoint
TASK_DURATION = 2.0  # nominal s of compute per task
GRAY_DELAY = 9.0 * TASK_DURATION  # the gray endpoint runs tasks at ~10x
#: Hedge once a task is in flight longer than a healthy endpoint's whole
#: drain (per-endpoint share x duration + dispatch overheads): healthy work
#: never hedges, gray work always does, well before the 10x completion.
HEDGE_DELAY = (TASKS / N_ENDPOINTS) * (TASK_DURATION + 0.5) + 2.0

MAKESPAN_GAIN = 2.0  # resilient must beat baseline by at least this
EXECUTION_OVERHEAD = 1.15  # and pay < 15% duplicate executions for it

HEALTH = HealthPolicy(
    latency_baseline=3.0,
    latency_threshold=2.0,
    min_samples=1,
    open_score=0.5,
    open_duration=600.0,
    latency_alpha=1.0,
)


def _sim_task(duration):
    get_clock().sleep(duration)
    return duration


def _run_campaign(resilient: bool) -> dict:
    """Round-robin TASKS over N_ENDPOINTS endpoints, endpoint 0 gray; return the
    makespan/execution ledger."""
    injector = FaultInjector(
        FaultPlan.build(
            7,
            (
                FaultSpec(
                    "endpoint.slow",
                    "endpoint_slow",
                    rate=1.0,
                    match={"endpoint": "res-ep-0"},
                    delay=GRAY_DELAY,
                ),
            ),
        )
    )
    set_injector(injector)
    # Install the registry before the endpoints start: the gray degradation
    # counter fires once, inside ``FaasEndpoint.start()``.
    metrics = MetricsRegistry()
    set_metrics(metrics)
    constants = PaperConstants(endpoint_heartbeat_period=1.0, endpoint_lease_ttl=60.0)
    testbed = build_paper_testbed(seed=7, constants=constants)
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("bench", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(
        testbed.faas_cloud,
        testbed.network,
        auth,
        constants,
        health=EndpointHealthTracker(HEALTH) if resilient else None,
    )
    endpoints = [
        FaasEndpoint(
            f"res-ep-{i}",
            cloud,
            token,
            testbed.theta_login,
            WorkerPool(testbed.theta_compute, 1, name=f"res-pool-{i}"),
            failover_group="res",
            max_tasks_per_poll=1,
            poll_interval=0.25,
        ).start()
        for i in range(N_ENDPOINTS)
    ]
    client = FaasClient(
        cloud,
        token,
        site=testbed.theta_login,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=2.0),
    )
    hedge = (
        HedgePolicy(
            endpoints=tuple(e.endpoint_id for e in endpoints), delay=HEDGE_DELAY
        )
        if resilient
        else None
    )
    clock = get_clock()
    start = clock.now()
    steered_value = None
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(
                    _sim_task,
                    endpoints[i % N_ENDPOINTS].endpoint_id,
                    TASK_DURATION,
                    _hedge=hedge,
                )
                for i in range(TASKS)
            ]
        values = [f.result(timeout=600) for f in futures]
        makespan = clock.now() - start
        # Snapshot the duplicate-work premium at campaign completion.  The
        # gray endpoint keeps crawling through its prefetched backlog after
        # the hedges already resolved those futures (and the breaker sheds
        # it once the first 10x latency sample lands) — that straggler
        # cleanup is post-campaign reconciliation, not campaign cost.
        executions = metrics.counter_total("endpoint.executions")
        hedges_launched = metrics.counter_total("client.hedges_launched")
        if resilient:
            # Let the gray endpoint's crawl finally report: its ~10x
            # latency sample opens the breaker, and the next submit aimed
            # at it steers to a healthy peer instead.
            while clock.now() - start < GRAY_DELAY + TASK_DURATION + 4.0:
                clock.sleep(1.0)
            with at_site(testbed.theta_login):
                late = client.run(
                    _sim_task, endpoints[0].endpoint_id, TASK_DURATION
                )
            steered_value = late.result(timeout=120)
        return {
            "makespan": makespan,
            "lost": sum(1 for v in values if v != TASK_DURATION),
            "executions": executions,
            "gray_degraded": metrics.counter_total("endpoint.gray_degraded"),
            "hedges_launched": hedges_launched,
            "breaker_opens": metrics.counter_total("resilience.breaker_opens"),
            "steered": metrics.counter_total("resilience.steered"),
            "steered_value": steered_value,
        }
    finally:
        set_metrics(None)
        client.close()
        for endpoint in endpoints:
            endpoint.stop()
        set_injector(None)


@pytest.mark.benchmark(group="resilience")
def test_fig_resilience(benchmark, report_sink):
    state: dict = {}

    def run():
        state["baseline"] = _run_campaign(resilient=False)
        state["resilient"] = _run_campaign(resilient=True)
        state["slow_cells"] = [
            run_cell("endpoint_slow", "faas-file", seed=0, n_tasks=4)
            for _ in range(2)
        ]
        state["poison_cells"] = [
            run_cell("poison_task", "faas-file", seed=0, n_tasks=4)
            for _ in range(2)
        ]
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)

    base, res = state["baseline"], state["resilient"]
    gain = base["makespan"] / max(res["makespan"], 1e-9)
    overhead = res["executions"] / max(TASKS, 1)

    table = ReportTable(
        "Gray-failure defense — hedged execution + circuit breakers"
    )
    table.add(
        "campaign makespan (baseline vs hedged+breaker)",
        f">= {MAKESPAN_GAIN:.0f}x faster",
        f"{base['makespan']:.0f}s vs {res['makespan']:.0f}s ({gain:.1f}x)",
        holds=gain >= MAKESPAN_GAIN,
    )
    table.add(
        "duplicate-work premium for the tail defense",
        f"< {EXECUTION_OVERHEAD:.2f}x executions",
        f"{res['executions']:.0f} executions for {TASKS} tasks "
        f"({overhead:.2f}x), {res['hedges_launched']:.0f} hedge(s)",
        holds=overhead < EXECUTION_OVERHEAD and res["hedges_launched"] >= 1,
    )
    table.add(
        "zero lost tasks in both runs",
        "every future resolves with its value",
        f"{base['lost']} + {res['lost']} lost",
        holds=base["lost"] == 0 and res["lost"] == 0,
    )
    table.add(
        "breaker opens on the gray endpoint and steers the next submit",
        ">= 1 open, 1 steered submit",
        f"{res['breaker_opens']:.0f} open(s), {res['steered']:.0f} steered, "
        f"gray degradations: {res['gray_degraded']:.0f}",
        holds=res["breaker_opens"] >= 1
        and res["steered"] >= 1
        and res["steered_value"] == TASK_DURATION
        and res["gray_degraded"] == 1
        and base["gray_degraded"] == 1,
    )
    for label, cells in (
        ("endpoint_slow", state["slow_cells"]),
        ("poison_task", state["poison_cells"]),
    ):
        cell_a, cell_b = cells
        table.add(
            f"{label} chaos cell: deterministic ledger digest",
            "bit-identical across reruns",
            f"{cell_a.digest[:16]} vs {cell_b.digest[:16]}",
            holds=cell_a.passed and cell_b.passed and cell_a.digest == cell_b.digest,
        )
    table.note(
        f"{TASKS} tasks x {TASK_DURATION:.0f}s round-robin over "
        f"{N_ENDPOINTS} endpoints; res-ep-0 gray (+{GRAY_DELAY:.0f}s/task); "
        f"hedge delay {HEDGE_DELAY:.1f}s"
        + (" (quick mode)" if QUICK else "")
    )
    report_sink("fig_resilience", table)
    assert table.all_hold, "resilience claims diverged; see table"
