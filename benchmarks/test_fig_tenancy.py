"""Tenancy control-plane benchmark — shard scaling, noisy neighbors, and
two campaigns as co-tenants of one sharded cloud.

The funcX web service the paper builds on is a multi-user fabric: many
campaigns share one AWS-hosted control plane.  ``repro.tenancy`` reproduces
that shape — a ``CloudRouter`` consistent-hashing ``(tenant, function)``
partitions over N ``CloudShard`` services, token-bucket rate limits and
quotas at the router, weighted-round-robin dequeue at every endpoint feed —
and this benchmark quantifies the three claims that make it worth having:

* **Shard scaling** — aggregate no-op submit throughput grows >= 1.5x from
  1 to 4 shards, because admission cost is serialized per shard;
* **Noisy-neighbor isolation** — a quiet tenant's p99 submit latency under
  a hot tenant's flood stays within 3x its solo baseline (the flood is
  absorbed by the hot tenant's token bucket, not by everyone's latency);
* **Co-tenancy** — the molecular-design and fine-tuning campaigns run
  unchanged as two tenants of one 2-shard cloud, losing no tasks even
  while ``shard_outage`` chaos restarts shards at admission.

Submit admission is a *nominal-time* cost (``faas_shard_service_time``), so
this benchmark runs at a coarser time scale than the rest of the harness
(1 nominal s = 20 ms wall): per-submit admission must materialize as a real
wall sleep rather than vanish below the clock's minimum-sleep floor.

Quick mode (``REPRO_TENANCY_QUICK=1``, used by the CI smoke job) keeps the
2-shard / 3-tenant storm and the noisy-neighbor assertion but shrinks the
task counts and skips the campaign co-tenancy section.
"""

from __future__ import annotations

import os
import threading
from dataclasses import replace

import pytest

from common import noop_task
from repro.bench.reporting import ReportTable, percentile
from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
from repro.exceptions import ThrottledError
from repro.faas import SCOPE_COMPUTE, AuthServer
from repro.net.clock import get_clock, reset_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.serialize import serialize
from repro.tenancy import CloudRouter, tenant_scope

QUICK = os.environ.get("REPRO_TENANCY_QUICK", "") not in ("", "0")

#: 1 nominal second = 20 ms wall: a 50 ms nominal admission is a 1 ms wall
#: sleep, comfortably above the clock's 50 us minimum-sleep floor.
TENANCY_TIME_SCALE = 0.02
#: Per-submit admission cost (nominal s) for the synthetic sections — heavy
#: enough that the serialized control-plane work, not Python overhead,
#: dominates the storm.
ADMISSION = 0.05

STORM_THREADS = 8 if QUICK else 16
STORM_PER_THREAD = 6 if QUICK else 8
SOLO_SUBMITS = 20 if QUICK else 40


def _constants() -> PaperConstants:
    return replace(PaperConstants(), faas_shard_service_time=ADMISSION)


def _storm_throughput(n_shards: int) -> float:
    """Aggregate no-op submit throughput (submits / nominal s) with
    STORM_THREADS concurrent clients against an ``n_shards`` cloud."""
    testbed = build_paper_testbed(seed=3, constants=_constants())
    auth = AuthServer()
    identity = auth.register_identity("storm", "anl.gov")
    router = CloudRouter(
        testbed.faas_cloud, testbed.network, auth, testbed.constants,
        n_shards=n_shards,
    )
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    with at_site(testbed.faas_cloud):
        endpoint_id = router.register_endpoint(
            token, "storm-ep", testbed.theta_login
        )
        funcs = [
            router.register_function(token, serialize(noop_task), name=f"storm{i}")
            for i in range(2 * STORM_THREADS)
        ]
    payload = serialize(((), {}))
    clock = get_clock()
    errors: list[Exception] = []

    def worker(tid: int) -> None:
        try:
            with at_site(testbed.faas_cloud):
                for i in range(STORM_PER_THREAD):
                    router.submit(
                        token,
                        f"client-{tid}",
                        funcs[(tid + i) % len(funcs)],
                        endpoint_id,
                        payload,
                    )
        except Exception as exc:  # surfaced below; threads must not die silently
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(STORM_THREADS)
    ]
    start = clock.now()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    elapsed = clock.now() - start
    assert not errors, errors
    total = STORM_THREADS * STORM_PER_THREAD
    assert len(router.task_records()) == total
    return total / elapsed


def _noisy_neighbor() -> dict:
    """Quiet tenant's p99 submit latency, solo vs under a hot flood."""
    testbed = build_paper_testbed(seed=5, constants=_constants())
    auth = AuthServer()
    identity = auth.register_identity("nn", "anl.gov")
    router = CloudRouter(
        testbed.faas_cloud, testbed.network, auth, testbed.constants, n_shards=2
    )
    # The hot tenant is rate-limited well below one shard's admission
    # capacity; the quiet tenant carries the higher dequeue weight.
    router.create_tenant("quiet", weight=3)
    router.create_tenant("hot", weight=1, rate=3.0, burst=1.0)
    quiet_token = auth.issue_token(
        identity, {SCOPE_COMPUTE, tenant_scope("quiet")}
    )
    hot_token = auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope("hot")})
    with at_site(testbed.faas_cloud):
        endpoint_id = router.register_endpoint(token=quiet_token, name="nn-ep",
                                               site=testbed.theta_login)
        quiet_funcs = [
            router.register_function(
                quiet_token, serialize(noop_task), tenant="quiet", name=f"q{i}"
            )
            for i in range(4)
        ]
        hot_func = router.register_function(
            hot_token, serialize(noop_task), tenant="hot", name="flood"
        )
    payload = serialize(((), {}))
    clock = get_clock()

    def quiet_latencies(n: int) -> list[float]:
        out = []
        with at_site(testbed.faas_cloud):
            for i in range(n):
                t0 = clock.now()
                router.submit(
                    quiet_token,
                    "quiet-client",
                    quiet_funcs[i % len(quiet_funcs)],
                    endpoint_id,
                    payload,
                    tenant="quiet",
                )
                out.append(clock.now() - t0)
        return out

    solo = quiet_latencies(SOLO_SUBMITS)

    stop = threading.Event()

    def flood() -> None:
        with at_site(testbed.faas_cloud):
            while not stop.is_set():
                try:
                    router.submit(
                        hot_token,
                        "hot-client",
                        hot_func,
                        endpoint_id,
                        payload,
                        tenant="hot",
                    )
                except ThrottledError as exc:
                    # The funcX-client idiom: honor the throttle hint.  The
                    # bucket, not the shared admission lock, absorbs the flood.
                    clock.sleep(max(exc.retry_after, 0.05))

    flooders = [threading.Thread(target=flood, daemon=True) for _ in range(2)]
    for t in flooders:
        t.start()
    try:
        contended = quiet_latencies(SOLO_SUBMITS)
    finally:
        stop.set()
        for t in flooders:
            t.join(timeout=60)

    hot_usage = router.registry.get("hot").usage
    return {
        "solo_p99": percentile(sorted(solo), 0.99),
        "contended_p99": percentile(sorted(contended), 0.99),
        "hot_throttled": hot_usage.throttled,
        "hot_submits": hot_usage.submits,
    }


def _campaign_cotenancy() -> dict:
    """moldesign + finetuning as two tenants of one 2-shard cloud, with
    ``shard_outage`` chaos restarting shards at admission."""
    from repro.apps.finetuning import FineTuneConfig, run_finetuning_campaign
    from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign

    testbed = build_paper_testbed(seed=17)
    auth = AuthServer()
    router = CloudRouter(
        testbed.faas_cloud, testbed.network, auth, testbed.constants, n_shards=2
    )
    router.create_tenant("moldesign", weight=2)
    router.create_tenant("finetune", weight=1)
    injector = FaultInjector(
        FaultPlan.build(
            17, (FaultSpec("cloud.shard.drop", "shard_outage", rate=0.5,
                           max_fires=2),)
        )
    )
    set_injector(injector)
    try:
        mol = run_moldesign_campaign(
            "funcx+globus",
            MolDesignConfig(
                n_molecules=1200,
                n_initial=24,
                max_simulations=60,
                retrain_after=20,
                n_ensemble=3,
                inference_chunks=3,
            ),
            seed=17,
            testbed=testbed,
            join_timeout=400,
            faas_cloud=router,
            tenant="moldesign",
        )
        fin = run_finetuning_campaign(
            "funcx+globus",
            FineTuneConfig(
                n_waters=3,
                n_pretrain=200,
                target_new_structures=24,
                retrain_after=12,
                n_ensemble=3,
                uncertainty_batch=60,
                inference_batch=30,
                pretrain_epochs=25,
                train_epochs=20,
                n_rbf_centers=10,
            ),
            seed=17,
            testbed=testbed,
            join_timeout=400,
            faas_cloud=router,
            tenant="finetune",
        )
    finally:
        set_injector(None)
    records = router.task_records()
    return {
        "mol": mol,
        "fin": fin,
        "fires": injector.fire_count(),
        "n_tasks": len(records),
        "tenants_seen": {r.tenant for r in records},
        # Campaigns abandon a handful of queued/dispatched tasks when they
        # hit their science target and shut down — that happens chaos-free
        # too.  A *lost* task would surface as a FAILED record or as an
        # awaited result that never arrives (campaign failure).
        "failed": sum(1 for r in records if r.status.name == "FAILED"),
        "abandoned": sum(1 for r in records if not r.status.terminal),
    }


@pytest.mark.benchmark(group="tenancy")
def test_fig_tenancy_control_plane(benchmark, report_sink):
    state: dict = {}

    def run():
        reset_clock(TENANCY_TIME_SCALE)
        state["throughput"] = {}
        for n_shards in (1, 2, 4):
            reset_clock()  # re-zero between storms, same scale
            state["throughput"][n_shards] = _storm_throughput(n_shards)
        reset_clock()
        state["noisy"] = _noisy_neighbor()
        if not QUICK:
            # Campaigns do not depend on admission sleeps materializing, so
            # they run at the harness's usual (faster) scale.
            reset_clock(0.004)
            state["cotenancy"] = _campaign_cotenancy()
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ReportTable(
        "Tenancy — shard scaling, noisy-neighbor isolation, co-tenancy"
    )

    thr = state["throughput"]
    for n_shards in sorted(thr):
        table.add(
            f"submit storm throughput, {n_shards} shard(s)",
            "scales with shards",
            f"{thr[n_shards]:.0f} submits/s",
        )
    scaling = thr[4] / thr[1]
    table.add(
        "aggregate scaling 1 -> 4 shards",
        ">= 1.5x",
        f"{scaling:.2f}x",
        holds=scaling >= 1.5,
    )

    noisy = state["noisy"]
    ratio = noisy["contended_p99"] / max(noisy["solo_p99"], 1e-9)
    table.add(
        "quiet tenant p99 submit latency (solo vs flood)",
        "within 3x",
        f"{noisy['solo_p99'] * 1e3:.0f}ms vs {noisy['contended_p99'] * 1e3:.0f}ms "
        f"({ratio:.2f}x)",
        holds=ratio <= 3.0,
    )
    table.add(
        "hot tenant actually throttled during the flood",
        "> 0 throttles",
        f"{noisy['hot_throttled']} throttles over {noisy['hot_submits']} admits",
        holds=noisy["hot_throttled"] > 0,
    )

    if not QUICK:
        co = state["cotenancy"]
        mol, fin = co["mol"], co["fin"]
        table.add(
            "co-tenant campaigns: tasks lost under shard_outage",
            "0",
            f"0 failed of {co['n_tasks']} ({co['abandoned']} abandoned at "
            f"shutdown), {co['fires']} outage(s) injected",
            holds=co["failed"] == 0 and co["fires"] >= 1,
        )
        table.add(
            "co-tenant campaigns: task failures",
            "0",
            f"moldesign {mol.n_failures}, finetune {fin.n_failures}",
            holds=mol.n_failures == 0 and fin.n_failures == 0,
        )
        table.add(
            "campaigns still do science as tenants",
            "found > 0; RMSD improves",
            f"{mol.n_found} found; force RMSD "
            f"{fin.rmsd_before:.3f} -> {fin.rmsd_after:.3f}",
            holds=mol.n_found > 0 and fin.rmsd_after < fin.rmsd_before,
        )
        table.add(
            "both tenants shared one sharded control plane",
            "2 tenants",
            ", ".join(sorted(co["tenants_seen"])),
            holds=co["tenants_seen"] == {"moldesign", "finetune"},
        )
    else:
        table.note("quick mode: campaign co-tenancy skipped (CI smoke)")
    table.note(
        f"{STORM_THREADS} submitters x {STORM_PER_THREAD} submits, admission "
        f"{ADMISSION * 1e3:.0f}ms nominal, time scale {TENANCY_TIME_SCALE}"
    )

    report_sink("fig_tenancy", table)
    assert table.all_hold, "tenancy control-plane claims diverged; see table"
