"""§V-D2/3 — decision and dispatch time decomposition.

The steering system must keep three latencies small (§V-D):

* *decision time* for data-independent choices (start the next simulation
  after one completes) — the paper measures a 5 ms median because no result
  data is read;
* *decision time* for data-dependent choices (react to training/inference
  results) — ~4 s median, dominated by waiting for the Globus transfer;
* *dispatch time* — ~100 ms for simulations (one FuncX hop); seconds for
  the first AI task of a batch (data staging), yet still a small fraction
  of the task runtime.
"""

from __future__ import annotations

import statistics

import pytest

from common import fmt_s
from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign
from repro.bench.reporting import ReportTable

CONFIG = MolDesignConfig(
    n_molecules=1000,
    n_initial=24,
    max_simulations=110,
    retrain_after=20,
    n_ensemble=3,
    inference_chunks=3,
)


def _median(values):
    values = [v for v in values if v is not None]
    return statistics.median(values) if values else float("nan")


@pytest.mark.benchmark(group="secVD")
def test_decision_and_dispatch_times(benchmark, report_sink):
    state = {}

    def run():
        state["outcome"] = run_moldesign_campaign(
            "funcx+globus", CONFIG, seed=23, join_timeout=400
        )
        return state["outcome"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    outcome = state["outcome"]
    sim = sorted(
        (r for r in outcome.results["simulate"] if r.success),
        key=lambda r: r.time_created or 0.0,
    )
    train = [r for r in outcome.results["train"] if r.success]
    infer = [r for r in outcome.results["infer"] if r.success]

    table = ReportTable("§V-D — decision and dispatch latencies (FuncX+Globus)")

    # Decision time (data-independent): a completed simulation's result
    # arrival to the *next* simulation request's creation.
    receptions = sorted(
        r.time_client_result_received for r in sim if r.time_client_result_received
    )
    creations = sorted(r.time_created for r in sim if r.time_created)
    decisions = []
    for received in receptions:
        nxt = next((c for c in creations if c > received), None)
        if nxt is not None:
            decisions.append(nxt - received)
    sim_decision = _median(decisions)
    table.add(
        "simulation re-dispatch decision",
        "5ms median (no data read)",
        fmt_s(sim_decision),
        holds=sim_decision < 0.25,
    )

    # Decision time (data-dependent): reading an AI result means resolving
    # its proxied value — transfer-bound.
    ai_decision = _median(
        [r.dur_resolve_value for r in train + infer if r.dur_resolve_value]
    )
    table.add(
        "AI-result decision (value resolve)",
        "~4s median (transfer-bound)",
        fmt_s(ai_decision),
        holds=0.3 <= ai_decision <= 10.0,
    )
    table.add(
        "data-dependent >> data-independent",
        "three orders apart in the paper",
        f"{ai_decision / max(sim_decision, 1e-9):.0f}x",
        holds=ai_decision > 10 * sim_decision,
    )

    # Dispatch times.
    sim_dispatch = _median([r.comm_server_to_worker for r in sim])
    table.add(
        "simulation dispatch",
        "~100ms (FuncX hop)",
        fmt_s(sim_dispatch),
        holds=sim_dispatch < 1.0,
    )
    train_stage = _median([r.dur_resolve_proxies for r in train])
    infer_stage = _median([r.dur_resolve_proxies for r in infer])
    table.add("training data staging (worker)", "1.7s of 2.5s dispatch", fmt_s(train_stage))
    table.add("inference data staging (worker)", "3.6s of 3.8s dispatch", fmt_s(infer_stage))

    sim_runtime = _median([r.time_running for r in sim])
    train_runtime = _median([r.time_running for r in train])
    infer_runtime = _median([r.time_running for r in infer])
    table.add(
        "sim dispatch / runtime",
        "<1%",
        f"{100 * sim_dispatch / sim_runtime:.1f}%",
        holds=sim_dispatch / sim_runtime < 0.02,
    )
    table.add(
        "train staging / runtime",
        "<=1% (340s tasks)",
        f"{100 * train_stage / train_runtime:.1f}%",
        holds=train_stage / train_runtime < 0.10,
    )
    table.add(
        "infer staging / runtime",
        "<10%",
        f"{100 * infer_stage / infer_runtime:.1f}%",
        holds=infer_stage / infer_runtime < 0.25,
    )
    table.note(f"{len(decisions)} decision samples over {len(sim)} simulations")

    report_sink("secVD_decision_dispatch", table)
    assert table.all_hold, "§V-D qualitative claims diverged; see table"
