"""A tour of the pass-by-reference data fabric (§IV-C).

Walks through the three ProxyStore backends on the simulated testbed:

1. the deployment constraint — a Redis store across facilities needs a
   tunneled port, which the topology's policy refuses by default;
2. transparent lazy proxies — a 50 MB array travels as a ~256-byte
   reference and materializes on first use, where it is used;
3. backend trade-offs — the same object moved via file system (shared-FS
   only), tunneled Redis, and cloud-managed Globus transfers, with the
   measured (nominal) costs printed side by side.

Run:  python examples/data_fabric_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PortPolicyError
from repro.net import KVServer, at_site, build_paper_testbed, get_clock, reset_clock
from repro.proxystore import (
    FileConnector,
    GlobusConnector,
    RedisConnector,
    Store,
    is_resolved,
)
from repro.serialize import Blob, serialize
from repro.transfer import TransferClient, TransferEndpoint, TransferService


def main() -> None:
    reset_clock(0.002)
    testbed = build_paper_testbed(seed=7)
    clock = get_clock()

    # -- 1. the port-policy wall -------------------------------------------
    print("1) deployment reality check")
    redis_server = KVServer(testbed.theta_login, name="data-redis")
    plain = RedisConnector(redis_server, testbed.network)
    with at_site(testbed.venti):
        try:
            plain.put("x", serialize(b"hello"))
        except PortPolicyError as exc:
            print(f"   direct Redis from the GPU site refused: {exc}")
    tunneled = RedisConnector(redis_server, testbed.network, via_tunnel=True)
    with at_site(testbed.venti):
        tunneled.put("x", serialize(b"hello"))
    print("   ...but works once you deploy (and maintain) an SSH tunnel.\n")

    # -- 2. transparent lazy proxies ------------------------------------------
    print("2) transparent pass-by-reference")
    redis_store = Store("tour-redis", tunneled)
    weights = np.random.default_rng(0).normal(size=(512, 512))  # ~2 MB real
    with at_site(testbed.theta_login):
        proxy = redis_store.proxy(weights)
    payload = serialize(proxy)
    print(f"   proxy pickles to {len(payload.data)} bytes "
          f"(target is {weights.nbytes / 1e6:.1f} MB)")
    print(f"   resolved yet? {is_resolved(proxy)}")
    with at_site(testbed.venti):
        start = clock.now()
        total = float(proxy.sum())  # first use: data crosses the tunnel now
        took = clock.now() - start
    print(f"   first use on the GPU site: sum={total:.1f} "
          f"(materialized in {took * 1000:.0f} nominal ms)")
    print(f"   isinstance(proxy, np.ndarray) = {isinstance(proxy, np.ndarray)}\n")

    # -- 3. backend trade-offs ----------------------------------------------------
    print("3) moving 50 MB from the HPC login node to the GPU machine")
    service = TransferService(
        testbed.globus_cloud, testbed.network, testbed.constants
    ).start()
    ep_theta = TransferEndpoint(
        "tour-theta", testbed.theta_login, testbed.mounts.volume("theta-lustre")
    )
    ep_venti = TransferEndpoint(
        "tour-venti", testbed.venti, testbed.mounts.volume("venti-local")
    )
    service.register_endpoint(ep_theta)
    service.register_endpoint(ep_venti)
    globus_store = Store(
        "tour-globus",
        GlobusConnector(
            TransferClient(service, user="tour"),
            {testbed.theta_login.name: ep_theta, testbed.venti.name: ep_venti},
        ),
    )
    file_store = Store("tour-file", FileConnector(testbed.mounts.volume("theta-lustre")))
    payload_obj = {"dataset": Blob(50_000_000, tag="tour")}

    for store, reachable in ((redis_store, True), (globus_store, True), (file_store, False)):
        with at_site(testbed.theta_login):
            start = clock.now()
            key = store.put(payload_obj)
            put_cost = clock.now() - start
        with at_site(testbed.venti):
            start = clock.now()
            try:
                store.get(key, timeout=120)
                get_cost = clock.now() - start
                print(
                    f"   {store.connector.kind:>6s}: put {put_cost:6.3f}s   "
                    f"get-on-GPU {get_cost:6.3f}s"
                )
            except Exception as exc:
                print(f"   {store.connector.kind:>6s}: put {put_cost:6.3f}s   "
                      f"get-on-GPU FAILS ({type(exc).__name__}: no shared FS)")
    print(
        "\n   -> Redis wins on latency but needed the tunnel; Globus needs "
        "no ports and wins as payloads grow; the file backend only works "
        "within one file-system group (§V-F)."
    )
    service.stop()


if __name__ == "__main__":
    main()
