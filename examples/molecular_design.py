"""Molecular design campaign (§III-A) on any of the three workflow stacks.

Active learning over a synthetic MOSES-like candidate set: CPU workers run
tight-binding oracle simulations, GPU workers train an MPNN-like ensemble
and score the library, and the Thinker reorders the simulation queue by
Upper Confidence Bound after every inference batch.

Run:  python examples/molecular_design.py [--workflow funcx+globus]
                                          [--simulations 160] [--seed 0]
"""

from __future__ import annotations

import argparse
import statistics

from repro.apps import WORKFLOW_CONFIGS
from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign
from repro.net import reset_clock


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workflow", choices=WORKFLOW_CONFIGS, default="funcx+globus"
    )
    parser.add_argument("--simulations", type=int, default=160)
    parser.add_argument("--molecules", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.004,
        help="wall seconds per nominal second (smaller = faster run)",
    )
    args = parser.parse_args()

    reset_clock(args.time_scale)
    config = MolDesignConfig(
        n_molecules=args.molecules,
        max_simulations=args.simulations,
        n_initial=min(48, args.simulations // 3),
    )
    print(
        f"running molecular design on {args.workflow!r}: "
        f"{args.simulations} simulations over {args.molecules} candidates"
    )
    outcome = run_moldesign_campaign(
        args.workflow, config, seed=args.seed, join_timeout=600
    )

    print(f"\nIP threshold (top {100 * config.threshold_quantile:.0f}%): "
          f"{outcome.threshold:.2f} eV")
    print(f"molecules found: {outcome.n_found} of {outcome.n_simulated} simulated")
    print("\ndiscovery curve (simulation CPU-hours -> found):")
    timeline = outcome.found_timeline
    for fraction in (0.25, 0.5, 0.75, 1.0):
        t, n = timeline[int(fraction * (len(timeline) - 1))]
        print(f"  {t / 3600:6.2f} h  ->  {n:4d} molecules")

    if outcome.ml_makespans:
        print(
            f"\nML makespan (retrain -> queue reordered): "
            f"median {statistics.median(outcome.ml_makespans):.0f}s over "
            f"{len(outcome.ml_makespans)} updates"
        )
    if outcome.cpu_idle_gaps:
        print(
            f"CPU idle between simulations: median "
            f"{statistics.median(outcome.cpu_idle_gaps) * 1000:.0f} ms "
            f"(utilization {100 * outcome.cpu_utilization:.1f}%)"
        )
    for topic in ("simulate", "train", "infer"):
        results = [r for r in outcome.results[topic] if r.success]
        if results:
            overhead = statistics.median(r.overhead for r in results)
            print(f"{topic:>9s}: {len(results):4d} tasks, median overhead {overhead:.2f}s")


if __name__ == "__main__":
    main()
