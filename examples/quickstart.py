"""Quickstart: steer tasks across two simulated resources in ~60 lines.

Builds the paper's testbed, wires the cloud-managed workflow stack
(FuncX-like FaaS + Globus-backed ProxyStore + Colmena-like steering), runs
a handful of tasks on the CPU and GPU resources, and prints each task's
timing ledger.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.apps import AppMethod, TopicPolicy, build_workflow
from repro.net import at_site, build_paper_testbed, reset_clock
from repro.serialize import Blob


def analyze_spectrum(sample: Blob, resolution: int) -> dict:
    """A stand-in science task: pretend to crunch a detector payload."""
    from repro.net.clock import get_clock

    get_clock().sleep(5.0)  # 5 seconds of simulated compute
    return {"resolution": resolution, "peaks": [1.2, 3.4], "raw": Blob(2_000_000)}


def train_surrogate(history: list) -> dict:
    from repro.net.clock import get_clock

    get_clock().sleep(8.0)
    return {"weights": Blob(10_000_000), "loss": 0.01 * len(history)}


def main() -> None:
    # 1 nominal second = 2 ms of wall time: the demo finishes in seconds.
    reset_clock(0.002)
    testbed = build_paper_testbed(seed=0)

    methods = [
        AppMethod(analyze_spectrum, resource="cpu", topic="analysis"),
        AppMethod(train_surrogate, resource="gpu", topic="training"),
    ]
    policies = {
        # CPU tasks share a file system with the controller.
        "analysis": TopicPolicy(locality="local", threshold=10_000),
        # GPU tasks live on another resource: data rides Globus transfers.
        "training": TopicPolicy(locality="cross", threshold=10_000),
    }
    handle = build_workflow(
        "funcx+globus", testbed, methods, policies,
        n_cpu_workers=4, n_gpu_workers=2,
    )

    with handle, at_site(testbed.theta_login):
        for index in range(4):
            handle.queues.send_request(
                "analyze_spectrum",
                args=(Blob(500_000, tag=f"sample-{index}"),),
                kwargs={"resolution": 128 + index},
                topic="analysis",
            )
        handle.queues.send_request(
            "train_surrogate", args=([1, 2, 3],), topic="training"
        )

        print("task results (nominal seconds):")
        for _ in range(4):
            result = handle.queues.get_result("analysis", timeout=120)
            value = result.access_value()
            print(
                f"  analysis  res={value['resolution']:>3}  "
                f"compute={result.time_running:6.2f}s  "
                f"lifetime={result.task_lifetime:6.2f}s  "
                f"overhead={result.overhead:5.2f}s"
            )
        result = handle.queues.get_result("training", timeout=120)
        value = result.access_value()
        print(
            f"  training  loss={value['loss']:.3f}          "
            f"compute={result.time_running:6.2f}s  "
            f"lifetime={result.task_lifetime:6.2f}s  "
            f"overhead={result.overhead:5.2f}s"
        )
        print(
            "\nthe training overhead is larger: its 10 MB result crossed "
            "resources via a managed transfer (no open ports anywhere)."
        )


if __name__ == "__main__":
    main()
