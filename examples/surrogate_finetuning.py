"""Surrogate fine-tuning campaign (§III-B) on any of the three stacks.

Starts from a SchNet-like ensemble pre-trained on approximate (TTM-like)
water-cluster energies, then actively selects structures for simulated DFT
— balancing CPU workers between DFT and surrogate-driven MD sampling to
keep the audit pool full — and reports the force RMSD on a held-out
ground-truth test set before and after fine-tuning.

Run:  python examples/surrogate_finetuning.py [--workflow funcx+globus]
                                              [--structures 48] [--seed 0]
"""

from __future__ import annotations

import argparse
import statistics

from repro.apps import WORKFLOW_CONFIGS
from repro.apps.finetuning import FineTuneConfig, run_finetuning_campaign
from repro.net import reset_clock


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workflow", choices=WORKFLOW_CONFIGS, default="funcx+globus"
    )
    parser.add_argument("--structures", type=int, default=48)
    parser.add_argument("--pretrain", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--time-scale", type=float, default=0.004)
    args = parser.parse_args()

    reset_clock(args.time_scale)
    config = FineTuneConfig(
        n_pretrain=args.pretrain,
        target_new_structures=args.structures,
    )
    print(
        f"fine-tuning on {args.workflow!r}: pre-train on {args.pretrain} "
        f"TTM structures, add {args.structures} DFT structures"
    )
    outcome = run_finetuning_campaign(
        args.workflow, config, seed=args.seed, join_timeout=900
    )

    print(f"\nadded {outcome.n_new_structures} DFT-labeled structures")
    print(
        f"force RMSD : {outcome.rmsd_before:.3f} -> {outcome.rmsd_after:.3f} "
        "(arb. units; lower is better)"
    )
    print(
        f"energy RMSE: {outcome.energy_rmse_before:.3f} -> "
        f"{outcome.energy_rmse_after:.3f}"
    )
    print("\nper-task-type overheads (median, nominal seconds):")
    for topic in ("simulate", "sample", "train", "infer"):
        results = [r for r in outcome.results[topic] if r.success]
        if not results:
            continue
        overhead = statistics.median(r.overhead for r in results)
        waiting = statistics.median(
            r.dur_resolve_proxies + (r.dur_resolve_value or 0.0) for r in results
        )
        print(
            f"  {topic:>9s}: {len(results):4d} tasks  overhead {overhead:6.2f}s  "
            f"(of which waiting on data {waiting:5.2f}s)"
        )


if __name__ == "__main__":
    main()
