"""Head-to-head comparison of the three §V-B workflow configurations.

Runs the same batch of synthetic tasks (no-op bodies with configurable
payload sizes) through plain Parsl, Parsl+Redis-ProxyStore, and
FuncX+Globus-ProxyStore, and prints the latency decomposition for each —
a miniature, self-service version of the paper's Figs. 3 and 6.

Run:  python examples/workflow_comparison.py [--payload-mb 1.0] [--tasks 20]
"""

from __future__ import annotations

import argparse
import statistics

from repro.apps import WORKFLOW_CONFIGS, AppMethod, TopicPolicy, build_workflow
from repro.net import at_site, build_paper_testbed, reset_clock
from repro.serialize import Blob


def crunch(data: Blob) -> Blob:
    """Simulated 10-second compute producing a result as large as its input."""
    from repro.net.clock import get_clock

    get_clock().sleep(10.0)
    return Blob(data.nbytes, tag="output")


def run_config(config: str, payload_bytes: int, n_tasks: int, seed: int):
    reset_clock(0.004)
    testbed = build_paper_testbed(seed=seed)
    handle = build_workflow(
        config,
        testbed,
        [AppMethod(crunch, resource="gpu", topic="work")],
        {"work": TopicPolicy(locality="cross", threshold=10_000)},
        n_cpu_workers=1,
        n_gpu_workers=4,
    )
    results = []
    with handle, at_site(testbed.theta_login):
        for index in range(n_tasks):
            handle.queues.send_request(
                "crunch", args=(Blob(payload_bytes, tag=str(index)),), topic="work"
            )
        for _ in range(n_tasks):
            result = handle.queues.get_result("work", timeout=600)
            assert result is not None and result.success, result and result.error
            result.access_value()
            results.append(result)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--payload-mb", type=float, default=1.0)
    parser.add_argument("--tasks", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    payload = int(args.payload_mb * 1e6)

    print(
        f"{args.tasks} tasks x {args.payload_mb:.1f} MB payloads on the GPU "
        "resource, per workflow configuration:\n"
    )
    header = (
        f"{'configuration':<14} {'lifetime':>9} {'overhead':>9} "
        f"{'dispatch':>9} {'resolve-in':>10} {'resolve-out':>11}"
    )
    print(header)
    print("-" * len(header))
    for config in WORKFLOW_CONFIGS:
        results = run_config(config, payload, args.tasks, args.seed)

        def med(metric):
            values = [
                getattr(r, metric) for r in results if getattr(r, metric) is not None
            ]
            return statistics.median(values) if values else float("nan")

        print(
            f"{config:<14} {med('task_lifetime'):>8.2f}s {med('overhead'):>8.2f}s "
            f"{med('comm_server_to_worker'):>8.2f}s "
            f"{med('dur_resolve_proxies'):>9.2f}s "
            f"{med('dur_resolve_value'):>10.2f}s"
        )
    print(
        "\nnotes: 'resolve-in' is the worker waiting for input data, "
        "'resolve-out' the controller waiting for result data; plain parsl "
        "moves everything by value through the interchange instead."
    )


if __name__ == "__main__":
    main()
