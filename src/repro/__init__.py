"""repro: a from-scratch reproduction of "Cloud Services Enable Efficient
AI-Guided Simulation Workflows across Heterogeneous Resources" (IPPS 2023).

Subpackages
-----------
``repro.net``
    Simulation substrate: virtual clock, site/link topology, key-value
    store, shared file systems.
``repro.transfer``
    Cloud-managed wide-area transfer service (Globus Transfer substitute).
``repro.proxystore``
    Transparent pass-by-reference data fabric (ProxyStore substitute).
``repro.faas``
    Federated function-as-a-service platform (FuncX substitute).
``repro.chaos``
    Deterministic fault injection, shared retry policies, and the chaos
    campaign that audits recovery across the whole fabric.
``repro.parsl``
    Conventional pilot-job workflow executor baseline (Parsl substitute).
``repro.core``
    Steering-as-cooperative-agents layer (Colmena substitute) — the paper's
    contribution surface.
``repro.ml`` / ``repro.sim``
    NumPy surrogate models and simulated chemistry/MD substrates.
``repro.apps``
    The two motivating applications: molecular design and surrogate
    fine-tuning.
"""

__version__ = "1.0.0"

from repro.serialize import Blob, Payload, deserialize, nominal_size, serialize

__all__ = ["Blob", "Payload", "deserialize", "nominal_size", "serialize", "__version__"]
