"""The paper's two motivating applications plus shared campaign wiring."""

from repro.apps.common import (
    WORKFLOW_CONFIGS,
    AppMethod,
    TopicPolicy,
    WorkflowHandle,
    build_workflow,
)
from repro.apps.environment import (
    clear_software,
    get_software,
    register_software,
    unregister_software,
)

__all__ = [
    "WORKFLOW_CONFIGS",
    "AppMethod",
    "TopicPolicy",
    "WorkflowHandle",
    "build_workflow",
    "clear_software",
    "get_software",
    "register_software",
    "unregister_software",
]
