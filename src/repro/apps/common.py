"""Campaign wiring: build any of the paper's three workflow configurations.

§V-B defines the configurations compared throughout the evaluation:

1. ``parsl`` — conventional pilot-job executor, everything by value,
   requires open ports (modeled: an SSH tunnel for the GPU resource).
2. ``parsl+redis`` — same fabric, plus ProxyStore: a Redis store (one more
   tunneled port) for cross-site AI task data and the shared file system
   for local simulation data.
3. ``funcx+globus`` — the cloud-managed stack: FuncX carries task
   instructions, ProxyStore-over-Globus carries cross-site data, the
   shared file system carries local data.  No open ports anywhere.

:func:`build_workflow` assembles the chosen stack on a
:class:`~repro.net.defaults.Testbed` and returns a :class:`WorkflowHandle`
owning every component, so application campaigns and benchmarks are three
lines of setup regardless of configuration.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Callable

from repro.core.queues import ColmenaQueues, TopicSpec
from repro.core.task_server import (
    FuncXTaskServer,
    MethodSpec,
    ParslTaskServer,
    TaskServer,
)
from repro.exceptions import WorkflowError
from repro.faas import (
    SCOPE_COMPUTE,
    SCOPE_TRANSFER,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.net.defaults import Testbed
from repro.net.kvstore import KVServer
from repro.parsl import DataFlowKernel, DirectChannel, HtexExecutor, SSHTunnel
from repro.proxystore import (
    FileConnector,
    GlobusConnector,
    RedisConnector,
    Store,
)
from repro.resources import WorkerPool
from repro.transfer import TransferClient, TransferEndpoint, TransferService

__all__ = ["WORKFLOW_CONFIGS", "AppMethod", "TopicPolicy", "WorkflowHandle", "build_workflow"]

WORKFLOW_CONFIGS = ("parsl", "parsl+redis", "funcx+globus")


@dataclass(frozen=True)
class AppMethod:
    """One application method: the callable, where it runs, and its topic."""

    fn: Callable
    resource: str  # "cpu" or "gpu"
    topic: str

    def __post_init__(self) -> None:
        if self.resource not in ("cpu", "gpu"):
            raise WorkflowError(f"resource must be 'cpu' or 'gpu', not {self.resource!r}")


@dataclass(frozen=True)
class TopicPolicy:
    """Data-fabric policy for one topic.

    ``locality='local'`` means producer and consumer share a file system
    (simulation tasks: Thinker on the login node, workers on compute nodes);
    ``'cross'`` means the data crosses facilities (AI tasks on the GPU
    machine).  ``threshold`` is the proxy threshold in bytes (ignored by the
    plain-parsl configuration, which has no data fabric).
    """

    locality: str = "cross"
    threshold: int | None = 10_000

    def __post_init__(self) -> None:
        if self.locality not in ("local", "cross"):
            raise WorkflowError(f"locality must be 'local' or 'cross', not {self.locality!r}")


@dataclass
class WorkflowHandle:
    """Everything one campaign run owns; ``shutdown()`` tears it all down."""

    name: str
    testbed: Testbed
    queues: ColmenaQueues
    task_server: TaskServer
    cpu_pool: WorkerPool
    gpu_pool: WorkerPool
    stores: dict[str, Store] = field(default_factory=dict)
    endpoints: list[FaasEndpoint] = field(default_factory=list)
    transfer_service: TransferService | None = None
    faas_client: FaasClient | None = None
    _started: bool = False

    def start(self) -> "WorkflowHandle":
        if self._started:
            return self
        self.task_server.start()
        self._started = True
        return self

    def shutdown(self) -> None:
        if not self._started:
            return
        from repro.net.context import at_site

        with at_site(self.testbed.theta_login):
            self.queues.send_kill_signal()
        self.task_server.join(timeout=10)
        self.task_server.stop()
        for endpoint in self.endpoints:
            endpoint.stop()
        if self.transfer_service is not None:
            self.transfer_service.stop()
        for store in self.stores.values():
            store.close()
        self._started = False

    def __enter__(self) -> "WorkflowHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()


def build_workflow(
    config: str,
    testbed: Testbed,
    methods: list[AppMethod],
    topic_policies: dict[str, TopicPolicy],
    *,
    n_cpu_workers: int | None = None,
    n_gpu_workers: int | None = None,
    run_id: str | None = None,
    use_batch_scheduler: bool = False,
    batch_queue_delay: object | None = None,
    faas_retry_policy: object | None = None,
    faas_cloud: object | None = None,
    tenant: str = "default",
    elastic: bool = False,
    task_batching: object | None = None,
) -> WorkflowHandle:
    """Assemble one of the three §V-B workflow stacks on ``testbed``.

    ``use_batch_scheduler`` provisions the CPU pilot through a simulated
    batch queue (sampled queue-wait before workers exist) — the multi-level
    scheduling reality of §II-A.  The GPU box is a standalone server in the
    paper, so it never queues.

    ``faas_retry_policy`` (a :class:`repro.chaos.RetryPolicy`) makes the
    FuncX stack's client retry failed tasks with backoff; the default None
    keeps the historical fail-fast behavior.

    ``faas_cloud`` lets several campaigns share one cloud (typically a
    :class:`repro.tenancy.CloudRouter`) instead of each building its own;
    ``tenant`` is the tenant this campaign acts as on that shared cloud —
    it must already exist there, and the issued token carries its scope.
    Only meaningful for the ``funcx+globus`` configuration.

    ``elastic`` builds both pilots as
    :class:`~repro.elastic.ElasticWorkerPool`\\ s (same initial sizes), so a
    :class:`~repro.elastic.SteeringPolicy` or :class:`~repro.elastic.Autoscaler`
    can resize them mid-campaign.

    ``task_batching`` turns on the :mod:`repro.batch` hot path for the
    FuncX stack: ``True`` uses the default :class:`~repro.batch.BatchPolicy`,
    or pass a policy instance to tune it.  The client coalesces submits per
    endpoint and both endpoints batch their result uplinks.  Ignored for
    the Parsl configurations, which bypass the cloud entirely.
    """
    if config not in WORKFLOW_CONFIGS:
        raise WorkflowError(f"unknown workflow config {config!r}; pick from {WORKFLOW_CONFIGS}")
    if faas_cloud is not None and config != "funcx+globus":
        raise WorkflowError(
            f"faas_cloud is only meaningful for 'funcx+globus', not {config!r}"
        )
    run_id = run_id or uuid.uuid4().hex[:8]
    constants = testbed.constants
    n_cpu = n_cpu_workers if n_cpu_workers is not None else constants.n_cpu_workers
    n_gpu = n_gpu_workers if n_gpu_workers is not None else constants.n_gpu_workers

    cpu_scheduler = None
    if use_batch_scheduler:
        from repro.net.topology import LogNormalLatency
        from repro.resources.scheduler import BatchScheduler

        cpu_scheduler = BatchScheduler(
            testbed.theta_compute,
            total_nodes=max(n_cpu * 2, n_cpu),
            queue_delay=batch_queue_delay or LogNormalLatency(30.0, 0.5, cap=300.0),
            network=testbed.network,
        )
    if elastic:
        from repro.elastic import ElasticWorkerPool

        cpu_pool: WorkerPool = ElasticWorkerPool(
            testbed.theta_compute, n_cpu, name=f"{run_id}-cpu", scheduler=cpu_scheduler
        )
        gpu_pool: WorkerPool = ElasticWorkerPool(
            testbed.venti, n_gpu, name=f"{run_id}-gpu"
        )
    else:
        cpu_pool = WorkerPool(
            testbed.theta_compute, n_cpu, name=f"{run_id}-cpu", scheduler=cpu_scheduler
        )
        gpu_pool = WorkerPool(testbed.venti, n_gpu, name=f"{run_id}-gpu")

    # Thinker <-> Task Server queue fabric: a Redis on the login node.
    queue_server = KVServer(testbed.theta_login, name=f"{run_id}-queues")

    stores: dict[str, Store] = {}
    endpoints: list[FaasEndpoint] = []
    transfer_service: TransferService | None = None
    faas_client: FaasClient | None = None

    # -- data fabric -------------------------------------------------------
    local_store: Store | None = None
    cross_store: Store | None = None
    if config != "parsl":
        local_store = Store(
            f"{run_id}-local",
            FileConnector(testbed.mounts.volume("theta-lustre"), directory=run_id),
        )
        stores["local"] = local_store
    if config == "parsl+redis":
        data_server = KVServer(testbed.theta_login, name=f"{run_id}-data")
        # The extra tunneled port of §V-B: GPU workers reach Redis via it.
        cross_store = Store(
            f"{run_id}-cross",
            RedisConnector(data_server, testbed.network, via_tunnel=True),
        )
        stores["cross"] = cross_store
    elif config == "funcx+globus":
        transfer_service = TransferService(
            testbed.globus_cloud, testbed.network, constants
        ).start()
        ep_theta = TransferEndpoint(
            f"{run_id}-theta", testbed.theta_login, testbed.mounts.volume("theta-lustre")
        )
        ep_venti = TransferEndpoint(
            f"{run_id}-venti", testbed.venti, testbed.mounts.volume("venti-local")
        )
        transfer_service.register_endpoint(ep_theta)
        transfer_service.register_endpoint(ep_venti)
        transfer_client = TransferClient(transfer_service, user=run_id)
        cross_store = Store(
            f"{run_id}-cross",
            GlobusConnector(
                transfer_client,
                {
                    testbed.theta_login.name: ep_theta,
                    testbed.theta_compute.name: ep_theta,  # shares Lustre
                    testbed.venti.name: ep_venti,
                },
                directory=run_id,
            ),
        )
        stores["cross"] = cross_store

    def store_for(policy: TopicPolicy) -> Store | None:
        if config == "parsl":
            return None
        if policy.locality == "local":
            return local_store
        return cross_store

    topic_specs = {
        topic: TopicSpec(
            topic,
            store=store_for(policy),
            proxy_threshold=None if config == "parsl" else policy.threshold,
        )
        for topic, policy in topic_policies.items()
    }
    queues = ColmenaQueues(
        queue_server, testbed.network, topic_specs=topic_specs
    )

    # -- compute fabric -------------------------------------------------------
    def method_specs(target_for: Callable[[AppMethod], str]) -> list[MethodSpec]:
        specs = []
        for method in methods:
            policy = topic_policies.get(method.topic)
            if policy is None:
                raise WorkflowError(f"no topic policy for {method.topic!r}")
            spec_store = store_for(policy)
            specs.append(
                MethodSpec(
                    method.fn,
                    target=target_for(method),
                    output_store=spec_store.name if spec_store is not None else None,
                    output_threshold=None if config == "parsl" else policy.threshold,
                )
            )
        return specs

    if config.startswith("parsl"):
        cpu_exec = HtexExecutor(
            "cpu",
            testbed.theta_login,
            cpu_pool,
            testbed.network,
            channel=DirectChannel(),
        )
        gpu_exec = HtexExecutor(
            "gpu",
            testbed.theta_login,
            gpu_pool,
            testbed.network,
            channel=SSHTunnel(),  # the open-ports deployment burden
        )
        dfk = DataFlowKernel([cpu_exec, gpu_exec])
        task_server: TaskServer = ParslTaskServer(
            queues,
            method_specs(lambda m: m.resource),
            testbed.theta_login,
            dfk,
        )
    else:
        from repro.tenancy import DEFAULT_TENANT, tenant_scope

        if faas_cloud is not None:
            # Shared (typically sharded) cloud: campaigns are tenants of the
            # same control plane, authenticating against its auth server.
            cloud = faas_cloud
            auth = cloud.auth
        else:
            auth = AuthServer()
            cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, constants)
        identity = auth.register_identity(run_id, "anl.gov")
        scopes = {SCOPE_COMPUTE, SCOPE_TRANSFER}
        if tenant != DEFAULT_TENANT:
            scopes.add(tenant_scope(tenant))
        token = auth.issue_token(identity, scopes)
        batch_policy = None
        if task_batching:
            from repro.batch import BatchPolicy

            batch_policy = (
                task_batching
                if isinstance(task_batching, BatchPolicy)
                else BatchPolicy()
            )
        ep_cpu = FaasEndpoint(
            f"{run_id}-theta",
            cloud,
            token,
            testbed.theta_login,
            cpu_pool,
            uplink_batching=batch_policy is not None,
        ).start()
        ep_gpu = FaasEndpoint(
            f"{run_id}-venti",
            cloud,
            token,
            testbed.venti,
            gpu_pool,
            uplink_batching=batch_policy is not None,
        ).start()
        endpoints = [ep_cpu, ep_gpu]
        faas_client = FaasClient(
            cloud,
            token,
            site=testbed.theta_login,
            retry_policy=faas_retry_policy,
            tenant=tenant,
            batch=batch_policy,
        )
        targets = {"cpu": ep_cpu.endpoint_id, "gpu": ep_gpu.endpoint_id}
        task_server = FuncXTaskServer(
            queues,
            method_specs(lambda m: targets[m.resource]),
            testbed.theta_login,
            faas_client,
        )

    return WorkflowHandle(
        name=config,
        testbed=testbed,
        queues=queues,
        task_server=task_server,
        cpu_pool=cpu_pool,
        gpu_pool=gpu_pool,
        stores=stores,
        endpoints=endpoints,
        transfer_service=transfer_service,
        faas_client=faas_client,
    )
