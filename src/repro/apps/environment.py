"""Per-"resource" software environment for task functions.

Task functions execute on simulated workers inside this process, but they
must behave like code running on a remote machine: they cannot close over
campaign objects (they are pickled by the fabrics) and they need access to
locally-installed "software" — the simulation oracle, the molecule library,
the staged datasets.  Real deployments solve this with per-resource conda
environments; the equivalent here is a named registry that campaign setup
populates before launching tasks ("installing the software"), and task
functions query by name at run time.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.exceptions import WorkflowError

__all__ = ["register_software", "get_software", "unregister_software", "clear_software"]

_registry: dict[str, Any] = {}
_lock = threading.Lock()


def register_software(name: str, obj: Any, *, replace: bool = False) -> Any:
    """Install ``obj`` under ``name`` (set ``replace`` to re-install)."""
    with _lock:
        if name in _registry and not replace:
            raise WorkflowError(f"software {name!r} is already installed")
        _registry[name] = obj
    return obj


def get_software(name: str) -> Any:
    """Look up installed software; raises if the environment lacks it."""
    with _lock:
        try:
            return _registry[name]
        except KeyError:
            raise WorkflowError(
                f"software {name!r} is not installed in this environment; "
                "campaign setup must register it before launching tasks"
            ) from None


def unregister_software(name: str) -> None:
    with _lock:
        _registry.pop(name, None)


def clear_software() -> None:
    """Wipe the environment (test isolation)."""
    with _lock:
        _registry.clear()
