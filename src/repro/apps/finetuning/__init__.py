"""Surrogate fine-tuning application (§III-B): refine a water-cluster
energy/force surrogate from TTM pre-training with actively-selected DFT."""

from repro.apps.finetuning.campaign import (
    FineTuneOutcome,
    evaluate_force_rmsd,
    pretrain_ensemble,
    run_finetuning_campaign,
)
from repro.apps.finetuning.config import FineTuneConfig
from repro.apps.finetuning.tasks import (
    infer_energies,
    run_dft,
    run_sampling,
    train_schnet,
)
from repro.apps.finetuning.thinker import FineTuneThinker

__all__ = [
    "FineTuneOutcome",
    "evaluate_force_rmsd",
    "pretrain_ensemble",
    "run_finetuning_campaign",
    "FineTuneConfig",
    "infer_energies",
    "run_dft",
    "run_sampling",
    "train_schnet",
    "FineTuneThinker",
]
