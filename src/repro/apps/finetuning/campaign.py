"""End-to-end surrogate fine-tuning campaigns (any workflow configuration).

:func:`run_finetuning_campaign` pre-trains the ensemble on the TTM-labeled
corpus (done before the timed run, like the paper), runs the active-learning
campaign to its new-structure budget, and evaluates force RMSD on the §III-B
ground-truth test set — before and after fine-tuning, which is exactly the
Fig. 7a content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.common import AppMethod, TopicPolicy, WorkflowHandle, build_workflow
from repro.apps.environment import register_software
from repro.apps.finetuning.config import FineTuneConfig
from repro.apps.finetuning.tasks import (
    DFT_KEY,
    infer_energies,
    run_dft,
    run_sampling,
    train_schnet,
)
from repro.apps.finetuning.thinker import FineTuneThinker
from repro.core.result import Result
from repro.ml.ensemble import bootstrap_indices
from repro.ml.schnet import RbfBasis, SchnetSurrogate
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, Testbed, build_paper_testbed
from repro.sim.datasets import DftSimulator, hydronet_like_dataset
from repro.sim.water import Structure, make_test_set

__all__ = ["FineTuneOutcome", "pretrain_ensemble", "evaluate_force_rmsd", "run_finetuning_campaign"]


@dataclass
class FineTuneOutcome:
    """Everything measured in one fine-tuning campaign run."""

    workflow: str
    seed: int
    n_new_structures: int
    rmsd_before: float
    rmsd_after: float
    energy_rmse_before: float
    energy_rmse_after: float
    results: dict[str, list[Result]] = field(default_factory=dict)
    cpu_idle_gaps: list[float] = field(default_factory=list)
    gpu_idle_gaps: list[float] = field(default_factory=list)
    n_failures: int = 0
    store_metrics: dict[str, dict] = field(default_factory=dict)
    #: Runtime capacity moves when ``config.elastic_steering`` is on
    #: (:class:`repro.elastic.SteeringEvent` records, in order).
    steering_events: list = field(default_factory=list)


def pretrain_ensemble(
    config: FineTuneConfig,
    structures: list[Structure],
    energies: np.ndarray,
    *,
    seed: int = 0,
) -> list[SchnetSurrogate]:
    """Train the initial ensemble on the TTM corpus (bootstrap subsets)."""
    basis = RbfBasis(n_centers=config.n_rbf_centers)
    subsets = bootstrap_indices(len(structures), config.n_ensemble, seed=seed)
    models = []
    for member, idx in enumerate(subsets):
        model = SchnetSurrogate(
            basis,
            hidden=config.hidden_layers,
            seed=seed * 100 + member,
            weight_padding=config.model_padding,
        )
        model.train(
            [structures[int(i)] for i in idx],
            energies[idx],
            epochs=config.pretrain_epochs,
            seed=seed * 100 + member,
        )
        models.append(model)
    return models


def evaluate_force_rmsd(
    models: list[SchnetSurrogate],
    test_set: list[tuple[Structure, float, np.ndarray]],
) -> tuple[float, float]:
    """(force RMSD, energy RMSE) of the ensemble-mean prediction."""
    force_sq, force_n = 0.0, 0
    energy_sq = 0.0
    for structure, energy, forces in test_set:
        predicted_f = np.mean([m.predict_forces(structure) for m in models], axis=0)
        predicted_e = float(np.mean([m.predict_energy(structure) for m in models]))
        diff = predicted_f - forces
        force_sq += float(np.sum(diff * diff))
        force_n += diff.size
        energy_sq += (predicted_e - energy) ** 2
    return (
        float(np.sqrt(force_sq / force_n)),
        float(np.sqrt(energy_sq / len(test_set))),
    )


def run_finetuning_campaign(
    workflow: str = "funcx+globus",
    config: FineTuneConfig | None = None,
    *,
    seed: int = 0,
    testbed: Testbed | None = None,
    constants: PaperConstants | None = None,
    n_cpu_workers: int | None = None,
    n_gpu_workers: int | None = None,
    join_timeout: float | None = 600.0,
    faas_cloud: object | None = None,
    tenant: str = "default",
    run_id: str | None = None,
    checkpoint: object | None = None,
    resume: bool = False,
) -> FineTuneOutcome:
    """Run one fine-tuning campaign; ``join_timeout`` is wall seconds.

    ``faas_cloud``/``tenant`` let the campaign run as one tenant of a
    shared (sharded) cloud instead of building its own — see
    :func:`repro.apps.common.build_workflow`.  ``run_id`` pins the
    workflow's resource names (pool/endpoint/store prefixes).
    ``checkpoint``/``resume`` journal and restore the Thinker's decision
    state (accepted DFT results, retrain cadence) so a killed campaign
    keeps its credit toward ``target_new_structures``."""
    config = config or FineTuneConfig()
    testbed = testbed or build_paper_testbed(seed=seed, constants=constants)
    n_cpu = n_cpu_workers if n_cpu_workers is not None else testbed.constants.n_cpu_workers

    pre_structures, pre_energies = hydronet_like_dataset(
        config.n_pretrain, n_waters=config.n_waters, seed=config.seed
    )
    models = pretrain_ensemble(config, pre_structures, pre_energies, seed=seed)
    test_set = make_test_set(
        n_trajectories=4, n_steps=16, n_waters=config.n_waters, seed=seed + 999
    )
    rmsd_before, e_rmse_before = evaluate_force_rmsd(models, test_set)

    register_software(DFT_KEY, DftSimulator(duration_mean=config.dft_duration, seed=seed), replace=True)

    methods = [
        AppMethod(run_dft, resource="cpu", topic="simulate"),
        AppMethod(run_sampling, resource="cpu", topic="sample"),
        AppMethod(train_schnet, resource="gpu", topic="train"),
        AppMethod(infer_energies, resource="gpu", topic="infer"),
    ]
    policies = {
        "simulate": TopicPolicy(locality="local", threshold=10_000),
        "sample": TopicPolicy(locality="local", threshold=10_000),
        "train": TopicPolicy(locality="cross", threshold=10_000),
        "infer": TopicPolicy(locality="cross", threshold=10_000),
    }
    handle: WorkflowHandle = build_workflow(
        workflow,
        testbed,
        methods,
        policies,
        n_cpu_workers=n_cpu,
        n_gpu_workers=n_gpu_workers,
        run_id=run_id,
        faas_cloud=faas_cloud,
        tenant=tenant,
        elastic=config.elastic_steering,
        task_batching=config.task_batching,
    )
    steering = None
    if config.elastic_steering:
        from repro.elastic import SteeringPolicy

        n_gpu = (
            n_gpu_workers
            if n_gpu_workers is not None
            else testbed.constants.n_gpu_workers
        )
        steering = SteeringPolicy(
            {"cpu": handle.cpu_pool, "gpu": handle.gpu_pool},
            total_workers=n_cpu + n_gpu,
        )
    thinker = FineTuneThinker(
        handle.queues,
        testbed.theta_login,
        config,
        models,
        n_cpu_slots=n_cpu,
        cross_store=handle.stores.get("cross"),
        rng_seed=seed,
        steering=steering,
        checkpoint=checkpoint,
    )
    if resume:
        if checkpoint is None:
            raise ValueError("resume=True requires a checkpoint")
        snapshot, events = checkpoint.load_state()
        thinker.restore_state(snapshot, events)
    with handle:
        with at_site(testbed.theta_login):
            thinker.start()
        thinker.done.wait(timeout=join_timeout)
        thinker.done.set()
        thinker.join(timeout=30)
        store_metrics = {
            name: store.metrics.summary() for name, store in handle.stores.items()
        }
        if checkpoint is not None:
            checkpoint.save_state(thinker.export_state())

    rmsd_after, e_rmse_after = evaluate_force_rmsd(thinker.models, test_set)
    return FineTuneOutcome(
        workflow=workflow,
        seed=seed,
        n_new_structures=len(thinker.new_structures),
        rmsd_before=rmsd_before,
        rmsd_after=rmsd_after,
        energy_rmse_before=e_rmse_before,
        energy_rmse_after=e_rmse_after,
        results=thinker.results,
        cpu_idle_gaps=list(handle.cpu_pool.idle_gaps),
        gpu_idle_gaps=list(handle.gpu_pool.idle_gaps),
        n_failures=len(thinker.task_failures),
        store_metrics=store_metrics,
        steering_events=list(steering.events) if steering is not None else [],
    )
