"""Configuration for the surrogate fine-tuning campaign (§III-B).

Paper task characterization: SchNet training ≈4 min on GPU shipping 21 MB;
inference on a batch of 100 structures ≈3.2 s moving 3 MB; Psi4 DFT ≈360 s
on CPU producing 20 kB; sampling 1–3 s on CPU moving 3 MB.  The campaign
starts from 1720 TTM-labeled structures and adds 500 DFT results, retraining
every 25.  Sizes here are scaled down (the scale factors are explicit and
recorded in EXPERIMENTS.md); per-task data sizes are kept at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FineTuneConfig"]


@dataclass(frozen=True)
class FineTuneConfig:
    # -- chemistry ------------------------------------------------------------
    n_waters: int = 4
    seed: int = 0

    # -- datasets (paper: 1720 pre-training structures, 500 new) ---------------
    n_pretrain: int = 300
    target_new_structures: int = 48
    retrain_after: int = 12  # paper: 25

    # -- steering pools ---------------------------------------------------------
    audit_pool_target: int = 8  # constant audit-pool size the policy holds
    uncertainty_pool_size: int = 20
    uncertainty_batch: int = 100  # re-rank after this many new samples (paper: 100)
    inference_batch: int = 50  # structures per inference task (paper: 100)

    # -- ensemble / training -------------------------------------------------------
    n_ensemble: int = 4  # paper: 8 SchNet models
    pretrain_epochs: int = 40
    train_epochs: int = 30
    hidden_layers: tuple[int, ...] = (48, 48)
    n_rbf_centers: int = 12

    # -- sampling schedule (paper ramps 20 -> 1000 timesteps) ----------------------
    sampling_min_steps: int = 20
    sampling_max_steps: int = 200
    sampling_temperature: float = 100.0

    # -- task durations (nominal seconds) --------------------------------------------
    dft_duration: float = 360.0  # paper mean
    train_duration: float = 120.0  # paper: ~240 s; scaled with the campaign
    inference_duration: float = 3.2  # paper mean per batch
    sampling_duration: float = 2.0  # paper: 1-3 s

    # -- data sizes (nominal bytes; paper's characterization) ---------------------------
    model_padding: int = 21_000_000  # 21 MB per trained SchNet
    sampling_payload: int = 3_000_000  # 3 MB per sampling task
    inference_payload: int = 3_000_000  # 3 MB per inference task
    dft_artifact_bytes: int = 20_000  # 20 kB per simulation

    # -- resource split (CPU slots shared by simulate+sample) ----------------------------
    initial_sample_slots: int = 2

    #: Attach :class:`~repro.proxystore.prefetch.PrefetchHint`s for proxied
    #: model weights to sampling/inference submissions so the executing
    #: site's proxy cache warms ahead of the workers.  Off reproduces the
    #: seed behavior (first resolve pays the wire) for ablations.
    prefetch_hints: bool = True

    #: Task-ratio steering (the bragg.py move): build elastic pilots and let
    #: the Thinker shift workers toward the GPU lane while an ensemble
    #: retrain is in flight, back toward CPU (DFT/sampling) once the new
    #: models land.  Off reproduces the static-pool seed behavior.
    elastic_steering: bool = False

    #: Route submits and result uplinks through the :mod:`repro.batch`
    #: adaptive-batching hot path (FuncX configurations only) — sampling
    #: and inference storms pay one cloud round trip per batch instead of
    #: per task.  Off reproduces the per-task seed behavior.
    task_batching: bool = False
    #: (cpu, gpu) worker weights at the retrain trigger / after the batch.
    steer_train_weights: tuple[float, float] = (1.0, 2.0)
    steer_sim_weights: tuple[float, float] = (3.0, 1.0)

    def __post_init__(self) -> None:
        if self.target_new_structures <= 0 or self.retrain_after <= 0:
            raise ValueError("target_new_structures and retrain_after must be positive")
        if self.sampling_min_steps > self.sampling_max_steps:
            raise ValueError("sampling_min_steps must be <= sampling_max_steps")
        if self.n_ensemble <= 0 or self.inference_batch <= 0:
            raise ValueError("n_ensemble and inference_batch must be positive")
