"""Task functions for surrogate fine-tuning: sample, simulate, train, infer.

Same remote-task discipline as the molecular design tasks: module-level,
pickleable, software from the environment registry, data in arguments.
"""

from __future__ import annotations

import numpy as np

from repro.apps.environment import get_software
from repro.ml.schnet import SchnetSurrogate
from repro.net.clock import get_clock
from repro.serialize import Blob
from repro.sim.water import Structure, run_md

__all__ = [
    "DFT_KEY",
    "run_sampling",
    "run_dft",
    "train_schnet",
    "infer_energies",
]

DFT_KEY = "finetune:dft"


def run_sampling(
    model: SchnetSurrogate,
    start: Structure,
    *,
    n_steps: int,
    temperature: float,
    seed: int,
    duration: float,
    payload_bytes: int,
) -> dict:
    """Molecular dynamics with the surrogate's forces (§III-B sampling).

    Few steps → little diversity; many steps → unphysical structures from
    accumulated model error.  The steering policy ramps ``n_steps`` up as
    the model improves.
    """
    get_clock().sleep(duration)
    frames = run_md(
        start,
        model.predict_forces,
        n_steps,
        temperature=temperature,
        seed=seed,
        sample_every=max(n_steps // 8, 1),
    )
    return {
        "frames": frames,
        "last": frames[-1],
        "n_steps": n_steps,
        "artifacts": Blob(payload_bytes, tag="sampling-frames"),
    }


def run_dft(structure: Structure) -> dict:
    """One DFT energy+forces evaluation (~360 s on CPU)."""
    simulator = get_software(DFT_KEY)
    record = simulator.compute(structure)
    return {
        "structure": structure,
        "energy": record.energy,
        "forces": record.forces,
        "wall_time": record.wall_time,
        "artifacts": record.artifacts,
    }


def train_schnet(
    model: SchnetSurrogate,
    structures: list[Structure],
    energies: np.ndarray,
    *,
    duration: float,
    epochs: int,
    seed: int,
) -> SchnetSurrogate:
    """Fine-tune one ensemble member (~4 min on a GPU in the paper); the
    21 MB weight payload rides back with the model."""
    get_clock().sleep(duration)
    model.train(list(structures), np.asarray(energies), epochs=epochs, seed=seed)
    return model


def infer_energies(
    model: SchnetSurrogate,
    structures: list[Structure],
    *,
    duration: float,
    payload_bytes: int,
) -> dict:
    """Predict energies for a batch of structures (~3.2 s / 100 on GPU)."""
    get_clock().sleep(duration)
    energies = model.predict(list(structures))
    return {
        "energies": np.asarray(energies),
        "artifacts": Blob(payload_bytes, tag="inference-energies"),
    }
