"""The surrogate fine-tuning steering policy (§III-B).

The policy juggles four task types with shared CPU capacity:

* *simulation* (DFT) consumes structures picked from two pools — the
  **audit pool** (last frame of each sampling trajectory: maximally far
  from the training set) and the **uncertainty pool** (structures whose
  predicted energies disagree most across the ensemble);
* *sampling* runs surrogate-driven MD to generate candidate structures,
  with a timestep count that ramps up as the model earns trust;
* *inference* re-ranks the last ``uncertainty_batch`` sampled structures
  whenever that many accumulate, refreshing the uncertainty pool;
* *training* refreshes ensemble members every ``retrain_after`` new DFT
  results.

A rebalancer agent moves CPU slots between simulation and sampling to hold
the audit pool at a constant size, the paper's §III-B resource policy.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque

import numpy as np

from typing import TYPE_CHECKING

from repro.apps.finetuning.config import FineTuneConfig
from repro.bench.recording import emit
from repro.core.queues import ColmenaQueues
from repro.core.result import Result
from repro.core.thinker import (
    BaseThinker,
    ResourceCounter,
    agent,
    event_responder,
    result_processor,
    task_submitter,
)
from repro.ml.schnet import SchnetSurrogate
from repro.net.clock import get_clock
from repro.net.topology import Site
from repro.proxystore.prefetch import hints_for_proxies
from repro.proxystore.store import Store
from repro.sim.water import Structure, make_water_cluster

if TYPE_CHECKING:  # pragma: no cover
    from repro.durable import CampaignCheckpoint
    from repro.elastic import SteeringPolicy

__all__ = ["FineTuneThinker"]


def _encode_structure(structure: Structure) -> dict:
    """JSON-safe structure document for the decision journal."""
    return {
        "positions": structure.positions.tolist(),
        "types": structure.types.tolist(),
        "bonds": [list(bond) for bond in structure.bonds],
    }


def _decode_structure(doc: dict) -> Structure:
    return Structure(
        np.asarray(doc["positions"], dtype=float),
        np.asarray(doc["types"], dtype=int),
        tuple(tuple(int(i) for i in bond) for bond in doc["bonds"]),
    )


class FineTuneThinker(BaseThinker):
    """Active-learning controller for surrogate fine-tuning."""

    def __init__(
        self,
        queues: ColmenaQueues,
        site: Site,
        config: FineTuneConfig,
        initial_models: list[SchnetSurrogate],
        *,
        n_cpu_slots: int,
        cross_store: Store | None = None,
        rng_seed: int = 0,
        steering: "SteeringPolicy | None" = None,
        checkpoint: "CampaignCheckpoint | None" = None,
    ) -> None:
        if len(initial_models) != config.n_ensemble:
            raise ValueError("need one initial model per ensemble member")
        counter = ResourceCounter(n_cpu_slots, ["simulate", "sample"])
        sample_slots = min(config.initial_sample_slots, n_cpu_slots - 1)
        counter.allocate("sample", sample_slots)
        counter.allocate("simulate", n_cpu_slots - sample_slots)
        super().__init__(queues, site, counter)
        self.config = config
        self.cross_store = cross_store
        #: Optional runtime capacity lever over the elastic pools ("cpu" /
        #: "gpu"); None (the default) keeps the static-pool behavior.
        self.steering = steering
        #: Optional write-ahead journal for decision state (DFT results,
        #: retrain triggers), powering ``repro.cli resume``.
        self.checkpoint = checkpoint
        self._rng = np.random.default_rng(rng_seed)

        self._lock = threading.Lock()
        self.models: list[SchnetSurrogate] = list(initial_models)
        self._model_refs: list[object] = [None] * config.n_ensemble
        self.audit_pool: deque[Structure] = deque()
        self.uncertainty_pool: list[Structure] = []
        self._sample_buffer: list[Structure] = []
        self.new_structures: list[tuple[Structure, float, np.ndarray]] = []
        self._since_retrain = 0
        self._retraining = False
        self._train_batch = 0
        self._sample_counter = itertools.count()
        self._cluster_counter = itertools.count(1000)
        self._rank_round = 0
        self._round_energies: dict[tuple[int, int], np.ndarray] | None = None
        self._round_structures: list[Structure] = []
        self._round_pending = 0

        self.results: dict[str, list[Result]] = {
            "simulate": [],
            "sample": [],
            "train": [],
            "infer": [],
        }
        self.task_failures: list[Result] = []
        #: (nominal time, new-structure count) progress curve.
        self.progress: list[tuple[float, int]] = [(0.0, 0)]

    # -- model hand-off ------------------------------------------------------
    def _model_for_submission(self, member: int):
        """The latest model for ``member``, proxied once per version so every
        consumer task shares the same store entry (ahead-of-time staging)."""
        with self._lock:
            ref = self._model_refs[member]
            if ref is None:
                model = self.models[member]
                if self.cross_store is not None:
                    ref = self.cross_store.proxy(model)
                else:
                    ref = model
                self._model_refs[member] = ref
            return ref

    def _pick_member(self) -> int:
        return int(self._rng.integers(self.config.n_ensemble))

    def _fresh_cluster(self) -> Structure:
        return make_water_cluster(
            self.config.n_waters, seed=next(self._cluster_counter)
        )

    # -- CPU task submitters ------------------------------------------------------
    @task_submitter(task_type="simulate")
    def submit_simulation(self) -> None:
        with self._lock:
            if len(self.new_structures) >= self.config.target_new_structures:
                return  # budget reached: park the slot
            if self.uncertainty_pool:
                structure = self.uncertainty_pool.pop(0)
            elif self.audit_pool:
                structure = self.audit_pool.popleft()
            else:
                structure = self._fresh_cluster()
        self.queues.send_request("run_dft", args=(structure,), topic="simulate")

    @task_submitter(task_type="sample")
    def submit_sampling(self) -> None:
        cfg = self.config
        index = next(self._sample_counter)
        progress = min(
            len(self.new_structures) / max(cfg.target_new_structures, 1), 1.0
        )
        n_steps = int(
            round(
                cfg.sampling_min_steps
                + (cfg.sampling_max_steps - cfg.sampling_min_steps) * progress
            )
        )
        member = self._pick_member()
        ref = self._model_for_submission(member)
        self.queues.send_request(
            "run_sampling",
            args=(ref, self._fresh_cluster()),
            kwargs={
                "n_steps": n_steps,
                "temperature": cfg.sampling_temperature,
                "seed": index,
                "duration": cfg.sampling_duration,
                "payload_bytes": cfg.sampling_payload,
            },
            topic="sample",
            # Proxied weights are shared by every sampler using this member;
            # the hint lets the sampling site pull them ahead of the task.
            prefetch=hints_for_proxies([ref], pin=True) if cfg.prefetch_hints else (),
        )

    # -- result processors ------------------------------------------------------------
    @result_processor(topic="simulate")
    def process_simulation(self, result: Result) -> None:
        assert self.resources is not None
        self.results["simulate"].append(result)
        if not result.success:
            self.task_failures.append(result)
            self.resources.release("simulate", 1)
            return
        record = result.access_value()
        if self.checkpoint is not None:
            # Write-ahead: the accepted DFT result is durable before the
            # in-memory pools consume it.
            self.checkpoint.note(
                "dft_result",
                structure=_encode_structure(record["structure"]),
                energy=float(record["energy"]),
                forces=np.asarray(record["forces"]).tolist(),
            )
        with self._lock:
            self.new_structures.append(
                (record["structure"], record["energy"], record["forces"])
            )
            count = len(self.new_structures)
            self.progress.append((get_clock().now(), count))
            self._since_retrain += 1
            trigger = (
                self._since_retrain >= self.config.retrain_after
                and not self._retraining
            )
            if trigger:
                self._retraining = True
                self._since_retrain = 0
                self._train_batch += 1
            batch = self._train_batch
            finished = count >= self.config.target_new_structures
        self.resources.release("simulate", 1)
        if trigger:
            if self.checkpoint is not None:
                self.checkpoint.note("retrain", batch=batch)
            self.set_event("retrain")
            # The learning threshold is hit: shift workers to the GPU lane
            # while the ensemble retrains (per bragg.py's steering move).
            self._steer(
                self.config.steer_train_weights, reason=f"retrain batch {batch}"
            )
        if finished:
            self.done.set()

    @result_processor(topic="sample")
    def process_sampling(self, result: Result) -> None:
        assert self.resources is not None
        self.results["sample"].append(result)
        if not result.success:
            self.task_failures.append(result)
            self.resources.release("sample", 1)
            return
        record = result.access_value()
        submit_round: list[Structure] | None = None
        with self._lock:
            self.audit_pool.append(record["last"])
            self._sample_buffer.extend(record["frames"])
            ready = (
                len(self._sample_buffer) >= self.config.uncertainty_batch
                and self._round_energies is None
            )
            if ready:
                submit_round = self._sample_buffer[: self.config.uncertainty_batch]
                self._sample_buffer = self._sample_buffer[
                    self.config.uncertainty_batch :
                ]
                self._rank_round += 1
                self._round_structures = submit_round
                self._round_energies = {}
                self._round_pending = 0
        self.resources.release("sample", 1)
        if submit_round is not None:
            self._submit_ranking(submit_round)

    def _submit_ranking(self, structures: list[Structure]) -> None:
        cfg = self.config
        chunks = [
            structures[i : i + cfg.inference_batch]
            for i in range(0, len(structures), cfg.inference_batch)
        ]
        with self._lock:
            self._round_pending = len(chunks) * cfg.n_ensemble
        for member in range(cfg.n_ensemble):
            ref = self._model_for_submission(member)
            hints = hints_for_proxies([ref], pin=True) if cfg.prefetch_hints else ()
            for chunk_id, chunk in enumerate(chunks):
                self.queues.send_request(
                    "infer_energies",
                    args=(ref, chunk),
                    prefetch=hints,
                    kwargs={
                        "duration": cfg.inference_duration
                        * len(chunk)
                        / max(cfg.inference_batch, 1),
                        "payload_bytes": cfg.inference_payload,
                    },
                    topic="infer",
                    task_info={
                        "round": self._rank_round,
                        "member": member,
                        "chunk": chunk_id,
                        "offset": chunk_id * cfg.inference_batch,
                    },
                )

    @result_processor(topic="infer")
    def process_inference(self, result: Result) -> None:
        self.results["infer"].append(result)
        if not result.success:
            self.task_failures.append(result)
            with self._lock:
                self._round_energies = None  # abandon the round
            return
        if result.task_info.get("round") != self._rank_round:
            return
        record = result.access_value()
        with self._lock:
            if self._round_energies is None:
                return
            key = (result.task_info["member"], result.task_info["chunk"])
            self._round_energies[key] = record["energies"]
            self._round_pending -= 1
            if self._round_pending > 0:
                return
            # Round complete: variance across members -> uncertainty pool.
            n = len(self._round_structures)
            matrix = np.full((self.config.n_ensemble, n), np.nan)
            for (member, chunk), energies in self._round_energies.items():
                offset = chunk * self.config.inference_batch
                matrix[member, offset : offset + len(energies)] = energies
            variance = np.nanstd(matrix, axis=0)
            order = np.argsort(-variance)[: self.config.uncertainty_pool_size]
            self.uncertainty_pool = [self._round_structures[int(i)] for i in order]
            self._round_energies = None
            self._round_structures = []

    # -- training ------------------------------------------------------------------------
    @event_responder(event="retrain")
    def start_retraining(self) -> None:
        cfg = self.config
        with self._lock:
            structures = [s for s, _, _ in self.new_structures]
            energies = np.array([e for _, e, _ in self.new_structures])
            batch = self._train_batch
            models = [self.models[m] for m in range(cfg.n_ensemble)]
        rng = np.random.default_rng(batch)
        for member, model in enumerate(models):
            size = max(4, int(round(0.8 * len(structures))))
            idx = rng.choice(len(structures), size=min(size, len(structures)), replace=False)
            self.queues.send_request(
                "train_schnet",
                args=(model, [structures[int(i)] for i in idx], energies[idx]),
                kwargs={
                    "duration": cfg.train_duration,
                    "epochs": cfg.train_epochs,
                    "seed": batch * 100 + member,
                },
                topic="train",
                task_info={"batch": batch, "member": member},
            )

    @result_processor(topic="train")
    def process_training(self, result: Result) -> None:
        self.results["train"].append(result)
        if not result.success:
            self.task_failures.append(result)
            with self._lock:
                self._retraining = False
            self._steer(self.config.steer_sim_weights, reason="train failure")
            return
        model = result.access_value()
        member = result.task_info["member"]
        with self._lock:
            self.models[member] = model
            self._model_refs[member] = None  # next submission re-proxies
            batch = result.task_info["batch"]
            batch_done = all(
                r.task_info.get("batch") == result.task_info["batch"]
                for r in self.results["train"][-self.config.n_ensemble :]
            ) and sum(
                1
                for r in self.results["train"]
                if r.success and r.task_info.get("batch") == result.task_info["batch"]
            ) >= self.config.n_ensemble
            if batch_done:
                self._retraining = False
        if batch_done:
            # New models landed: return capacity to the DFT/sampling lane.
            self._steer(self.config.steer_sim_weights, reason=f"batch {batch} done")

    def _steer(self, weights: tuple[float, float], *, reason: str) -> None:
        """Re-divide worker capacity between the cpu/gpu pools.  Advisory:
        a steering failure must never take down a result processor."""
        if self.steering is None:
            return
        cpu_w, gpu_w = weights
        try:
            self.steering.set_ratio({"cpu": cpu_w, "gpu": gpu_w}, reason=reason)
        except Exception as exc:  # noqa: BLE001 - capacity hints are best-effort
            emit("steering_error", thinker="finetuning", reason=reason, error=repr(exc))

    # -- checkpoint / resume ---------------------------------------------------
    def export_state(self) -> dict:
        """JSON-safe decision state for :class:`CampaignCheckpoint`.

        Lighter than moldesign's: the accepted DFT results and retrain
        cadence are the decision state worth keeping; transient pools
        (audit/uncertainty/sample buffers) are regenerated by the sampling
        loop after resume.
        """
        with self._lock:
            return {
                "new_structures": [
                    {
                        "structure": _encode_structure(structure),
                        "energy": float(energy),
                        "forces": np.asarray(forces).tolist(),
                    }
                    for structure, energy, forces in self.new_structures
                ],
                "since_retrain": self._since_retrain,
                "train_batch": self._train_batch,
            }

    def restore_state(self, snapshot: dict | None, events: list[dict]) -> None:
        """Rebuild the accepted-structure ledger from snapshot + journaled
        events; call before ``start()``.  A resumed campaign keeps full
        credit toward ``target_new_structures`` — no accepted DFT result is
        ever recomputed — while the sampling pools restart cold."""
        state = {"new_structures": [], "since_retrain": 0, "train_batch": 0}
        if snapshot:
            state.update(snapshot)
        structures = [
            (
                _decode_structure(doc["structure"]),
                float(doc["energy"]),
                np.asarray(doc["forces"], dtype=float),
            )
            for doc in state["new_structures"]
        ]
        since_retrain = int(state["since_retrain"])
        train_batch = int(state["train_batch"])
        for event in events:
            if event["type"] == "dft_result":
                structures.append(
                    (
                        _decode_structure(event["structure"]),
                        float(event["energy"]),
                        np.asarray(event["forces"], dtype=float),
                    )
                )
                since_retrain += 1
            elif event["type"] == "retrain":
                since_retrain = 0
                train_batch = int(event["batch"])
        clock = get_clock()
        with self._lock:
            self.new_structures = structures
            self._since_retrain = since_retrain
            self._train_batch = train_batch
            self.progress = [(0.0, 0), (clock.now(), len(structures))] if structures else [(0.0, 0)]
            finished = len(structures) >= self.config.target_new_structures
        if finished:
            self.done.set()

    # -- resource balancing -----------------------------------------------------------------
    @agent(critical=False)
    def rebalance(self) -> None:
        """Hold the audit pool at its target size by shifting CPU slots
        between sampling and simulation (§III-B's allocation policy)."""
        assert self.resources is not None
        clock = get_clock()
        while not self.done.is_set():
            clock.sleep(5.0)
            with self._lock:
                audit = len(self.audit_pool)
            if audit < self.config.audit_pool_target:
                if self.resources.allocated("simulate") > 1:
                    self.resources.reallocate("simulate", "sample", 1, timeout=1.0)
            elif audit > 2 * self.config.audit_pool_target:
                if self.resources.allocated("sample") > 1:
                    self.resources.reallocate("sample", "simulate", 1, timeout=1.0)
