"""Molecular design application (§III-A): active learning for high-IP
molecules across CPU (simulation) and GPU (train/infer) resources."""

from repro.apps.moldesign.campaign import MolDesignOutcome, run_moldesign_campaign
from repro.apps.moldesign.config import MolDesignConfig
from repro.apps.moldesign.tasks import run_inference, simulate_molecule, train_model
from repro.apps.moldesign.thinker import MolDesignThinker

__all__ = [
    "MolDesignOutcome",
    "run_moldesign_campaign",
    "MolDesignConfig",
    "run_inference",
    "simulate_molecule",
    "train_model",
    "MolDesignThinker",
]
