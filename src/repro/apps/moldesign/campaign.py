"""End-to-end molecular design campaigns on any workflow configuration.

One call — :func:`run_moldesign_campaign` — builds the testbed, installs the
"software" (oracle + library), wires the chosen §V-B workflow stack, runs
the Thinker to its simulation budget, and returns a
:class:`MolDesignOutcome` with everything the Fig. 5/6 harnesses need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.common import AppMethod, TopicPolicy, WorkflowHandle, build_workflow
from repro.apps.environment import register_software
from repro.apps.moldesign.config import MolDesignConfig
from repro.apps.moldesign.tasks import (
    LIBRARY_KEY,
    SIMULATOR_KEY,
    run_inference,
    simulate_molecule,
    train_model,
)
from repro.apps.moldesign.thinker import MolDesignThinker
from repro.core.result import Result
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, Testbed, build_paper_testbed
from repro.sim.chemistry import MoleculeLibrary, TightBindingSimulator

__all__ = ["MolDesignOutcome", "run_moldesign_campaign"]


@dataclass
class MolDesignOutcome:
    """Everything measured in one campaign run."""

    workflow: str
    seed: int
    threshold: float
    n_found: int
    n_simulated: int
    found_timeline: list[tuple[float, int]]
    ml_makespans: list[float]
    results: dict[str, list[Result]] = field(default_factory=dict)
    cpu_idle_gaps: list[float] = field(default_factory=list)
    gpu_idle_gaps: list[float] = field(default_factory=list)
    n_failures: int = 0
    #: Per-store operation summaries (cache hit rates back the paper's
    #: sub-100 ms proxy-resolution observation).
    store_metrics: dict[str, dict] = field(default_factory=dict)
    #: Runtime capacity moves when ``config.elastic_steering`` is on
    #: (:class:`repro.elastic.SteeringEvent` records, in order).
    steering_events: list = field(default_factory=list)
    #: The final decision ledger (molecule index -> simulated IP) — what
    #: the durability harness digests to prove crash/resume determinism.
    database: dict[int, float] = field(default_factory=dict)

    @property
    def cpu_utilization(self) -> float:
        """Busy fraction of CPU workers between first and last task."""
        sims = [r.time_running for r in self.results.get("simulate", []) if r.time_running]
        busy = sum(sims)
        idle = sum(self.cpu_idle_gaps)
        return busy / (busy + idle) if busy + idle > 0 else 0.0


def run_moldesign_campaign(
    workflow: str = "funcx+globus",
    config: MolDesignConfig | None = None,
    *,
    seed: int = 0,
    testbed: Testbed | None = None,
    constants: PaperConstants | None = None,
    n_cpu_workers: int | None = None,
    n_gpu_workers: int | None = None,
    join_timeout: float | None = 600.0,
    faas_cloud: object | None = None,
    tenant: str = "default",
    run_id: str | None = None,
    checkpoint: object | None = None,
    resume: bool = False,
    crash_after_results: int | None = None,
) -> MolDesignOutcome:
    """Run one campaign; ``join_timeout`` is wall seconds (safety net).

    ``faas_cloud``/``tenant`` let the campaign run as one tenant of a
    shared (sharded) cloud instead of building its own — see
    :func:`repro.apps.common.build_workflow`.  ``run_id`` pins the
    workflow's resource names (pool/endpoint/store prefixes); fixing it
    makes elastic chaos keys deterministic across runs.

    ``checkpoint`` (a :class:`repro.durable.CampaignCheckpoint`) journals
    the Thinker's decision state; ``resume=True`` restores from it before
    starting, continuing a killed campaign without recomputing completed
    simulations; ``crash_after_results`` kills the campaign after that many
    results (the durability harness's crash lever)."""
    config = config or MolDesignConfig()
    testbed = testbed or build_paper_testbed(seed=seed, constants=constants)
    n_cpu = n_cpu_workers if n_cpu_workers is not None else testbed.constants.n_cpu_workers

    library = MoleculeLibrary(
        config.n_molecules, n_features=config.n_features, seed=config.seed
    )
    simulator = TightBindingSimulator(
        library,
        duration_mean=config.sim_duration,
        artifact_bytes=config.sim_artifact_bytes,
        seed=seed,
    )
    register_software(LIBRARY_KEY, library, replace=True)
    register_software(SIMULATOR_KEY, simulator, replace=True)

    methods = [
        AppMethod(simulate_molecule, resource="cpu", topic="simulate"),
        AppMethod(train_model, resource="gpu", topic="train"),
        AppMethod(run_inference, resource="gpu", topic="infer"),
    ]
    policies = {
        "simulate": TopicPolicy(locality="local", threshold=10_000),
        "train": TopicPolicy(locality="cross", threshold=10_000),
        "infer": TopicPolicy(locality="cross", threshold=10_000),
    }
    handle: WorkflowHandle = build_workflow(
        workflow,
        testbed,
        methods,
        policies,
        n_cpu_workers=n_cpu,
        n_gpu_workers=n_gpu_workers,
        run_id=run_id,
        faas_cloud=faas_cloud,
        tenant=tenant,
        elastic=config.elastic_steering,
        task_batching=config.task_batching,
    )
    steering = None
    if config.elastic_steering:
        from repro.elastic import SteeringPolicy

        n_gpu = (
            n_gpu_workers
            if n_gpu_workers is not None
            else testbed.constants.n_gpu_workers
        )
        steering = SteeringPolicy(
            {"cpu": handle.cpu_pool, "gpu": handle.gpu_pool},
            total_workers=n_cpu + n_gpu,
        )
    thinker = MolDesignThinker(
        handle.queues,
        testbed.theta_login,
        config,
        library,
        n_cpu_slots=n_cpu,
        cross_store=handle.stores.get("cross"),
        rng_seed=seed,
        steering=steering,
        checkpoint=checkpoint,
        crash_after_results=crash_after_results,
    )
    if resume:
        if checkpoint is None:
            raise ValueError("resume=True requires a checkpoint")
        snapshot, events = checkpoint.load_state()
        thinker.restore_state(snapshot, events)
    with handle:
        with at_site(testbed.theta_login):
            thinker.start()
        thinker.done.wait(timeout=join_timeout)
        thinker.done.set()  # release any still-parked agents
        thinker.join(timeout=30)
        store_metrics = {
            name: store.metrics.summary() for name, store in handle.stores.items()
        }
        if checkpoint is not None and crash_after_results is None:
            # A clean finish compacts the decision log into one snapshot;
            # a crashed run leaves the log as-is (a dead process cannot
            # compact), which is exactly what resume replays.
            checkpoint.save_state(thinker.export_state())

    return MolDesignOutcome(
        workflow=workflow,
        seed=seed,
        threshold=thinker.threshold,
        n_found=thinker.n_found,
        n_simulated=len(thinker.database),
        found_timeline=thinker.found_timeline,
        ml_makespans=thinker.ml_makespans,
        results=thinker.results,
        cpu_idle_gaps=list(handle.cpu_pool.idle_gaps),
        gpu_idle_gaps=list(handle.gpu_pool.idle_gaps),
        n_failures=len(thinker.task_failures),
        store_metrics=store_metrics,
        steering_events=list(steering.events) if steering is not None else [],
        database=dict(thinker.database),
    )
