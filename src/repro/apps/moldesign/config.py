"""Configuration for the molecular design campaign (§III-A).

Defaults follow the paper's task characterization — ~60 s simulations
producing ~1 MB, 340 s training tasks shipping ~10 MB models, 900 s
per-model inference over the full library moving ~2.4 GB — with campaign
*sizes* (library, simulation budget, ensemble) scaled down so a full run
fits in a benchmark.  Every scaling knob is explicit here and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MolDesignConfig"]


@dataclass(frozen=True)
class MolDesignConfig:
    # -- candidate library (paper: 1 115 321 MOSES molecules) ---------------
    n_molecules: int = 3000
    n_features: int = 32
    seed: int = 0
    #: success threshold as an upper quantile of the true IP distribution
    #: (the paper's fixed "IP > 14" cut sits in the upper tail of its set).
    threshold_quantile: float = 0.05

    # -- active-learning loop ------------------------------------------------
    n_initial: int = 48  # random seed simulations before the first retrain
    max_simulations: int = 200  # total simulation budget (paper: 6 node-hours)
    retrain_after: int = 24  # new results per retrain (per batch)
    n_ensemble: int = 4  # paper: 8 MPNNs; scaled with the campaign
    inference_chunks: int = 4  # per-model library scoring is split this way
    kappa: float = 1.0  # UCB exploration weight
    #: extra queued simulations beyond CPU workers.  0 reproduces the
    #: paper's measured idle times (~0.1-0.5 s between tasks); §V-E1 notes
    #: utilization "can be improved even further" with a backlog of >= 1,
    #: which the ablation benchmark exercises.
    backlog: int = 0

    # -- task durations (nominal seconds) -----------------------------------------
    #: The paper's means are 60 s (sim), 340 s (train), 900 s (inference per
    #: model).  The AI durations here are scaled ~2x down so the default
    #: campaign completes multiple ML update cycles within its (scaled)
    #: simulation budget; the data sizes are NOT scaled, which preserves the
    #: communication/computation contrast the paper studies.
    sim_duration: float = 60.0
    train_duration: float = 180.0
    inference_duration_per_model: float = 400.0

    # -- data sizes (nominal bytes; paper's transfer characterization: each
    # inference task moves ~2.4 GB of model weights + inputs + outputs) ------
    sim_artifact_bytes: int = 1_000_000  # ~1 MB per simulation
    model_padding: int = 10_000_000  # ~10 MB of model weights
    inference_input_padding: int = 2_000_000_000  # molecule inputs per task
    inference_output_padding: int = 300_000_000  # scores + metadata per task

    # -- surrogate training (real compute inside the simulated duration) -----------
    train_epochs: int = 40
    hidden_layers: tuple[int, ...] = (48, 48)

    #: Attach :class:`~repro.proxystore.prefetch.PrefetchHint`s for the
    #: proxied model weights to inference submissions, so the executing
    #: site's proxy cache warms ahead of the workers.  Off reproduces the
    #: seed behavior (first resolve pays the wire) for ablations.
    prefetch_hints: bool = True

    #: Task-ratio steering (the bragg.py move): build the pilots as elastic
    #: pools and let the Thinker re-divide workers between the CPU
    #: (simulate) and GPU (train/infer) lanes at runtime — GPU-heavy while
    #: an ML batch is in flight, CPU-heavy once the queue is re-ranked.
    #: Off reproduces the static-pool seed behavior.
    elastic_steering: bool = False

    #: Route submits and result uplinks through the :mod:`repro.batch`
    #: adaptive-batching hot path (FuncX configurations only) — inference
    #: storms pay one cloud round trip per batch instead of per task.  Off
    #: reproduces the per-task seed behavior.
    task_batching: bool = False
    #: (cpu, gpu) worker weights applied at the learning threshold
    #: (retrain triggered) and after the batch completes, respectively.
    steer_train_weights: tuple[float, float] = (1.0, 2.0)
    steer_sim_weights: tuple[float, float] = (3.0, 1.0)

    @property
    def inference_chunk_duration(self) -> float:
        return self.inference_duration_per_model / self.inference_chunks

    def __post_init__(self) -> None:
        if self.n_initial >= self.max_simulations:
            raise ValueError("n_initial must leave budget for steered simulations")
        if not 0 < self.threshold_quantile < 1:
            raise ValueError("threshold_quantile must be in (0, 1)")
        if self.retrain_after <= 0 or self.n_ensemble <= 0 or self.inference_chunks <= 0:
            raise ValueError("retrain_after, n_ensemble, inference_chunks must be positive")
