"""Task functions for molecular design: simulate, train, infer.

These run on (simulated) remote workers, so they follow remote-task rules:
module-level, pickleable, no closure over campaign state — heavyweight
"installed software" (the oracle and the candidate library) comes from
:mod:`repro.apps.environment`, and all data they need rides in as arguments
(large ones arriving as transparent proxies).
"""

from __future__ import annotations

import numpy as np

from repro.apps.environment import get_software
from repro.ml.mpnn import MpnnSurrogate
from repro.net.clock import get_clock
from repro.serialize import Blob

__all__ = [
    "SIMULATOR_KEY",
    "LIBRARY_KEY",
    "simulate_molecule",
    "train_model",
    "run_inference",
]

SIMULATOR_KEY = "moldesign:simulator"
LIBRARY_KEY = "moldesign:library"


def simulate_molecule(molecule_index: int) -> dict:
    """Compute one molecule's IP with the tight-binding oracle (~60 s)."""
    simulator = get_software(SIMULATOR_KEY)
    record = simulator.compute_ip(int(molecule_index))
    return {
        "molecule_index": record.molecule_index,
        "ip": record.ip,
        "wall_time": record.wall_time,
        "artifacts": record.artifacts,
    }


def train_model(
    model: MpnnSurrogate,
    train_x: np.ndarray,
    train_y: np.ndarray,
    *,
    duration: float,
    epochs: int,
    seed: int,
) -> MpnnSurrogate:
    """Train one ensemble member (~340 s on a GPU in the paper).

    The nominal GPU time is charged to the virtual clock; the surrogate's
    real numpy training runs inside it.  The returned model carries its
    ~10 MB weight padding, so shipping it back costs what the paper saw.
    """
    get_clock().sleep(duration)
    model.train(np.asarray(train_x), np.asarray(train_y), epochs=epochs, seed=seed)
    return model


def run_inference(
    model: MpnnSurrogate,
    chunk_indices: np.ndarray,
    molecule_inputs: Blob,
    *,
    duration: float,
    output_padding: int,
) -> dict:
    """Score one library chunk with one model (a slice of the 900 s/model,
    2.4 GB-per-task inference stage)."""
    library = get_software(LIBRARY_KEY)
    get_clock().sleep(duration)
    indices = np.asarray(chunk_indices, dtype=int)
    scores = model.predict(library.fingerprints(indices))
    return {
        "chunk_indices": indices,
        "scores": scores,
        "artifacts": Blob(output_padding, tag="inference-outputs"),
    }
