"""The molecular-design steering policy (§III-A, §V-D).

Agents:

* ``submit_simulation`` — one per free CPU slot (plus a small backlog):
  sends the next-best unsimulated molecule.  Because the decision needs no
  result *data*, re-dispatch is millisecond-fast (§V-D2's 5 ms median).
* ``process_simulation`` — records the new IP, advances the success
  timeline, and triggers a retrain every ``retrain_after`` results.
* ``start_retraining`` — fans out one training task per ensemble member.
* ``process_training`` — as *each* model finishes (the paper submits
  inference "after the first model completes training"), manually proxies
  it once into the cross-site store and fans out that model's inference
  chunks; all chunks share the proxy, so only the first resolution per
  resource pays the transfer — the ahead-of-time caching effect behind the
  paper's sub-100 ms proxy resolutions.
* ``process_inference`` — accumulates chunk scores; when the batch is
  complete, reorders the task queue by UCB and records the *ML makespan*
  (retrain request → queue reordered), Fig. 6's responsiveness metric.
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from typing import TYPE_CHECKING

from repro.apps.moldesign.config import MolDesignConfig
from repro.bench.recording import emit
from repro.core.queues import ColmenaQueues
from repro.core.result import Result
from repro.core.thinker import (
    BaseThinker,
    ResourceCounter,
    agent,
    event_responder,
    result_processor,
    task_submitter,
)
from repro.ml.mpnn import MpnnSurrogate
from repro.net.clock import get_clock
from repro.net.topology import Site
from repro.proxystore.prefetch import hints_for_proxies
from repro.proxystore.store import Store
from repro.serialize import Blob
from repro.sim.chemistry import MoleculeLibrary

if TYPE_CHECKING:  # pragma: no cover
    from repro.durable import CampaignCheckpoint
    from repro.elastic import SteeringPolicy

__all__ = ["MolDesignThinker"]


class MolDesignThinker(BaseThinker):
    """Active-learning controller for the molecular design campaign."""

    def __init__(
        self,
        queues: ColmenaQueues,
        site: Site,
        config: MolDesignConfig,
        library: MoleculeLibrary,
        *,
        n_cpu_slots: int,
        cross_store: Store | None = None,
        rng_seed: int = 0,
        steering: "SteeringPolicy | None" = None,
        checkpoint: "CampaignCheckpoint | None" = None,
        crash_after_results: int | None = None,
    ) -> None:
        super().__init__(
            queues,
            site,
            ResourceCounter(n_cpu_slots + config.backlog, ["simulation"]),
        )
        assert self.resources is not None
        self.resources.allocate("simulation", n_cpu_slots + config.backlog)
        self.config = config
        self.library = library
        self.cross_store = cross_store
        #: Optional write-ahead journal for decision state: every consumed
        #: result is appended *before* the in-memory state advances, so a
        #: killed campaign resumes without recomputing completed tasks.
        self.checkpoint = checkpoint
        #: Test/chaos lever: simulate a campaign-process crash by setting
        #: ``done`` after this many simulation results.
        self.crash_after_results = crash_after_results
        #: Optional runtime capacity lever over the elastic pools ("cpu" /
        #: "gpu"); None (the default) keeps the static-pool behavior.
        self.steering = steering
        self.threshold = library.top_quantile_threshold(config.threshold_quantile)

        rng = np.random.default_rng(rng_seed)
        self._lock = threading.Lock()
        self._ranked: list[int] = list(rng.permutation(len(library)))
        self._cursor = 0
        self._in_flight: set[int] = set()
        self.database: dict[int, float] = {}
        self._sims_submitted = 0
        self._sims_completed = 0
        self._since_retrain = 0
        self._retraining = False
        self._batch_id = 0
        self._ml_start: float | None = None
        self._batch_scores: np.ndarray | None = None
        self._batch_chunks_received = 0
        self._cumulative_sim_time = 0.0

        #: (cumulative simulation CPU-seconds, molecules found) — Fig. 6a.
        self.found_timeline: list[tuple[float, int]] = [(0.0, 0)]
        #: Retrain-request -> queue-reordered durations — Fig. 6b.
        self.ml_makespans: list[float] = []
        #: Every Result, by topic — Figs. 5/7 draw from these ledgers.
        self.results: dict[str, list[Result]] = {
            "simulate": [],
            "train": [],
            "infer": [],
        }
        self.task_failures: list[Result] = []
        # Trained models waiting for their inference fan-out.  Submission
        # involves staging gigabytes into the data fabric, so it runs on its
        # own agent — the train-result processor must stay responsive.
        self._inference_work: "queue.Queue[tuple[object, dict]]" = queue.Queue()

    # -- helpers ------------------------------------------------------------
    @property
    def n_found(self) -> int:
        return sum(1 for ip in self.database.values() if ip > self.threshold)

    def _next_molecule(self) -> int | None:
        while self._cursor < len(self._ranked):
            candidate = int(self._ranked[self._cursor])
            self._cursor += 1
            if candidate not in self.database and candidate not in self._in_flight:
                return candidate
        return None

    # -- agents ----------------------------------------------------------------
    @task_submitter(task_type="simulation")
    def submit_simulation(self) -> None:
        with self._lock:
            if self._sims_submitted >= self.config.max_simulations:
                # Budget exhausted: park this slot permanently.
                return
            molecule = self._next_molecule()
            if molecule is None:
                return
            self._in_flight.add(molecule)
            self._sims_submitted += 1
        self.queues.send_request(
            "simulate_molecule", args=(molecule,), topic="simulate"
        )

    @result_processor(topic="simulate")
    def process_simulation(self, result: Result) -> None:
        assert self.resources is not None
        self.results["simulate"].append(result)
        if not result.success:
            self.task_failures.append(result)
            self.resources.release("simulation", 1)
            return
        record = result.access_value()
        molecule = record["molecule_index"]
        if self.checkpoint is not None:
            # Write-ahead: the decision event is durable (charged append)
            # before the in-memory state consumes it, so a crash after this
            # line never re-simulates this molecule.
            self.checkpoint.note(
                "sim_result",
                molecule=int(molecule),
                ip=float(record["ip"]),
                wall_time=float(record["wall_time"]),
            )
        with self._lock:
            self._in_flight.discard(molecule)
            self.database[molecule] = record["ip"]
            self._sims_completed += 1
            self._cumulative_sim_time += record["wall_time"]
            self.found_timeline.append((self._cumulative_sim_time, self.n_found))
            self._since_retrain += 1
            trigger_retrain = (
                self._since_retrain >= self.config.retrain_after
                and not self._retraining
                and len(self.database) >= self.config.n_initial
                and self._sims_completed < self.config.max_simulations
            )
            if trigger_retrain:
                self._retraining = True
                self._since_retrain = 0
                self._batch_id += 1
                self._ml_start = get_clock().now()
                self._batch_scores = np.full(
                    (self.config.n_ensemble, len(self.library)), np.nan
                )
                self._batch_chunks_received = 0
            batch = self._batch_id
            finished = self._sims_completed >= self.config.max_simulations
            crashed = (
                self.crash_after_results is not None
                and self._sims_completed >= self.crash_after_results
            )
        # The next simulation can start immediately; the data-independent
        # decision is just a slot release (the paper's 5 ms decision time).
        self.resources.release("simulation", 1)
        if trigger_retrain:
            if self.checkpoint is not None:
                self.checkpoint.note("retrain", batch=batch)
            self.set_event("retrain")
            # The learning threshold is hit: give the GPU lane the workers
            # (kill sim capacity to make room for training, per bragg.py).
            self._steer(
                self.config.steer_train_weights, reason=f"retrain batch {batch}"
            )
        if finished or crashed:
            self.done.set()

    @event_responder(event="retrain")
    def start_retraining(self) -> None:
        with self._lock:
            known = sorted(self.database)
            y = np.array([self.database[i] for i in known])
            batch = self._batch_id
        x = self.library.fingerprints(known)
        rng = np.random.default_rng(batch)
        subset_size = max(4, int(round(0.8 * len(known))))
        for member in range(self.config.n_ensemble):
            idx = rng.choice(len(known), size=min(subset_size, len(known)), replace=False)
            model = MpnnSurrogate(
                self.library.n_features,
                hidden=self.config.hidden_layers,
                seed=batch * 100 + member,
                weight_padding=self.config.model_padding,
            )
            self.queues.send_request(
                "train_model",
                args=(model, x[idx], y[idx]),
                kwargs={
                    "duration": self.config.train_duration,
                    "epochs": self.config.train_epochs,
                    "seed": batch * 100 + member,
                },
                topic="train",
                task_info={"batch": batch, "member": member},
            )

    @result_processor(topic="train")
    def process_training(self, result: Result) -> None:
        self.results["train"].append(result)
        if not result.success:
            self.task_failures.append(result)
            self._abort_batch_if_dead()
            return
        if result.task_info.get("batch") != self._batch_id:
            return  # a straggler from an abandoned batch
        model = result.access_value()
        self._inference_work.put((model, dict(result.task_info)))

    @agent(critical=False)
    def submit_inference(self) -> None:
        """Fan a freshly trained model out over the library chunks.

        Runs as its own agent because staging the molecule inputs into the
        data fabric takes seconds per chunk; the paper submits inference "as
        soon as the first model completes training", which this preserves
        while keeping the train-result processor unblocked.
        """
        while not self.done.is_set():
            try:
                model, task_info = self._inference_work.get(timeout=self._wall(0.25))
            except queue.Empty:
                continue
            if task_info.get("batch") != self._batch_id:
                continue
            # Manual ahead-of-time proxying: one store entry per model,
            # shared by every chunk task, so the weights cross sites once.
            hints: tuple = ()
            if self.cross_store is not None:
                model = self.cross_store.proxy(model)
                # Every chunk task carries the weights' prefetch hint
                # (pinned: the whole wave shares them), so the executing
                # site starts pulling the model before workers resolve it.
                if self.config.prefetch_hints:
                    hints = hints_for_proxies([model], pin=True)
            chunks = np.array_split(
                np.arange(len(self.library)), self.config.inference_chunks
            )
            for chunk_id, chunk in enumerate(chunks):
                self.queues.send_request(
                    "run_inference",
                    args=(
                        model,
                        chunk,
                        Blob(self.config.inference_input_padding, tag="mol-inputs"),
                    ),
                    kwargs={
                        "duration": self.config.inference_chunk_duration,
                        "output_padding": self.config.inference_output_padding,
                    },
                    topic="infer",
                    task_info={
                        "batch": task_info["batch"],
                        "member": task_info["member"],
                        "chunk": chunk_id,
                    },
                    prefetch=hints,
                )

    @result_processor(topic="infer")
    def process_inference(self, result: Result) -> None:
        self.results["infer"].append(result)
        if not result.success:
            self.task_failures.append(result)
            self._abort_batch_if_dead()
            return
        if result.task_info.get("batch") != self._batch_id:
            return
        record = result.access_value()
        member = result.task_info["member"]
        with self._lock:
            if self._batch_scores is None:
                return
            self._batch_scores[member, record["chunk_indices"]] = record["scores"]
            self._batch_chunks_received += 1
            total = self.config.n_ensemble * self.config.inference_chunks
            if self._batch_chunks_received < total:
                return
            # Batch complete: re-rank everything by UCB.
            mean = np.nanmean(self._batch_scores, axis=0)
            std = np.nanstd(self._batch_scores, axis=0)
            ucb = mean + self.config.kappa * std
            self._ranked = [int(i) for i in np.argsort(-ucb)]
            self._cursor = 0
            self._retraining = False
            self._batch_scores = None
            if self._ml_start is not None:
                self.ml_makespans.append(get_clock().now() - self._ml_start)
                self._ml_start = None
            batch = self._batch_id
        # Queue re-ranked, GPU wave done: hand the workers back to sims.
        self._steer(self.config.steer_sim_weights, reason=f"batch {batch} complete")

    def _abort_batch_if_dead(self) -> None:
        """If an AI task failed, give up on the batch rather than hang."""
        with self._lock:
            self._retraining = False
            self._batch_scores = None
            self._ml_start = None
        self._steer(self.config.steer_sim_weights, reason="batch aborted")

    def _steer(self, weights: tuple[float, float], *, reason: str) -> None:
        """Re-divide worker capacity between the cpu/gpu pools.  Advisory:
        a steering failure must never take down a result processor."""
        if self.steering is None:
            return
        cpu_w, gpu_w = weights
        if self.checkpoint is not None:
            self.checkpoint.note("steer", cpu=cpu_w, gpu=gpu_w, reason=reason)
        try:
            self.steering.set_ratio({"cpu": cpu_w, "gpu": gpu_w}, reason=reason)
        except Exception as exc:  # noqa: BLE001 - capacity hints are best-effort
            emit("steering_error", thinker="moldesign", reason=reason, error=repr(exc))

    # -- checkpoint / resume ---------------------------------------------------
    def export_state(self) -> dict:
        """JSON-safe decision state for :class:`CampaignCheckpoint`."""
        with self._lock:
            return {
                "database": {
                    str(k): float(v) for k, v in sorted(self.database.items())
                },
                "cumulative_sim_time": self._cumulative_sim_time,
                "found_timeline": [[t, n] for t, n in self.found_timeline],
                "since_retrain": self._since_retrain,
                "batch_id": self._batch_id,
                "ml_makespans": list(self.ml_makespans),
            }

    def restore_state(self, snapshot: dict | None, events: list[dict]) -> None:
        """Rebuild decision state from a checkpoint snapshot plus the
        decision events journaled after it; call before ``start()``.

        Resumed work never recomputes: every journaled molecule re-enters
        ``database`` (double-journaled events dedupe on molecule id), the
        simulated/submitted counters restart at the database size, and the
        seeded ranking plus a reset cursor skips completed molecules the
        same way a live run skips them.
        """
        state = {
            "database": {},
            "cumulative_sim_time": 0.0,
            "found_timeline": [[0.0, 0]],
            "since_retrain": 0,
            "batch_id": 0,
            "ml_makespans": [],
        }
        if snapshot:
            state.update(snapshot)
        database = {int(k): float(v) for k, v in state["database"].items()}
        cumulative = float(state["cumulative_sim_time"])
        timeline = [(float(t), int(n)) for t, n in state["found_timeline"]]
        since_retrain = int(state["since_retrain"])
        batch_id = int(state["batch_id"])
        for event in events:
            if event["type"] == "sim_result":
                molecule = int(event["molecule"])
                if molecule in database:
                    continue  # double-journaled (crash inside the append)
                database[molecule] = float(event["ip"])
                cumulative += float(event["wall_time"])
                found = sum(1 for ip in database.values() if ip > self.threshold)
                timeline.append((cumulative, found))
                since_retrain += 1
            elif event["type"] == "retrain":
                since_retrain = 0
                batch_id = int(event["batch"])
            # "steer" events carry no decision state to restore.
        with self._lock:
            self.database = database
            self._sims_completed = len(database)
            self._sims_submitted = len(database)
            self._cumulative_sim_time = cumulative
            self.found_timeline = timeline
            self._since_retrain = since_retrain
            self._batch_id = batch_id
            self.ml_makespans = [float(m) for m in state["ml_makespans"]]
            self._cursor = 0
            self._in_flight.clear()
            finished = self._sims_completed >= self.config.max_simulations
        if finished:
            self.done.set()
