"""repro.batch — adaptive task batching and the event-driven hot path.

Small-task storms are dominated by per-task cloud round trips and the
second serialize/deserialize hop through the payload store (paper Fig. 3).
This package amortizes both:

- :class:`BatchAccumulator` coalesces client submits per (tenant, endpoint)
  under an adaptive flush policy (:class:`BatchPolicy`): flush on batch
  size, on accumulated bytes, or on a hold deadline that *shrinks* under
  light load so a lone task is never parked waiting for company.
- :class:`Reactor` is the single per-process timer wheel that fires flush
  deadlines and endpoint heartbeats, replacing the thread-per-wait sleep
  loops on those paths.

The cloud-side counterparts (`submit_batch`, `report_results`,
`next_completed_batch`) live on `FaasCloud`/`CloudRouter`; the zero-copy
payload mode lives in `repro.serialize.borrow`.
"""

from repro.batch.batcher import BatchAccumulator, BatchPolicy
from repro.batch.reactor import Reactor, get_reactor

__all__ = ["BatchAccumulator", "BatchPolicy", "Reactor", "get_reactor"]
