"""Adaptive batch accumulation for the client submit path.

The accumulator holds pending submits per key — the client keys on
(tenant, endpoint) so a flushed batch maps onto one `submit_batch` call —
and decides, per arrival, whether to flush now or how long to hold.

Flush triggers:

- **size**: the batch reached ``max_batch`` entries (flushed inline by
  the submitting thread, amortizing one round trip over a full batch);
- **bytes**: accumulated payload bytes reached ``max_bytes``;
- **deadline**: a hold timer fired.  The hold is *adaptive*: an EWMA of
  the observed submit inter-arrival gap predicts whether more work is
  coming.  When the batcher is idle or arrivals are sparser than the
  flush deadline, holding buys nothing, so the hold collapses to
  ``min_hold`` and a lone task is released almost immediately.  Under a
  storm the hold stretches toward ``flush_deadline`` — which stays a hard
  upper bound on how long any task can be parked.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from repro.net.clock import Clock, get_clock
from repro.observe import counter_inc

__all__ = ["BatchPolicy", "BatchAccumulator"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs for the adaptive flush policy (times in nominal seconds)."""

    max_batch: int = 32
    max_bytes: int = 1 << 20
    flush_deadline: float = 0.05
    min_hold: float = 0.002
    ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.flush_deadline < 0 or self.min_hold < 0:
            raise ValueError("hold times must be >= 0")
        if self.min_hold > self.flush_deadline:
            raise ValueError("min_hold must not exceed flush_deadline")


@dataclass
class _Pending:
    items: list[Any] = field(default_factory=list)
    nbytes: int = 0
    generation: int = 0


class BatchAccumulator:
    """Thread-safe per-key batches under one :class:`BatchPolicy`.

    ``add`` returns ``(batch, hold, generation)``: a non-``None`` batch
    means a size/bytes trigger fired and the caller should flush it
    inline; a non-``None`` hold means a deadline should be armed for
    ``generation`` (only the first entry of a fresh batch arms one).
    ``take(key, generation)`` claims the batch for a firing deadline and
    is a no-op if the batch was already flushed (generation moved on).
    """

    def __init__(self, policy: BatchPolicy, clock: Clock | None = None) -> None:
        self.policy = policy
        self._clock = clock or get_clock()
        self._lock = threading.Lock()
        self._pending: dict[Hashable, _Pending] = {}
        self._generations: dict[Hashable, int] = {}
        self._last_arrival: float | None = None
        self._ewma_gap: float | None = None

    # -- arrival-rate tracking ----------------------------------------------
    def _note_arrival_locked(self, now: float) -> None:
        if self._last_arrival is not None:
            gap = max(0.0, now - self._last_arrival)
            alpha = self.policy.ewma_alpha
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                self._ewma_gap = alpha * gap + (1.0 - alpha) * self._ewma_gap
        self._last_arrival = now

    def hold_for(self) -> float:
        """Adaptive hold for a freshly started batch."""
        with self._lock:
            return self._hold_for_locked()

    def _hold_for_locked(self) -> float:
        policy = self.policy
        gap = self._ewma_gap
        if gap is None or gap >= policy.flush_deadline:
            # Idle or light load: the next arrival is expected beyond the
            # deadline anyway, so don't park a lone task waiting for it.
            return policy.min_hold
        # Storm: hold long enough for ~half a full batch at the recent
        # arrival rate, hard-capped by the flush deadline.
        return min(
            policy.flush_deadline,
            max(policy.min_hold, gap * policy.max_batch / 2.0),
        )

    # -- batch mutation ------------------------------------------------------
    def add(
        self, key: Hashable, item: Any, nbytes: int
    ) -> tuple[Optional[list[Any]], Optional[float], int]:
        with self._lock:
            self._note_arrival_locked(self._clock.now())
            pend = self._pending.get(key)
            if pend is None:
                pend = self._pending[key] = _Pending(
                    generation=self._generations.get(key, 0)
                )
            pend.items.append(item)
            pend.nbytes += max(0, nbytes)
            policy = self.policy
            if (
                len(pend.items) >= policy.max_batch
                or pend.nbytes >= policy.max_bytes
            ):
                reason = (
                    "size" if len(pend.items) >= policy.max_batch else "bytes"
                )
                counter_inc("batch.flushes", reason=reason)
                return self._claim_locked(key, pend), None, pend.generation
            if len(pend.items) == 1:
                return None, self._hold_for_locked(), pend.generation
            return None, None, pend.generation

    def take(self, key: Hashable, generation: int | None = None) -> list[Any]:
        """Claim a batch (deadline flush); empty if already flushed."""
        with self._lock:
            pend = self._pending.get(key)
            if pend is None or (
                generation is not None and pend.generation != generation
            ):
                return []
            counter_inc("batch.flushes", reason="deadline")
            return self._claim_locked(key, pend)

    def take_all(self) -> list[tuple[Hashable, list[Any]]]:
        """Claim every pending batch (client close / explicit flush)."""
        with self._lock:
            out = []
            for key in list(self._pending):
                pend = self._pending[key]
                if pend.items:
                    counter_inc("batch.flushes", reason="drain")
                    out.append((key, self._claim_locked(key, pend)))
            return out

    def _claim_locked(self, key: Hashable, pend: _Pending) -> list[Any]:
        items = pend.items
        del self._pending[key]
        self._generations[key] = pend.generation + 1
        return items

    def pending_count(self) -> int:
        with self._lock:
            return sum(len(p.items) for p in self._pending.values())
