"""A single-threaded timer reactor multiplexing the control plane's waits.

Before this existed every deadline in the hot path owned a thread: each
endpoint parked a heartbeat thread in a sleep loop, and a batching client
would have needed one waiter per armed flush deadline.  The reactor
replaces those with one scheduler thread per process: callbacks are kept
in a heap ordered by *nominal* (virtual-clock) deadline and the thread
blocks on a condition variable for exactly the wall-time equivalent of
the nearest one.  Arming, cancelling, or closing wakes it immediately.

Callbacks run on the reactor thread and must be short and non-blocking —
they typically flip a condition or hand work to an existing worker
thread.  A periodic callback can cancel itself by returning ``False``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Optional

from repro.net.clock import Clock, get_clock
from repro.observe import counter_inc

__all__ = ["Reactor", "Timer", "get_reactor", "reset_reactor"]


class Timer:
    """Handle for a scheduled callback; ``cancel()`` is idempotent."""

    __slots__ = ("when", "period", "fn", "cancelled")

    def __init__(self, when: float, period: Optional[float], fn: Callable[[], Any]):
        self.when = when
        self.period = period
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Reactor:
    """One scheduler thread driving many nominal-time deadlines."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or get_clock()
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._running = False

    # -- scheduling ----------------------------------------------------------
    def call_later(self, delay: float, fn: Callable[[], Any]) -> Timer:
        """Run ``fn`` once, ``delay`` nominal seconds from now."""
        return self._arm(Timer(self._clock.now() + max(0.0, delay), None, fn))

    def call_every(self, period: float, fn: Callable[[], Any]) -> Timer:
        """Run ``fn`` every ``period`` nominal seconds until it is cancelled
        or returns ``False``."""
        period = max(period, 1e-9)
        return self._arm(Timer(self._clock.now() + period, period, fn))

    def _arm(self, timer: Timer) -> Timer:
        with self._cond:
            heapq.heappush(self._heap, (timer.when, next(self._seq), timer))
            self._ensure_thread_locked()
            self._cond.notify_all()
        return timer

    def _ensure_thread_locked(self) -> None:
        if self._running:
            return
        self._running = True
        self._thread = threading.Thread(
            target=self._run, name="repro-reactor", daemon=True
        )
        self._thread.start()

    # -- loop ----------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._running:
                    return
                due = self._pop_due_locked()
                if due is None:
                    # Block for the wall-time equivalent of the nearest
                    # deadline; arming a nearer timer notifies us awake.
                    wait = self._wall_wait_locked()
                    self._cond.wait(wait)
                    continue
            self._fire(due)

    def _pop_due_locked(self) -> Timer | None:
        now = self._clock.now()
        while self._heap:
            when, _, timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if when > now:
                return None
            heapq.heappop(self._heap)
            return timer
        return None

    def _wall_wait_locked(self) -> float | None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        nominal = self._heap[0][0] - self._clock.now()
        wall = self._clock.wall_timeout(max(nominal, 0.0))
        # Never spin: floor the wait so a just-due timer still yields.
        return max(wall if wall is not None else 0.0, 1e-5)

    def _fire(self, timer: Timer) -> None:
        try:
            keep = timer.fn()
        except Exception:
            counter_inc("reactor.callback_errors")
            keep = False
        if timer.period is not None and keep is not False and not timer.cancelled:
            timer.when = self._clock.now() + timer.period
            with self._cond:
                heapq.heappush(self._heap, (timer.when, next(self._seq), timer))
                self._cond.notify_all()

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        with self._cond:
            self._running = False
            self._heap.clear()
            self._cond.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=1.0)


_process_reactor: Reactor | None = None
_process_lock = threading.Lock()


def get_reactor() -> Reactor:
    """The per-process reactor (created on first use)."""
    global _process_reactor
    with _process_lock:
        if _process_reactor is None:
            _process_reactor = Reactor()
        return _process_reactor


def reset_reactor() -> None:
    """Tear down the process reactor (tests call this between cases so
    stale timers from a previous virtual-clock epoch cannot fire)."""
    global _process_reactor
    with _process_lock:
        reactor, _process_reactor = _process_reactor, None
    if reactor is not None:
        reactor.close()
