"""Benchmark support: event recording and paper-vs-measured reporting."""

from repro.bench.recording import (
    Event,
    EventLog,
    cumulative_series,
    emit,
    get_global_log,
    running_series,
    set_global_log,
)
from repro.bench.plotting import ascii_bars, ascii_timeseries
from repro.bench.reporting import Comparison, ReportTable, summarize

__all__ = [
    "Event",
    "EventLog",
    "cumulative_series",
    "emit",
    "get_global_log",
    "running_series",
    "set_global_log",
    "Comparison",
    "ReportTable",
    "summarize",
    "ascii_bars",
    "ascii_timeseries",
]
