"""Terminal-friendly rendering of figure series.

The paper's figures are time-series and bar charts; this module renders
their reproduced counterparts as ASCII so benchmark results are inspectable
without any plotting dependency (the repository is NumPy-only).
"""

from __future__ import annotations

__all__ = ["ascii_timeseries", "ascii_bars"]


def ascii_timeseries(
    series: list[tuple[float, float]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 10,
    y_label: str = "",
    x_label: str = "t",
) -> str:
    """Render a (t, value) staircase as an ASCII chart.

    The series is resampled onto ``width`` columns (taking the last value
    at or before each column's time) and quantized onto ``height`` rows.
    """
    if not series:
        return f"{title}\n(no data)"
    t_min, t_max = series[0][0], series[-1][0]
    values = [v for _, v in series]
    v_min, v_max = min(values), max(values)
    if v_max == v_min:
        v_max = v_min + 1.0
    if t_max == t_min:
        t_max = t_min + 1.0

    columns: list[float] = []
    index = 0
    for col in range(width):
        t = t_min + (t_max - t_min) * col / (width - 1)
        while index + 1 < len(series) and series[index + 1][0] <= t:
            index += 1
        columns.append(series[index][1])

    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(columns):
        row = int(round((value - v_min) / (v_max - v_min) * (height - 1)))
        grid[height - 1 - row][col] = "#"
        # Fill downward for a solid area look.
        for fill in range(height - row, height):
            if grid[fill][col] == " ":
                grid[fill][col] = "."

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{v_max:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{v_min:10.3g} +" + "-" * width)
    lines.append(
        " " * 12 + f"{t_min:<10.3g}{x_label:^{max(width - 20, 1)}}{t_max:>10.3g}"
    )
    if y_label:
        lines.insert(1 if title else 0, f"[{y_label}]")
    return "\n".join(lines)


def ascii_bars(
    items: list[tuple[str, float]],
    *,
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Render labeled magnitudes as horizontal bars."""
    if not items:
        return f"{title}\n(no data)"
    peak = max(value for _, value in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(int(round(value / peak * width)), 0)
        lines.append(f"{label:>{label_width}} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)
