"""Event recording for experiment figures.

Components across the stack (worker pools, the transfer service, stores)
emit lightweight events into a process-global :class:`EventLog` when one is
installed.  The figure harnesses install a log, run a campaign, and then
turn the raw events into the series the paper plots — e.g. Fig. 1's "tasks
running on each resource" staircase and "cumulative data transferred".
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.net.clock import get_clock

__all__ = [
    "Event",
    "EventLog",
    "set_global_log",
    "get_global_log",
    "emit",
    "running_series",
    "cumulative_series",
]


@dataclass(frozen=True)
class Event:
    t: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class EventLog:
    """Append-only, thread-safe event sink."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._lock = threading.Lock()

    def append(self, kind: str, **data: Any) -> None:
        event = Event(t=get_clock().now(), kind=kind, data=data)
        with self._lock:
            self._events.append(event)

    def events(self, kind: str | None = None, **filters: Any) -> list[Event]:
        with self._lock:
            snapshot = list(self._events)
        out = []
        for event in snapshot:
            if kind is not None and event.kind != kind:
                continue
            if any(event.get(k) != v for k, v in filters.items()):
                continue
            out.append(event)
        return out

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_global_log: EventLog | None = None
_global_lock = threading.Lock()


def set_global_log(log: EventLog | None) -> None:
    global _global_log
    with _global_lock:
        _global_log = log


def get_global_log() -> EventLog | None:
    return _global_log


def emit(kind: str, **data: Any) -> None:
    """Record an event into the global log, if one is installed (cheap no-op
    otherwise, so instrumented hot paths stay fast in production use)."""
    log = _global_log
    if log is not None:
        log.append(kind, **data)


def running_series(
    events: Iterable[Event], start_kind: str, end_kind: str
) -> list[tuple[float, int]]:
    """Turn start/end events into a (time, concurrency) staircase."""
    deltas: list[tuple[float, int]] = []
    for event in events:
        if event.kind == start_kind:
            deltas.append((event.t, +1))
        elif event.kind == end_kind:
            deltas.append((event.t, -1))
    deltas.sort()
    series: list[tuple[float, int]] = []
    level = 0
    for t, d in deltas:
        level += d
        series.append((t, level))
    return series


def cumulative_series(
    events: Iterable[Event], kind: str, value_key: str
) -> list[tuple[float, float]]:
    """Cumulative sum of ``value_key`` over events of ``kind`` (e.g. bytes)."""
    points = sorted(
        (event.t, float(event.get(value_key, 0.0)))
        for event in events
        if event.kind == kind
    )
    series: list[tuple[float, float]] = []
    total = 0.0
    for t, v in points:
        total += v
        series.append((t, total))
    return series


def value_at(series: list[tuple[float, float]], t: float) -> float:
    """Evaluate a staircase series at time ``t`` (0 before the first point)."""
    if not series:
        return 0.0
    times = [p[0] for p in series]
    idx = bisect.bisect_right(times, t) - 1
    return series[idx][1] if idx >= 0 else 0.0
