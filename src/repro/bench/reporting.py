"""Paper-vs-measured reporting for the benchmark harness.

Each figure benchmark builds a :class:`ReportTable` with one
:class:`Comparison` row per quantity the paper reports, then prints it.  The
printed block is the benchmark's deliverable: the same rows/series the paper
shows, side by side with what this reproduction measured, plus a note on
whether the qualitative claim (ordering, ratio, crossover) held.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Comparison", "ReportTable", "summarize", "percentile"]


def summarize(values: Iterable[float]) -> dict[str, float]:
    """median / mean / p40 / p60 / count for a latency sample (the paper's
    error bars on Fig. 6b are 40th/60th percentiles)."""
    data = sorted(float(v) for v in values)
    if not data:
        return {"count": 0, "median": float("nan"), "mean": float("nan"),
                "p40": float("nan"), "p60": float("nan")}
    return {
        "count": len(data),
        "median": statistics.median(data),
        "mean": statistics.fmean(data),
        "p40": percentile(data, 0.40),
        "p60": percentile(data, 0.60),
    }


def percentile(sorted_data: list[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted data."""
    if not sorted_data:
        return float("nan")
    if len(sorted_data) == 1:
        return sorted_data[0]
    pos = q * (len(sorted_data) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_data) - 1)
    frac = pos - lo
    return sorted_data[lo] * (1 - frac) + sorted_data[hi] * frac


@dataclass
class Comparison:
    """One reported quantity: what the paper says vs what we measured."""

    label: str
    paper: str
    measured: str
    holds: bool | None = None  # None = informational row (no claim tested)

    def verdict(self) -> str:
        if self.holds is None:
            return "-"
        return "OK" if self.holds else "DIVERGES"


@dataclass
class ReportTable:
    """A printable paper-vs-measured table for one figure/experiment."""

    title: str
    rows: list[Comparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(
        self, label: str, paper: str, measured: str, holds: bool | None = None
    ) -> None:
        self.rows.append(Comparison(label, paper, measured, holds))

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_hold(self) -> bool:
        return all(r.holds for r in self.rows if r.holds is not None)

    def render(self) -> str:
        widths = [
            max(len("quantity"), *(len(r.label) for r in self.rows)) if self.rows else 8,
            max(len("paper"), *(len(r.paper) for r in self.rows)) if self.rows else 5,
            max(len("measured"), *(len(r.measured) for r in self.rows)) if self.rows else 8,
        ]
        lines = [f"== {self.title} =="]
        header = (
            f"{'quantity':<{widths[0]}}  {'paper':<{widths[1]}}  "
            f"{'measured':<{widths[2]}}  verdict"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                f"{row.label:<{widths[0]}}  {row.paper:<{widths[1]}}  "
                f"{row.measured:<{widths[2]}}  {row.verdict()}"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, it's the API verb
        print("\n" + self.render() + "\n")
