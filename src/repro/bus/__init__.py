"""``repro.bus`` — acknowledged push-notification bus for the task fabric.

Event-driven replacement for the client/endpoint busy-poll loops: the cloud
publishes sequenced envelopes (result notifications, task-available
doorbells) to per-subscriber streams with explicit cumulative acks, bounded
redelivery windows, and :class:`~repro.chaos.policy.RetryPolicy`-driven
redelivery backoff — at-least-once delivery with consumer-side duplicate
suppression by sequence number.  The pre-existing poll paths remain as a
degraded fallback that engages automatically when a subscription lapses and
hands back on resubscribe (replay from the last ack covers the gap).
"""

from repro.bus.broker import Envelope, NotificationBus, Subscription
from repro.bus.consumer import BusConsumer

__all__ = ["Envelope", "NotificationBus", "Subscription", "BusConsumer"]
