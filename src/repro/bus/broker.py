"""The acknowledged push-notification bus (broker side).

The paper's cloud fabric delivers result notifications over a
websocket/polling hybrid and task dispatches over AMQP; both are *push*
channels layered over durable server-side queues.  :class:`NotificationBus`
reproduces that layer with auditable delivery guarantees:

* **Per-subscriber monotonic sequence numbers** — every envelope published
  to a ``(topic, subscriber)`` pair gets the next sequence number in that
  subscriber's stream, so consumers can suppress duplicates and ack
  cumulatively.
* **At-least-once delivery** — an envelope stays in the subscriber's unacked
  window until a cumulative ack covers it; unacked envelopes are redelivered
  after a :class:`~repro.chaos.policy.RetryPolicy`-driven backoff.
* **Subscription leases** — a subscriber that stops receiving (crash, pause,
  chaos-injected disconnect) has its subscription lapse; envelopes keep
  accumulating in its window and are replayed from the last ack on
  resubscribe, so nothing is lost across the gap.
* **Bounded redelivery window** — a subscriber more than ``window`` envelopes
  behind is force-lapsed and its oldest envelopes trimmed; the poll-fallback
  path (the queues are the ground truth, envelopes are doorbells) covers the
  trimmed gap.

Chaos hooks (``bus.deliver``, ``bus.duplicate``, ``bus.subscription.drop``)
are keyed by envelope *content* (the task's chaos key) plus the subscriber's
stable label, so a seeded campaign injects the identical notification-loss
set across runs regardless of thread scheduling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.chaos.plan import chaos_check
from repro.chaos.policy import RetryPolicy
from repro.exceptions import SubscriptionLapsedError
from repro.net.clock import Clock, get_clock
from repro.observe import counter_inc

__all__ = ["Envelope", "Subscription", "NotificationBus"]


@dataclass(frozen=True)
class Envelope:
    """One sequenced notification in a subscriber's stream."""

    seq: int
    topic: str
    payload: Any
    #: Content-derived fault-injection key (the task's chaos key); delivery
    #: hooks key on it so loss/duplicate injection is run-order independent.
    chaos_key: str | None
    published_at: float


class _SubscriberState:
    """Broker-side state for one (topic, subscriber) pair.

    Created at registration time (before the subscriber ever connects) so
    publishes can never race a first subscribe: envelopes published while
    the subscriber is away accumulate here and replay on subscribe.
    """

    def __init__(self, topic: str, subscriber_id: str, chaos_label: str) -> None:
        self.topic = topic
        self.subscriber_id = subscriber_id
        self.chaos_label = chaos_label
        self.active = False
        self.lease_expiry = 0.0
        self.next_seq = 1
        #: Highest cumulatively acked sequence number.
        self.acked = 0
        #: Unacked envelopes by sequence number (the redelivery window).
        self.window: dict[int, Envelope] = {}
        #: Delivery attempts made per unacked sequence number.
        self.attempts: dict[int, int] = {}
        #: Earliest nominal time each unacked envelope may be (re)delivered.
        self.next_attempt_at: dict[int, float] = {}


class Subscription:
    """A consumer's handle on its subscriber state: receive, ack, close."""

    def __init__(self, bus: "NotificationBus", state: _SubscriberState) -> None:
        self._bus = bus
        self._state = state

    @property
    def topic(self) -> str:
        return self._state.topic

    @property
    def acked(self) -> int:
        return self._state.acked

    def receive(self, max_n: int, timeout: float | None) -> list[Envelope]:
        """Block until envelopes are deliverable (or ``timeout`` nominal
        seconds elapse); raises :class:`SubscriptionLapsedError` once the
        subscription has been dropped."""
        return self._bus._receive(self._state, max_n, timeout)

    def ack(self, upto_seq: int) -> None:
        """Cumulatively acknowledge every envelope with ``seq <= upto_seq``."""
        self._bus._ack(self._state, upto_seq)

    def close(self) -> None:
        """Graceful unsubscribe: deactivate and discard the window."""
        self._bus._close(self._state)


class NotificationBus:
    """Cloud-hosted subscription bus with acked, at-least-once delivery."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        redelivery: RetryPolicy | None = None,
        lease_ttl: float = 30.0,
        window: int = 256,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._clock = clock or get_clock()
        self._redelivery = redelivery or RetryPolicy(
            max_attempts=6, base_delay=0.5, max_delay=4.0
        )
        self._lease_ttl = lease_ttl
        self._window = window
        self._states: dict[tuple[str, str], _SubscriberState] = {}
        self._by_topic: dict[str, list[_SubscriberState]] = {}
        self._cond = threading.Condition()

    # -- registration / subscription ------------------------------------------
    def register_subscriber(
        self, topic: str, subscriber_id: str, *, chaos_label: str | None = None
    ) -> None:
        """Pre-create (inactive) subscriber state so publishes that happen
        before the subscriber's first :meth:`subscribe` are retained."""
        with self._cond:
            self._state_locked(topic, subscriber_id, chaos_label)

    def subscribe(
        self, topic: str, subscriber_id: str, *, chaos_label: str | None = None
    ) -> Subscription:
        """Activate (or resume) a subscription.

        Resuming replays from the last cumulative ack: every unacked
        envelope in the window becomes immediately deliverable again, so no
        notification is lost across a lapse.
        """
        with self._cond:
            state = self._state_locked(topic, subscriber_id, chaos_label)
            state.active = True
            state.lease_expiry = self._clock.now() + self._lease_ttl
            for seq in state.next_attempt_at:
                state.next_attempt_at[seq] = 0.0
            self._cond.notify_all()
        return Subscription(self, state)

    def _state_locked(
        self, topic: str, subscriber_id: str, chaos_label: str | None
    ) -> _SubscriberState:
        key = (topic, subscriber_id)
        state = self._states.get(key)
        if state is None:
            state = _SubscriberState(topic, subscriber_id, chaos_label or subscriber_id)
            self._states[key] = state
            self._by_topic.setdefault(topic, []).append(state)
        return state

    # -- publish ---------------------------------------------------------------
    def publish(self, topic: str, payload: Any, *, chaos_key: str | None = None) -> int:
        """Enqueue a sequenced envelope for every subscriber of ``topic``;
        returns the number of subscriber streams it entered.

        The ``bus.subscription.drop`` chaos hook runs here for *every*
        subscriber, active or not, so the injected-fault ledger is a pure
        function of the publish sequence (which is causal), never of
        whether a resubscribe happened to win a race.
        """
        now = self._clock.now()
        with self._cond:
            states = list(self._by_topic.get(topic, ()))
            fanout = 0
            for state in states:
                self._lapse_if_stale_locked(state, now)
                spec = chaos_check(
                    "bus.subscription.drop",
                    f"{chaos_key or topic}|{state.chaos_label}",
                    topic=topic,
                    role=_role(topic),
                )
                if spec is not None and state.active:
                    self._drop_locked(state, "chaos")
                seq = state.next_seq
                state.next_seq += 1
                env = Envelope(seq, topic, payload, chaos_key, now)
                state.window[seq] = env
                state.attempts[seq] = 0
                state.next_attempt_at[seq] = 0.0
                counter_inc("bus.published", role=_role(topic))
                fanout += 1
                if len(state.window) > self._window:
                    self._overflow_locked(state)
            if fanout:
                self._cond.notify_all()
            return fanout

    def _lapse_if_stale_locked(self, state: _SubscriberState, now: float) -> None:
        if state.active and state.lease_expiry <= now:
            self._drop_locked(state, "lease")

    def _drop_locked(self, state: _SubscriberState, reason: str) -> None:
        state.active = False
        counter_inc(
            "bus.subscription_drops", role=_role(state.topic), reason=reason
        )
        self._cond.notify_all()

    def _overflow_locked(self, state: _SubscriberState) -> None:
        """A subscriber fell more than ``window`` envelopes behind: lapse it
        and trim the oldest overflow (the poll fallback covers the trim —
        envelopes are doorbells, the queues hold the actual work).

        Trimmed sequence numbers will never be delivered, so the cumulative
        ack is advanced past them; otherwise the consumer's contiguous
        frontier could never cross the gap and the window would stay wedged
        at capacity forever (every later publish re-trimming and the
        surviving envelopes redelivering without end)."""
        if state.active:
            self._drop_locked(state, "overflow")
        for seq in sorted(state.window)[: len(state.window) - self._window]:
            del state.window[seq]
            del state.attempts[seq]
            del state.next_attempt_at[seq]
            if seq > state.acked:
                state.acked = seq
            counter_inc("bus.window_trimmed", role=_role(state.topic))

    # -- consume ----------------------------------------------------------------
    def _receive(
        self, state: _SubscriberState, max_n: int, timeout: float | None
    ) -> list[Envelope]:
        deadline = None if timeout is None else self._clock.now() + timeout
        with self._cond:
            while True:
                if not state.active:
                    raise SubscriptionLapsedError(
                        f"subscription to {state.topic!r} lapsed; poll and "
                        f"resubscribe to replay from ack {state.acked}"
                    )
                now = self._clock.now()
                state.lease_expiry = now + self._lease_ttl
                due = sorted(
                    seq for seq, at in state.next_attempt_at.items() if at <= now
                )
                if due:
                    return self._deliver_locked(state, due[:max_n], now)
                if deadline is not None and now >= deadline:
                    return []
                wake_at = deadline
                if state.next_attempt_at:
                    soonest = min(state.next_attempt_at.values())
                    wake_at = soonest if wake_at is None else min(wake_at, soonest)
                remaining = None if wake_at is None else max(wake_at - now, 0.0)
                self._cond.wait(self._clock.wall_timeout(remaining))

    def _deliver_locked(
        self, state: _SubscriberState, seqs: list[int], now: float
    ) -> list[Envelope]:
        out: list[Envelope] = []
        policy = self._redelivery
        for seq in seqs:
            env = state.window[seq]
            attempt = state.attempts[seq]
            state.attempts[seq] = attempt + 1
            backoff_key = env.chaos_key or f"{env.topic}|{seq}"
            state.next_attempt_at[seq] = now + policy.delay_for(
                min(attempt, policy.max_attempts - 1), key=backoff_key
            )
            role = _role(state.topic)
            if attempt == 0:
                counter_inc("bus.delivered", role=role)
            else:
                counter_inc("bus.redelivered", role=role)
            hook_key = f"{backoff_key}|{state.chaos_label}"
            lost = chaos_check(
                "bus.deliver", hook_key, role=role, attempt=attempt
            )
            if lost is not None:
                # Dropped in flight: the subscriber never sees this attempt;
                # the envelope stays unacked and redelivers after backoff.
                counter_inc("bus.lost_in_flight", role=role)
                continue
            out.append(env)
            duplicated = chaos_check(
                "bus.duplicate", hook_key, role=role, attempt=attempt
            )
            if duplicated is not None:
                out.append(env)
        return out

    def _ack(self, state: _SubscriberState, upto_seq: int) -> None:
        with self._cond:
            if upto_seq > state.acked:
                state.acked = upto_seq
            for seq in [s for s in state.window if s <= upto_seq]:
                del state.window[seq]
                del state.attempts[seq]
                del state.next_attempt_at[seq]
            self._cond.notify_all()

    def _close(self, state: _SubscriberState) -> None:
        with self._cond:
            state.active = False
            state.acked = max(state.acked, state.next_seq - 1)
            state.window.clear()
            state.attempts.clear()
            state.next_attempt_at.clear()
            self._cond.notify_all()

    # -- introspection (tests, audits) ------------------------------------------
    def unacked(self, topic: str, subscriber_id: str) -> list[int]:
        with self._cond:
            state = self._states.get((topic, subscriber_id))
            return sorted(state.window) if state is not None else []

    def is_active(self, topic: str, subscriber_id: str) -> bool:
        with self._cond:
            state = self._states.get((topic, subscriber_id))
            return state is not None and state.active


def _role(topic: str) -> str:
    """Stable metric/chaos label for a topic's consumer kind."""
    prefix = topic.split("/", 1)[0]
    return {"tasks": "endpoint", "results": "client"}.get(prefix, prefix)
