"""Consumer-side bus logic shared by the FaaS client and endpoint.

:class:`BusConsumer` wraps a broker :class:`~repro.bus.broker.Subscription`
with the receiver half of the at-least-once contract:

* **Duplicate suppression by sequence number** — an envelope at or below the
  contiguous-processed frontier (or already processed ahead of a gap) is
  dropped and counted in ``bus.duplicates_dropped``.
* **Cumulative acks** — :meth:`done` marks one envelope processed and acks
  the highest *contiguous* prefix, so a lost-in-flight envelope keeps every
  later one unacked-but-processed until its redelivery arrives.
* **Lapse recovery** — when the subscription is dropped the next
  :meth:`receive` raises :class:`SubscriptionLapsedError`; the owner engages
  its poll fallback, then calls :meth:`resubscribe`, which replays from the
  last ack.

The ``bus.notify_latency_s`` histogram records publish-to-receive latency
for every fresh (non-duplicate) envelope.
"""

from __future__ import annotations

from repro.bus.broker import Envelope, NotificationBus, Subscription
from repro.net.clock import Clock, get_clock
from repro.observe import counter_inc, observe

__all__ = ["BusConsumer"]


class BusConsumer:
    """One subscriber's receive/dedup/ack state machine."""

    def __init__(
        self,
        bus: NotificationBus,
        topic: str,
        subscriber_id: str,
        *,
        role: str,
        chaos_label: str | None = None,
        clock: Clock | None = None,
        max_batch: int = 32,
    ) -> None:
        self._bus = bus
        self._topic = topic
        self._subscriber_id = subscriber_id
        self._role = role
        self._chaos_label = chaos_label or subscriber_id
        self._clock = clock or get_clock()
        self._max_batch = max_batch
        # Contiguous-processed frontier plus the out-of-order set beyond it.
        self._contiguous = 0
        self._done_ahead: set[int] = set()
        bus.register_subscriber(topic, subscriber_id, chaos_label=self._chaos_label)
        self._sub: Subscription = bus.subscribe(
            topic, subscriber_id, chaos_label=self._chaos_label
        )
        self._sync_frontier()

    @property
    def topic(self) -> str:
        return self._topic

    def receive(self, timeout: float | None) -> list[Envelope]:
        """Deduplicated envelopes, oldest first; raises
        :class:`~repro.exceptions.SubscriptionLapsedError` once lapsed."""
        envelopes = self._sub.receive(self._max_batch, timeout)
        fresh: list[Envelope] = []
        seen_now: set[int] = set()
        for env in envelopes:
            if (
                env.seq <= self._contiguous
                or env.seq in self._done_ahead
                or env.seq in seen_now
            ):
                counter_inc("bus.duplicates_dropped", role=self._role)
                continue
            seen_now.add(env.seq)
            observe(
                "bus.notify_latency_s",
                self._clock.now() - env.published_at,
                role=self._role,
            )
            fresh.append(env)
        return fresh

    def done(self, envelope: Envelope) -> None:
        """Mark one envelope processed; ack the contiguous prefix."""
        if envelope.seq <= self._contiguous:
            return
        self._done_ahead.add(envelope.seq)
        advanced = False
        while self._contiguous + 1 in self._done_ahead:
            self._contiguous += 1
            self._done_ahead.remove(self._contiguous)
            advanced = True
        if advanced:
            self._sub.ack(self._contiguous)

    def trim_gap(self) -> bool:
        """True when the broker's cumulative ack has advanced past this
        consumer's contiguous frontier — the signature of a window-overflow
        trim.  The doorbells in that gap are gone for good, so the owner's
        poll fallback must drain the queue to empty before trusting the bus
        for wakeups again."""
        return self._sub.acked > self._contiguous

    def resubscribe(self) -> None:
        """Reactivate after a lapse; the broker replays from the last ack."""
        self._sub = self._bus.subscribe(
            self._topic, self._subscriber_id, chaos_label=self._chaos_label
        )
        self._sync_frontier()
        counter_inc("bus.resubscribes", role=self._role)

    def _sync_frontier(self) -> None:
        """Adopt the broker's cumulative ack as the contiguous frontier.

        A window-overflow trim advances the broker-side ack past sequence
        numbers that will never be delivered; without this sync, ``done``
        would wait forever for the trimmed seqs and never ack again."""
        floor = self._sub.acked
        if floor > self._contiguous:
            self._contiguous = floor
            self._done_ahead = {seq for seq in self._done_ahead if seq > floor}

    def close(self) -> None:
        self._sub.close()
