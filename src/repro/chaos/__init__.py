"""repro.chaos — deterministic fault injection and recovery policies.

Three pieces:

* :mod:`repro.chaos.plan` — :class:`FaultPlan` / :class:`FaultInjector` and
  the ``chaos_check`` hook the fabric is instrumented with;
* :mod:`repro.chaos.policy` — the shared :class:`RetryPolicy` used by the
  FaaS client, the transfer client, and the ProxyStore ``Store``;
* :mod:`repro.chaos.campaign` — the fault-matrix campaign harness behind
  ``repro.cli chaos`` (imported lazily: it pulls in the whole fabric, and
  the fabric's modules import *this* package for the hook API).
"""

from __future__ import annotations

from repro.chaos.plan import (
    HOOKS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    attempt_from_key,
    chaos_check,
    chaos_enabled,
    get_injector,
    set_injector,
)
from repro.chaos.policy import RetryPolicy, stable_unit_hash

__all__ = [
    "HOOKS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "attempt_from_key",
    "chaos_check",
    "chaos_enabled",
    "get_injector",
    "set_injector",
    "stable_unit_hash",
    # lazy (see __getattr__):
    "campaign",
]


def __getattr__(name: str):
    if name == "campaign":
        import importlib

        return importlib.import_module("repro.chaos.campaign")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
