"""The chaos campaign: a fault matrix swept over workflow configurations.

Each **cell** of the matrix runs one workload (N FaaS tasks that each
resolve an object out of a ProxyStore backend) under one injected fault
mode, then audits the run against three invariants:

1. **No lost tasks** — every submitted task's future resolves to the
   expected value, with no intervention beyond the configured
   :class:`~repro.chaos.policy.RetryPolicy`; every task record at the cloud
   reaches a terminal state.
2. **No orphan spans** — every recorded span's parent resolves within its
   trace (recovery machinery must not drop trace context).
3. **Retry reconciliation** — the recovery counters (client retries, store
   retries, transfer requeues, failovers) add up against the injector's own
   record of what it fired.

Fault selection is a pure function of the plan seed and content-derived
event keys, so a cell's **ledger digest** (fault events + task outcomes) is
identical across runs — ``run_campaign(verify_determinism=True)`` proves it
by running every cell twice.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.chaos.plan import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    chaos_check,
    set_injector,
)
from repro.chaos.policy import RetryPolicy
from repro.exceptions import TaskQuarantinedError
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, Testbed, build_paper_testbed
from repro.net.kvstore import KVServer
from repro.net.topology import UniformLatency
from repro.observe import (
    MetricsRegistry,
    Tracer,
    find_orphans,
    set_metrics,
    set_tracer,
)
from repro.proxystore.connectors.file import FileConnector
from repro.proxystore.connectors.globus import GlobusConnector
from repro.proxystore.connectors.redis import RedisConnector
from repro.proxystore.store import Store, clear_store_registry, get_store
from repro.resources import WorkerPool
from repro.transfer.client import TransferClient
from repro.transfer.service import TransferEndpoint, TransferService

__all__ = [
    "FAULT_MODES",
    "CONFIGS",
    "CellResult",
    "fault_specs",
    "run_cell",
    "run_campaign",
    "render_results",
]

#: Fault modes the campaign knows how to inject *and* reconcile.
FAULT_MODES: tuple[str, ...] = (
    "worker_exception",
    "endpoint_crash",
    "payload_cap",
    "store_corruption",
    "cloud_store_error",
    "transfer_fault",
    "notification_loss",
    "notification_duplicate",
    "subscription_drop",
    "shard_outage",
    "shard_crash",
    "batch_flush_loss",
    "campaign_crash",
    "provision_delay",
    "endpoint_slow",
    "poison_task",
)

#: Workflow configurations (FaaS fabric + ProxyStore backend).
CONFIGS: tuple[str, ...] = ("faas-file", "faas-redis", "faas-globus")

#: Counters surfaced in every cell report.
_REPORT_COUNTERS = (
    "client.retries",
    "client.submit_retries",
    "store.retries",
    "transfer.retries",
    "endpoint.dispatch_errors",
    "endpoint.crashes",
    "faas.lease_expiries",
    "faas.failovers",
    "faas.duplicate_results",
    "bus.delivered",
    "bus.redelivered",
    "bus.duplicates_dropped",
    "bus.fallback_engaged",
    "endpoint.polls",
    "endpoint.polls_empty",
    "endpoint.fallback_polls",
    "endpoint.fallback_polls_empty",
    "endpoint.doorbell_fetches_empty",
    "cloud.shard_outages",
    "cloud.shard_crashes",
    "cloud.batch_submits",
    "cloud.batch_crashes",
    "client.batch_splits",
    "client.serialize_skipped",
    "endpoint.uplink_batches",
    "durable.recoveries",
    "durable.replayed",
    "durable.releases",
    "durable.renotified",
    "client.killed",
    "client.attached",
    "client.throttled",
    "autoscale.provision_retries",
    "autoscale.provision_abandoned",
    "endpoint.gray_degraded",
    "endpoint.stale_results",
    "resilience.breaker_opens",
    "resilience.sheds",
    "resilience.steered",
    "resilience.quarantined",
    "resilience.poison_steered",
    "resilience.quarantine_refusals",
    "client.terminal_rejections",
)


def fault_specs(mode: str) -> tuple[FaultSpec, ...]:
    """The injection plan for one fault mode.

    Rates below 1.0 select a deterministic *subset* of event keys; the
    ``attempt: 0`` matches confine faults to first attempts so the retry
    budget always suffices and every cell is expected to pass.
    """
    if mode == "none":
        return ()
    if mode == "worker_exception":
        return (FaultSpec("worker.execute", mode, rate=0.6, match={"attempt": 0}),)
    if mode == "endpoint_crash":
        return (
            FaultSpec(
                "endpoint.crash", mode, rate=1.0, match={"endpoint": "ep-a"}, max_fires=1
            ),
        )
    if mode == "payload_cap":
        return (FaultSpec("cloud.submit", mode, rate=0.6, match={"attempt": 0}),)
    if mode == "store_corruption":
        return (FaultSpec("store.get", mode, rate=0.6, match={"attempt": 0}),)
    if mode == "cloud_store_error":
        return (FaultSpec("cloud.store.read", mode, rate=0.4),)
    if mode == "transfer_fault":
        return (FaultSpec("transfer.attempt", mode, rate=0.6, match={"attempt": 0}),)
    if mode == "notification_loss":
        # First-delivery doorbells vanish in flight; the bus redelivers after
        # backoff, so tasks complete with zero client-side retries.
        return (FaultSpec("bus.deliver", mode, rate=0.6, match={"attempt": 0}),)
    if mode == "notification_duplicate":
        # Doorbells arrive twice; consumer-side sequence dedup drops the copy.
        return (FaultSpec("bus.duplicate", mode, rate=0.6, match={"attempt": 0}),)
    if mode == "subscription_drop":
        # Subscriptions are force-lapsed at publish time; the subscriber must
        # notice, engage the poll fallback, and resubscribe (replay from ack).
        return (FaultSpec("bus.subscription.drop", mode, rate=0.5),)
    if mode == "shard_outage":
        # The owning shard restarts at admission.  Keyed on the submission's
        # content digest (attempt suffix stripped at the hook site), with
        # only the first check of each key eligible, so the client's
        # throttle-retry loop can never re-fire the fault.
        return (FaultSpec("cloud.shard.drop", mode, rate=0.5, max_fires=2),)
    if mode == "shard_crash":
        # The owning shard's in-memory state is *destroyed* at admission and
        # rebuilt from its write-ahead journal before the submit is
        # throttled back to the client.  Same keying discipline as
        # shard_outage so throttle retries can never re-fire it.
        return (FaultSpec("cloud.shard.crash", mode, rate=0.5, max_fires=2),)
    if mode == "batch_flush_loss":
        # The shard dies in the window between accepting a coalesced batch
        # (ONE WAL fsync for the whole batch) and its per-task queue
        # fan-out being observed by anyone.  Keyed on the digest of the
        # batch's attempt-stripped member keys, so identical runs crash on
        # the identical batch; replay must re-admit every member exactly
        # once with zero client-side retries.
        return (FaultSpec("cloud.batch.flush", mode, rate=1.0, max_fires=1),)
    if mode == "campaign_crash":
        # The campaign process itself dies once, right after submitting its
        # batch; a successor sharing the client id attaches to the in-flight
        # task ids and drains results without recomputing anything.
        return (FaultSpec("campaign.crash", mode, rate=1.0, max_fires=1),)
    if mode == "endpoint_slow":
        # Gray failure: ep-a comes up degraded — alive, heartbeating, but
        # 10x slower per task.  No lease ever lapses, so only the health
        # tracker's latency signal (and its breaker) can rescue the backlog.
        return (
            FaultSpec(
                "endpoint.slow",
                mode,
                rate=1.0,
                match={"endpoint": "ep-a"},
                delay=10.0,
                max_fires=1,
            ),
        )
    if mode == "poison_task":
        # A deterministic subset of task payloads fails on *every* endpoint
        # and every attempt (keyed on the attempt-stripped content digest,
        # with enough occurrences that no retry ever slips through).  The
        # quarantine quorum must catch them after two distinct endpoints.
        return (
            FaultSpec("worker.poison", mode, rate=0.5, occurrences=tuple(range(32))),
        )
    if mode == "provision_delay":
        # Scale-up requests stall for a nominal second and then fail; the
        # elastic pool must retry with backoff and no queued task may be
        # lost to the missing capacity.  Keyed per (pool, worker index).
        return (
            FaultSpec(
                "scheduler.provision", mode, rate=0.5, delay=1.0, match={"attempt": 0}
            ),
        )
    raise ValueError(f"unknown fault mode {mode!r}; known: {sorted(FAULT_MODES)}")


def chaos_task(index: int, store_name: str, key: str) -> int:
    """The campaign workload body: resolve a stored object, compute on it.

    Module-level so it pickles by reference; unique ``index`` per task keeps
    argument and result payloads content-distinct, which keeps content-
    derived fault keys distinct too.
    """
    values = get_store(store_name).get(key)
    return index + sum(values)


@dataclass
class CellResult:
    """Outcome of one (fault mode, config) campaign cell."""

    mode: str
    config: str
    tasks: int
    fires: int
    counters: dict[str, int] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)
    digest: str = ""
    duration_nominal_s: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures


@dataclass
class _Rig:
    """Per-config wiring: the store plus where each actor runs."""

    store: Store
    client_site: object
    agent_site: object
    worker_site: object
    cleanups: list


def _campaign_constants() -> PaperConstants:
    """Paper constants tuned for campaign turnaround: fast heartbeats so
    failover resolves in a few nominal seconds, light Globus latencies so
    the globus config's cells are not dominated by transfer floors."""
    return PaperConstants(
        endpoint_heartbeat_period=1.0,
        endpoint_lease_ttl=3.0,
        globus_request_latency=UniformLatency(0.05, 0.06),
        globus_transfer_base=UniformLatency(0.2, 0.3),
        globus_poll_interval=0.05,
    )


def _build_rig(config: str, testbed: Testbed, policy: RetryPolicy) -> _Rig:
    if config == "faas-file":
        store = Store(
            "chaos-store",
            FileConnector(testbed.mounts.volume("theta-lustre"), "chaos"),
            retry_policy=policy,
        )
        return _Rig(
            store=store,
            client_site=testbed.theta_login,
            agent_site=testbed.theta_login,
            worker_site=testbed.theta_compute,
            cleanups=[store.close],
        )
    if config == "faas-redis":
        server = KVServer(testbed.theta_login, name="chaos-redis")
        store = Store(
            "chaos-store",
            RedisConnector(server, testbed.network),
            retry_policy=policy,
        )
        return _Rig(
            store=store,
            client_site=testbed.theta_login,
            agent_site=testbed.theta_login,
            worker_site=testbed.theta_compute,
            cleanups=[store.close],
        )
    if config == "faas-globus":
        service = TransferService(
            testbed.globus_cloud, testbed.network, testbed.constants
        ).start()
        ep_theta = TransferEndpoint(
            "chaos-gep-theta", testbed.theta_login, testbed.mounts.volume("theta-lustre")
        )
        ep_venti = TransferEndpoint(
            "chaos-gep-venti", testbed.venti, testbed.mounts.volume("venti-local")
        )
        service.register_endpoint(ep_theta)
        service.register_endpoint(ep_venti)
        transfer_client = TransferClient(service, "chaos-user", retry_policy=policy)
        store = Store(
            "chaos-store",
            GlobusConnector(
                transfer_client,
                {testbed.theta_login.name: ep_theta, testbed.venti.name: ep_venti},
                "chaos-globus",
            ),
            retry_policy=policy,
        )
        return _Rig(
            store=store,
            client_site=testbed.theta_login,
            agent_site=testbed.venti,
            worker_site=testbed.venti,
            cleanups=[store.close, service.stop],
        )
    raise ValueError(f"unknown config {config!r}; known: {sorted(CONFIGS)}")


def _ledger_digest(injector: FaultInjector, outcomes: list) -> str:
    """Hash the *logical* ledger: which faults fired (by content key) and
    what every task produced.  Timestamps and run-local ids are excluded —
    they vary with thread scheduling; this must not."""
    events = sorted((e.hook, e.mode, e.key) for e in injector.fires())
    blob = repr((events, outcomes)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _reconcile(
    mode: str,
    fires: int,
    counters: dict[str, int],
    failures: list[str],
    *,
    tasks: int = 0,
) -> None:
    """Check that recovery counters add up against injected fault counts."""

    def expect(counter: str, expected: int) -> None:
        got = counters.get(counter, 0)
        if got != expected:
            failures.append(
                f"reconciliation: {counter} is {got}, expected {expected} "
                f"(injector fired {fires})"
            )

    if mode in ("none",):
        expect("client.retries", 0)
    elif mode == "worker_exception":
        expect("client.retries", fires)
    elif mode == "payload_cap":
        expect("client.submit_retries", fires)
    elif mode == "store_corruption":
        expect("store.retries", fires)
    elif mode == "cloud_store_error":
        # A fired read surfaces either as a dispatch error (args) or a
        # download error (result); both recover via one client retry.
        expect("client.retries", fires)
    elif mode == "transfer_fault":
        expect("transfer.retries", fires)
    elif mode == "endpoint_crash":
        expect("endpoint.crashes", fires)
        if fires != 1:
            failures.append(f"endpoint_crash cell expected exactly 1 fire, got {fires}")
        if counters.get("faas.lease_expiries", 0) < 1:
            failures.append("endpoint_crash: the dead endpoint's lease never expired")
        if counters.get("faas.failovers", 0) < 1:
            failures.append("endpoint_crash: no task failed over to the survivor")
        # Failover must be invisible to the client: no client-side retries.
        expect("client.retries", fires - 1)
    elif mode == "notification_loss":
        # Every lost doorbell must come back via bus redelivery (never via
        # client retries — the task queues are untouched by bus loss).
        if fires < 1:
            failures.append("notification_loss cell injected no faults")
        if counters.get("bus.redelivered", 0) < fires:
            failures.append(
                f"notification_loss: bus.redelivered is "
                f"{counters.get('bus.redelivered', 0)}, expected >= {fires}"
            )
        expect("client.retries", 0)
    elif mode == "notification_duplicate":
        if fires < 1:
            failures.append("notification_duplicate cell injected no faults")
        if counters.get("bus.duplicates_dropped", 0) < fires:
            failures.append(
                f"notification_duplicate: bus.duplicates_dropped is "
                f"{counters.get('bus.duplicates_dropped', 0)}, expected >= {fires}"
            )
        expect("client.retries", 0)
    elif mode == "subscription_drop":
        if fires < 1:
            failures.append("subscription_drop cell injected no faults")
        engaged = counters.get("bus.fallback_engaged", 0)
        if not 1 <= engaged <= fires:
            failures.append(
                f"subscription_drop: bus.fallback_engaged is {engaged}, "
                f"expected within [1, {fires}]"
            )
        expect("client.retries", 0)
    elif mode == "shard_outage":
        # A shard restart is recovered entirely inside the submit path: the
        # client backs off on the throttle (at least once per fire) and the
        # task-level retry machinery is never engaged.
        if fires < 1:
            failures.append("shard_outage cell injected no faults")
        expect("cloud.shard_outages", fires)
        if counters.get("client.throttled", 0) < fires:
            failures.append(
                f"shard_outage: client.throttled is "
                f"{counters.get('client.throttled', 0)}, expected >= {fires}"
            )
        expect("client.retries", 0)
    elif mode == "shard_crash":
        # The destroyed shard is rebuilt from its journal before the submit
        # is throttled back — recovery is invisible above the submit path:
        # no task retries, no lost results.
        if fires < 1:
            failures.append("shard_crash cell injected no faults")
        expect("cloud.shard_crashes", fires)
        expect("durable.recoveries", fires)
        if counters.get("client.throttled", 0) < fires:
            failures.append(
                f"shard_crash: client.throttled is "
                f"{counters.get('client.throttled', 0)}, expected >= {fires}"
            )
        expect("client.retries", 0)
    elif mode == "batch_flush_loss":
        # The shard died after the batch's single WAL fsync but before any
        # task id escaped: replay must fan the batch record back out into
        # every member task, invisibly — no client retries, no splits.
        if fires != 1:
            failures.append(
                f"batch_flush_loss cell expected exactly 1 fire, got {fires}"
            )
        expect("cloud.batch_crashes", fires)
        expect("durable.recoveries", fires)
        if counters.get("cloud.batch_submits", 0) < 1:
            failures.append("batch_flush_loss: no coalesced batch was submitted")
        expect("client.batch_splits", 0)
        expect("client.retries", 0)
    elif mode == "campaign_crash":
        # The dead process's successor must adopt every in-flight task and
        # drain its results from the ledger/feed — never recompute.
        if fires != 1:
            failures.append(f"campaign_crash cell expected exactly 1 fire, got {fires}")
        expect("client.killed", 1)
        expect("client.attached", tasks)
        expect("client.retries", 0)
    elif mode == "provision_delay":
        # Stalled scale-ups are retried by the pool itself: one retry per
        # fire (the attempt-0 match guarantees the second try lands), no
        # worker is abandoned, and the task layer never notices.
        if fires < 1:
            failures.append("provision_delay cell injected no faults")
        expect("autoscale.provision_retries", fires)
        expect("autoscale.provision_abandoned", 0)
        expect("client.retries", 0)
    elif mode == "endpoint_slow":
        # One injected gray degradation must open the breaker exactly once
        # and shed at least one task to the healthy peer — all invisible to
        # the client (the shed is a cloud-side requeue, not a retry).
        if fires != 1:
            failures.append(f"endpoint_slow cell expected exactly 1 fire, got {fires}")
        expect("endpoint.gray_degraded", 1)
        expect("resilience.breaker_opens", fires)
        sheds = counters.get("resilience.sheds", 0)
        if not 1 <= sheds <= tasks:
            failures.append(
                f"endpoint_slow: resilience.sheds is {sheds}, "
                f"expected within [1, {tasks}]"
            )
        expect("client.retries", 0)
    elif mode == "poison_task":
        # Every poisoned payload fires exactly twice (once per distinct
        # endpoint, the quarantine quorum), is steered off its striked
        # endpoint once, burns exactly two client retries, and then has its
        # resubmission refused terminally.
        poisoned = counters.get("resilience.quarantined", 0)
        if poisoned < 1:
            failures.append("poison_task cell quarantined nothing")
        if fires != 2 * poisoned:
            failures.append(
                f"poison_task: injector fired {fires} times for {poisoned} "
                f"quarantined payloads, expected exactly {2 * poisoned}"
            )
        expect("resilience.poison_steered", poisoned)
        expect("resilience.quarantine_refusals", poisoned)
        expect("client.terminal_rejections", poisoned)
        expect("client.retries", 2 * poisoned)


def run_cell(
    mode: str,
    config: str,
    *,
    seed: int = 0,
    n_tasks: int = 6,
    use_bus: bool = True,
) -> CellResult:
    """Run one campaign cell and audit its invariants.

    Invariant violations are collected into ``CellResult.failures`` rather
    than raised, so a sweep reports every broken cell instead of dying on
    the first one.  ``use_bus=False`` runs the cell polling-only — the
    baseline the bus's idle-poll reduction is measured against.
    """
    failures: list[str] = []
    tracer = Tracer()
    metrics = MetricsRegistry()
    injector = FaultInjector(FaultPlan.build(seed, fault_specs(mode)))
    set_tracer(tracer)
    set_metrics(metrics)
    set_injector(injector)

    policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0)
    constants = _campaign_constants()
    testbed = build_paper_testbed(seed=seed, constants=constants)
    clock = get_clock()
    started = clock.now()

    auth = AuthServer()
    identity = auth.register_identity("chaos-user", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    if mode == "shard_outage":
        # This mode exercises the sharded control plane: the hook fires at
        # the router's admission tier, and recovery must keep the shard's
        # durable queues intact.
        from repro.tenancy import CloudRouter

        cloud = CloudRouter(
            testbed.faas_cloud, testbed.network, auth, constants, n_shards=2
        )
    elif mode in ("shard_crash", "batch_flush_loss"):
        # The harder variants: the shard's in-memory state is *destroyed*,
        # so every shard journals to a write-ahead log and recovery is a
        # full snapshot + log replay.  ``batch_flush_loss`` crashes inside
        # the coalesced-batch admission window instead of per submit.
        from repro.durable import FileJournalBackend, Journal
        from repro.net.fs import FileSystem
        from repro.tenancy import CloudRouter

        wal = FileSystem("chaos-wal", op_latency=2e-3)
        cloud = CloudRouter(
            testbed.faas_cloud,
            testbed.network,
            auth,
            constants,
            n_shards=2,
            journal_factory=lambda shard_id: Journal(
                FileJournalBackend(wal, shard_id), name=shard_id
            ),
        )
    elif mode == "endpoint_slow":
        # Health-tracked cloud: an explicit 1 s latency baseline (the
        # healthy task time) makes the breaker trip deterministic — the
        # gray endpoint's first 10 s result scores 0.3 < 0.5 and opens the
        # breaker exactly once (open_duration is effectively forever).
        from repro.resilience import EndpointHealthTracker, HealthPolicy

        cloud = FaasCloud(
            testbed.faas_cloud,
            testbed.network,
            auth,
            constants,
            health=EndpointHealthTracker(
                HealthPolicy(
                    latency_baseline=1.0,
                    latency_threshold=3.0,
                    min_samples=1,
                    open_score=0.5,
                    open_duration=10_000.0,
                )
            ),
        )
    elif mode == "poison_task":
        # Poison-tracked cloud: two strikes on distinct endpoints move the
        # payload to the per-tenant dead-letter queue.
        from repro.resilience import PoisonPolicy, PoisonTracker

        cloud = FaasCloud(
            testbed.faas_cloud,
            testbed.network,
            auth,
            constants,
            poison=PoisonTracker(PoisonPolicy(quorum=2)),
        )
    else:
        cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, constants)
    rig = _build_rig(config, testbed, policy)
    if mode == "provision_delay":
        # Elastic pools so scale-up passes through the chaos-hooked
        # provisioning path; worker indices give deterministic fault keys.
        from repro.elastic import ElasticWorkerPool

        provision_retry = RetryPolicy(max_attempts=4, base_delay=0.2, max_delay=1.0)
        pool_a: WorkerPool = ElasticWorkerPool(
            rig.worker_site, 2, name="chaos-pool-a", provision_retry=provision_retry
        )
        pool_b: WorkerPool = ElasticWorkerPool(
            rig.worker_site, 2, name="chaos-pool-b", provision_retry=provision_retry
        )
    else:
        pool_a = WorkerPool(rig.worker_site, 2, name="chaos-pool-a")
        pool_b = WorkerPool(rig.worker_site, 2, name="chaos-pool-b")
    # batch_flush_loss exercises the whole batched hot path: coalesced
    # client submits, uplink batching at the endpoints.  Batch composition
    # must be deterministic for the digest, so flushes only happen on the
    # explicit drain below (the hold deadline is far beyond the cell).
    batching = mode == "batch_flush_loss"
    ep_a = FaasEndpoint(
        "ep-a", cloud, token, rig.agent_site, pool_a,
        failover_group="chaos-pair", poll_interval=0.25, use_bus=use_bus,
        uplink_batching=batching,
    ).start()
    ep_b = FaasEndpoint(
        "ep-b", cloud, token, rig.agent_site, pool_b,
        failover_group="chaos-pair", poll_interval=0.25, use_bus=use_bus,
        uplink_batching=batching,
    ).start()
    if batching:
        from repro.batch import BatchPolicy

        batch_policy = BatchPolicy(
            max_batch=64, max_bytes=1 << 30, flush_deadline=600.0, min_hold=600.0
        )
    else:
        batch_policy = None
    client = FaasClient(
        cloud, token, site=rig.client_site, retry_policy=policy, use_bus=use_bus,
        batch=batch_policy,
    )

    outcomes: list = []
    try:
        with at_site(rig.client_site):
            keys = []
            for index in range(n_tasks):
                key = f"{mode}-{index}"
                rig.store.put([index, index + 1], key=key)
                keys.append(key)
            # All tasks target ep-a; ep-b is the hot standby whose polls
            # drive lazy lease expiry (failover without client help).
            futures = [
                client.run(chaos_task, ep_a.endpoint_id, index, rig.store.name, key)
                for index, key in enumerate(keys)
            ]
            if batching:
                # One deterministic coalesced batch; the fault fires in the
                # window after its single WAL fsync.
                client.flush_batches()
            if mode == "campaign_crash":
                # The campaign process dies right after submitting its
                # batch: the client is killed (no goodbye to the bus, no
                # future cleanup) and a successor sharing its client_id
                # attaches to the in-flight task ids.  The funcX tier
                # remembers every task, so nothing is recomputed.
                spec = chaos_check("campaign.crash", f"cell|{config}|{seed}")
                if spec is not None:
                    client.kill()
                    client = FaasClient(
                        cloud,
                        token,
                        site=rig.client_site,
                        retry_policy=policy,
                        use_bus=use_bus,
                        client_id=client.client_id,
                    )
                    futures = [
                        client.attach(
                            future.task_id,  # type: ignore[attr-defined]
                            endpoint_id=ep_a.endpoint_id,
                        )
                        for future in futures
                    ]
        for index, future in enumerate(futures):
            try:
                outcomes.append(future.result(timeout=120))
            except TaskQuarantinedError:
                if mode == "poison_task":
                    # The *expected* terminal outcome for a poisoned
                    # payload: quarantined after the quorum, not lost.
                    outcomes.append("quarantined")
                else:
                    outcomes.append("error:TaskQuarantinedError")
                    failures.append(f"task {index} was quarantined unexpectedly")
            except Exception as exc:  # noqa: BLE001 - audited below
                outcomes.append(f"error:{type(exc).__name__}")
                failures.append(f"task {index} was lost to {exc!r}")
        expected = [index + (index + (index + 1)) for index in range(n_tasks)]
        if mode == "poison_task":
            # Membership of the poisoned subset is seed-derived, so accept
            # "quarantined" element-wise; the ledger digest (which covers
            # every outcome) pins the exact subset across runs.
            mismatched = [
                index
                for index, outcome in enumerate(outcomes)
                if outcome != "quarantined" and outcome != expected[index]
            ]
            if not failures and mismatched:
                failures.append(
                    f"wrong results at {mismatched}: {outcomes} vs {expected}"
                )
        elif not failures and outcomes != expected:
            failures.append(f"wrong results: {outcomes} != {expected}")
    finally:
        try:
            client.close()
            ep_a.stop()
            ep_b.stop()
        finally:
            for cleanup in rig.cleanups:
                cleanup()
            set_injector(None)
            set_tracer(None)
            set_metrics(None)
            clear_store_registry()

    # -- invariants ---------------------------------------------------------
    non_terminal = [
        record.task_id
        for record in cloud.task_records()
        if not record.status.terminal
    ]
    if non_terminal:
        failures.append(f"tasks never reached a terminal state: {non_terminal}")
    orphans = find_orphans(tracer.spans())
    if orphans:
        failures.append(
            f"{len(orphans)} orphan spans, e.g. "
            f"{orphans[0].name}@{orphans[0].trace_id}"
        )
    if mode == "poison_task":
        # The dead-letter queue is the ground truth the outcomes must match:
        # exactly the futures that raised TaskQuarantinedError are in it.
        dlq = len(cloud.deadletters())
        quarantined = sum(1 for outcome in outcomes if outcome == "quarantined")
        if dlq != quarantined:
            failures.append(
                f"poison_task: dead-letter queue holds {dlq} entries but "
                f"{quarantined} futures were quarantined"
            )
    counters = {
        name: int(metrics.counter_total(name)) for name in _REPORT_COUNTERS
    }
    fires = injector.fire_count()
    _reconcile(mode, fires, counters, failures, tasks=n_tasks)

    return CellResult(
        mode=mode,
        config=config,
        tasks=n_tasks,
        fires=fires,
        counters=counters,
        failures=failures,
        digest=_ledger_digest(injector, outcomes),
        duration_nominal_s=clock.now() - started,
    )


def run_campaign(
    modes: tuple[str, ...] = FAULT_MODES,
    configs: tuple[str, ...] = CONFIGS,
    *,
    seed: int = 0,
    n_tasks: int = 6,
    verify_determinism: bool = False,
) -> list[CellResult]:
    """Sweep the fault matrix; returns one :class:`CellResult` per cell.

    ``verify_determinism`` runs every cell twice and fails the cell if the
    two ledger digests differ — the end-to-end proof that fault injection
    is a function of the seed, not of thread scheduling.
    """
    results: list[CellResult] = []
    for config in configs:
        for mode in modes:
            result = run_cell(mode, config, seed=seed, n_tasks=n_tasks)
            if verify_determinism:
                rerun = run_cell(mode, config, seed=seed, n_tasks=n_tasks)
                if rerun.digest != result.digest:
                    result.failures.append(
                        f"nondeterministic ledger: {result.digest} vs "
                        f"{rerun.digest} across two runs of seed {seed}"
                    )
                result.failures.extend(
                    f"(rerun) {failure}" for failure in rerun.failures
                )
            results.append(result)
    return results


def render_results(results: list[CellResult]) -> str:
    """A fixed-width report table, one row per cell."""
    header = (
        f"{'config':<12} {'mode':<18} {'tasks':>5} {'fires':>5} "
        f"{'retries':>7} {'failovers':>9} {'digest':<16} verdict"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        retries = (
            r.counters.get("client.retries", 0)
            + r.counters.get("client.submit_retries", 0)
            + r.counters.get("store.retries", 0)
            + r.counters.get("transfer.retries", 0)
        )
        lines.append(
            f"{r.config:<12} {r.mode:<18} {r.tasks:>5} {r.fires:>5} "
            f"{retries:>7} {r.counters.get('faas.failovers', 0):>9} "
            f"{r.digest:<16} {'PASS' if r.passed else 'FAIL'}"
        )
        for failure in r.failures:
            lines.append(f"    ! {failure}")
    passed = sum(1 for r in results if r.passed)
    lines.append(f"{passed}/{len(results)} cells passed")
    return "\n".join(lines)
