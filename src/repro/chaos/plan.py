"""Deterministic fault injection: plans, the injector, and the hook API.

A :class:`FaultPlan` names the failures one campaign cell should suffer —
endpoint crashes mid-lease, worker exceptions, transfer failures, payload-cap
rejections, store read corruption — and a :class:`FaultInjector` decides, at
named hook points threaded through the fabric, whether a given event fires.

Decisions are **deterministic without a shared RNG**: firing is a pure
function of ``(plan seed, hook, fault mode, event key, occurrence index)``
via a stable hash, so thread scheduling cannot reorder random draws between
runs.  Hook sites key events by *content* (argument-payload digests, store
keys, endpoint names) rather than by run-local ids, which is what makes two
runs of the same seeded campaign inject the identical fault set.

Instrumented components call :func:`chaos_check` — a one-global-read no-op
when no injector is installed, the same zero-overhead contract as
``repro.observe``.  The hook site interprets the returned spec (raise the
right exception type, sleep ``spec.delay`` for stalls); the injector only
decides and records.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.chaos.policy import stable_unit_hash
from repro.observe import counter_inc

__all__ = [
    "HOOKS",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "set_injector",
    "get_injector",
    "chaos_enabled",
    "chaos_check",
    "attempt_from_key",
]

#: Every hook point wired into the fabric.  A spec naming any other hook is
#: rejected at plan construction, so typos fail fast instead of never firing.
HOOKS = frozenset(
    {
        "cloud.submit",  # FaasCloud.submit: payload-cap rejection
        "cloud.store.read",  # cloud payload store: read error / corruption
        "cloud.shard.drop",  # CloudRouter: owning shard restarts at admission
        "cloud.shard.crash",  # CloudRouter: shard state destroyed, journal replay
        "cloud.batch.flush",  # CloudRouter: crash between batch accept and fan-out
        "campaign.crash",  # campaign process dies; successor resumes by id
        "endpoint.crash",  # FaasEndpoint: process loss mid-lease
        "endpoint.slow",  # FaasEndpoint: gray degradation (slow-but-alive)
        "worker.execute",  # exception inside the function body
        "worker.poison",  # deterministic failure on every endpoint/attempt
        "store.get",  # ProxyStore backend read corruption
        "transfer.attempt",  # managed transfer failure / stall
        "bus.deliver",  # NotificationBus: envelope lost in flight
        "bus.duplicate",  # NotificationBus: envelope delivered twice
        "bus.subscription.drop",  # NotificationBus: forced disconnect at publish
        "scheduler.provision",  # ElasticWorkerPool: scale-up stalls then fails
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One kind of failure to inject at one hook point.

    ``rate`` selects event *keys* (hashed, not drawn), ``occurrences``
    restricts which repetition of a key fires (default: only the first,
    so a retried operation succeeds), ``match`` filters on hook context
    (e.g. ``{"attempt": 0}`` or ``{"endpoint": "ep-a"}``), ``delay`` makes
    the site stall for that many nominal seconds before failing, and
    ``max_fires`` caps the total number of injections.
    """

    hook: str
    mode: str
    rate: float = 1.0
    occurrences: tuple[int, ...] = (0,)
    match: Mapping[str, Any] | None = None
    delay: float = 0.0
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if self.hook not in HOOKS:
            raise ValueError(
                f"unknown chaos hook {self.hook!r}; known hooks: {sorted(HOOKS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be non-negative")


@dataclass(frozen=True)
class FaultEvent:
    """A fault that actually fired: where, what, and on which event key."""

    hook: str
    mode: str
    key: str  # "<base key>#<occurrence>"


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs active for one campaign cell."""

    seed: int
    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def build(cls, seed: int, specs: Iterable[FaultSpec]) -> "FaultPlan":
        return cls(seed=seed, specs=tuple(specs))


class FaultInjector:
    """Decides and records fault firings for one plan.

    Thread-safe.  Occurrence counters are per ``(hook, base key)``, so the
    n-th read of the *same payload* or the n-th retry of the *same logical
    operation* is distinguishable from its first try no matter which thread
    performs it.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # Specs are indexed by plan position: FaultSpec.match is a mapping,
        # so the spec itself is not hashable.
        self._by_hook: dict[str, list[tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(plan.specs):
            self._by_hook.setdefault(spec.hook, []).append((index, spec))
        self._occurrences: dict[tuple[str, str], int] = {}
        self._fires: list[FaultEvent] = []
        self._fires_per_spec: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- decision --------------------------------------------------------------
    def _selects(self, spec: FaultSpec, key: str) -> bool:
        u = stable_unit_hash(f"{self.plan.seed}|{spec.hook}|{spec.mode}|{key}")
        return u < spec.rate

    def check(self, hook: str, key: str, **ctx: Any) -> FaultSpec | None:
        """Record one event at ``hook`` for ``key``; return the spec that
        fires on it, or ``None``.  Every call advances the occurrence
        counter for ``(hook, key)`` whether or not anything fires."""
        with self._lock:
            occ = self._occurrences.get((hook, key), 0)
            self._occurrences[(hook, key)] = occ + 1
            for index, spec in self._by_hook.get(hook, ()):
                if occ not in spec.occurrences:
                    continue
                if spec.match and any(
                    ctx.get(name) != want for name, want in spec.match.items()
                ):
                    continue
                fired = self._fires_per_spec.get(index, 0)
                if spec.max_fires is not None and fired >= spec.max_fires:
                    continue
                if not self._selects(spec, key):
                    continue
                self._fires_per_spec[index] = fired + 1
                self._fires.append(FaultEvent(hook, spec.mode, f"{key}#{occ}"))
                counter_inc("chaos.faults_injected", hook=hook, mode=spec.mode)
                return spec
        return None

    # -- accounting ------------------------------------------------------------
    def fires(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._fires)

    def fire_count(self, *, hook: str | None = None, mode: str | None = None) -> int:
        with self._lock:
            return sum(
                1
                for event in self._fires
                if (hook is None or event.hook == hook)
                and (mode is None or event.mode == mode)
            )


# -- module-level API (the zero-overhead surface) ------------------------------

_injector: FaultInjector | None = None
_injector_lock = threading.Lock()


def set_injector(injector: FaultInjector | None) -> None:
    """Install (or remove, with ``None``) the process-wide injector."""
    global _injector
    with _injector_lock:
        _injector = injector


def get_injector() -> FaultInjector | None:
    return _injector


def chaos_enabled() -> bool:
    return _injector is not None


def chaos_check(hook: str, key: str, **ctx: Any) -> FaultSpec | None:
    """Ask the installed injector whether a fault fires on this event; a
    one-global-read ``None`` when chaos is off."""
    injector = _injector
    if injector is None:
        return None
    return injector.check(hook, key, **ctx)


def attempt_from_key(key: str | None) -> int:
    """Parse the attempt number out of a ``<digest>#a<N>`` chaos key.

    Retry layers append ``#a<N>`` to content-derived keys so each attempt
    is a distinct injection event; hook sites that only see the composed
    key (the worker, the cloud) recover ``N`` for spec matching."""
    if not key:
        return 0
    base, sep, tail = key.rpartition("#a")
    if not sep:
        return 0
    try:
        return int(tail)
    except ValueError:
        return 0
