"""Retry policies shared by every recovery layer in the fabric.

The FaaS client, the transfer client, and the ProxyStore ``Store`` all need
the same thing when a fault fires: a bounded number of attempts with
exponentially growing, jittered delays between them.  :class:`RetryPolicy`
is that one shared vocabulary, so a campaign can say "4 attempts, 250 ms
base backoff" once and hand the same object to every layer.

Jitter is *deterministic*: instead of drawing from an RNG (whose call order
would depend on thread scheduling), the jitter factor is a stable hash of
``(key, attempt)``.  Two runs of the same campaign back off by identical
amounts, which is what makes chaos campaigns reproducible end to end.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


def stable_unit_hash(text: str) -> float:
    """Map ``text`` to a float in [0, 1) that is stable across processes
    (unlike ``hash()``, which is salted per interpreter)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a hard attempt cap.

    Parameters
    ----------
    max_attempts:
        Total tries including the first one; ``1`` disables retrying.
    base_delay:
        Nominal seconds before the first retry.
    multiplier:
        Backoff growth factor per retry.
    max_delay:
        Ceiling on any single delay, in nominal seconds.
    jitter:
        Fractional spread around the computed delay (``0.25`` means the
        delay lands in ``[0.75x, 1.25x]``), derived from a stable hash so
        identical ``(key, attempt)`` pairs always jitter identically.
    max_elapsed:
        Wall-clock (nominal-seconds) retry budget alongside the attempt
        cap: once the time already spent on an operation reaches this,
        no further retry is granted even if attempts remain.  ``None``
        (the default) disables the budget.  Recovery-time retries —
        a client backing off while a crashed shard replays its journal —
        honor this so a slow recovery cannot retry forever.
    """

    max_attempts: int = 4
    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.25
    max_elapsed: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_elapsed is not None and self.max_elapsed < 0:
            raise ValueError(f"max_elapsed must be >= 0, got {self.max_elapsed}")

    def retries_left(self, attempt: int, elapsed: float = 0.0) -> bool:
        """True if attempt number ``attempt`` (0-based) may be followed by
        another one.  ``elapsed`` is the nominal time already spent on the
        operation; when :attr:`max_elapsed` is set, the budget caps retries
        independently of the attempt count."""
        if attempt + 1 >= self.max_attempts:
            return False
        if self.max_elapsed is not None and elapsed >= self.max_elapsed:
            return False
        return True

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Nominal seconds to wait after failed attempt ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        u = stable_unit_hash(f"retry|{key}|{attempt}")
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * u)
