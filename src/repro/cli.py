"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``testbed``
    Print the simulated §V-A testbed: sites, policies, links, volumes.
``moldesign``
    Run a molecular design campaign (§III-A) and print its outcome.
``finetune``
    Run a surrogate fine-tuning campaign (§III-B) and print its outcome.
``compare``
    Run the same synthetic task batch through all three workflow
    configurations and print the latency decomposition side by side.
``trace``
    Reconstruct a recorded campaign from a span JSONL file (written with
    ``--trace-out``): per-component medians, orphan check, and the critical
    path of a chosen task.
``chaos``
    Sweep the fault-injection matrix (worker exceptions, endpoint crashes
    mid-lease, payload-cap rejections, store corruption, transfer faults,
    shard outages) over the workflow configurations and audit the
    no-lost-tasks, no-orphan-spans, and retry-reconciliation invariants
    per cell.
``resume``
    Kill a molecular design campaign mid-flight, resume it from its
    write-ahead decision journal, and audit that nothing was recomputed;
    ``--verify-determinism`` also runs an uninterrupted control and
    requires bit-identical ledger digests.
``tenants``
    Run a short multi-tenant storm on a sharded cloud and print the
    per-tenant usage/quota table (weights, rate limits, throttles).
``pools``
    Run a short bursty workload against autoscaled elastic endpoints and
    print the per-pool worker/decision table (grow, shrink, scale-to-zero).
``deadletter``
    Run a short storm with deterministically poisoned payloads against a
    quarantine-enabled cloud, then ``list``, ``retry``, or ``drop`` the
    per-tenant dead-letter queue the quorum produced.
"""

from __future__ import annotations

import argparse
import contextlib
import statistics
import sys

from repro.apps import WORKFLOW_CONFIGS
from repro.net.clock import reset_clock
from repro.net.defaults import build_paper_testbed

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workflow", choices=WORKFLOW_CONFIGS, default="funcx+globus",
        help="which §V-B workflow stack to build",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--time-scale", type=float, default=0.004,
        help="wall seconds per nominal second (smaller = faster run)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="record every span and metric of the run; spans are written "
        "as JSONL to PATH (inspect with `python -m repro.cli trace PATH`)",
    )


@contextlib.contextmanager
def _observability(trace_out: str | None):
    """Install a tracer + metrics registry for one campaign run.

    On exit the spans go to ``trace_out`` as JSONL and a console summary of
    both spans and metrics is printed.  A no-op when ``trace_out`` is unset
    (the zero-overhead default)."""
    if not trace_out:
        yield
        return
    from repro import observe

    tracer = observe.Tracer()
    registry = observe.MetricsRegistry()
    observe.set_tracer(tracer)
    observe.set_metrics(registry)
    try:
        yield
    finally:
        observe.set_tracer(None)
        observe.set_metrics(None)
        spans = tracer.spans()
        count = observe.write_spans_jsonl(spans, trace_out)
        print(f"\nwrote {count} spans to {trace_out}")
        if spans:
            print(observe.render_span_summary(spans))
        print(registry.render())


def cmd_testbed(args: argparse.Namespace) -> int:
    testbed = build_paper_testbed(seed=args.seed)
    print("sites:")
    for site in testbed.network.sites:
        fs = site.fs_group or "-"
        trust = site.trust_group or "-"
        inbound = "inbound-ok" if site.allows_inbound else "outbound-only"
        print(f"  {site.name:<16} fs={fs:<14} trust={trust:<10} {inbound}")
    print("\nlink latencies (typical one-way) and bandwidths:")
    names = [s.name for s in testbed.network.sites]
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            try:
                link = testbed.network.link_between(a, b)
            except Exception:
                continue
            print(
                f"  {a:<16} <-> {b:<16} "
                f"{link.latency.typical * 1000:7.2f} ms   "
                f"{link.bandwidth / 1e9:5.2f} GB/s"
            )
    print("\nconnection policy (can X dial Y?):")
    for a in ("theta-compute", "venti", "uchicago-login"):
        for b in ("theta-login", "faas-cloud"):
            ok = testbed.network.can_connect(a, b)
            print(f"  {a:<16} -> {b:<12} {'yes' if ok else 'NO (needs tunnel)'}")
    return 0


def cmd_moldesign(args: argparse.Namespace) -> int:
    from repro.apps.moldesign import MolDesignConfig, run_moldesign_campaign

    reset_clock(args.time_scale)
    config = MolDesignConfig(
        n_molecules=args.molecules,
        max_simulations=args.simulations,
        n_initial=min(48, max(args.simulations // 3, 4)),
    )
    with _observability(args.trace_out):
        outcome = run_moldesign_campaign(
            args.workflow, config, seed=args.seed, join_timeout=args.timeout
        )
    print(
        f"{args.workflow}: found {outcome.n_found}/{outcome.n_simulated} "
        f"above IP {outcome.threshold:.2f} "
        f"({outcome.n_failures} task failures)"
    )
    if outcome.ml_makespans:
        print(
            f"ML makespan median: "
            f"{statistics.median(outcome.ml_makespans):.0f}s "
            f"({len(outcome.ml_makespans)} updates)"
        )
    if outcome.cpu_idle_gaps:
        print(
            f"CPU idle median: "
            f"{1000 * statistics.median(outcome.cpu_idle_gaps):.0f} ms, "
            f"utilization {100 * outcome.cpu_utilization:.1f}%"
        )
    return 0


def cmd_finetune(args: argparse.Namespace) -> int:
    from repro.apps.finetuning import FineTuneConfig, run_finetuning_campaign

    reset_clock(args.time_scale)
    config = FineTuneConfig(
        n_pretrain=args.pretrain, target_new_structures=args.structures
    )
    with _observability(args.trace_out):
        outcome = run_finetuning_campaign(
            args.workflow, config, seed=args.seed, join_timeout=args.timeout
        )
    print(
        f"{args.workflow}: +{outcome.n_new_structures} DFT structures; "
        f"force RMSD {outcome.rmsd_before:.3f} -> {outcome.rmsd_after:.3f}; "
        f"energy RMSE {outcome.energy_rmse_before:.3f} -> "
        f"{outcome.energy_rmse_after:.3f}"
    )
    return 0


def _crunch(data):
    """10 nominal seconds of compute; result as large as the input.

    Module-level so that every fabric (including FuncX's registry, which
    pickles function bodies) can ship it.
    """
    from repro.net.clock import get_clock
    from repro.serialize import Blob

    get_clock().sleep(10.0)
    return Blob(data.nbytes, tag="out")


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.apps import AppMethod, TopicPolicy, build_workflow
    from repro.net.context import at_site
    from repro.serialize import Blob

    crunch = _crunch
    payload = int(args.payload_mb * 1e6)
    print(
        f"{args.tasks} tasks x {args.payload_mb:.1f} MB on the GPU resource:\n"
    )
    print(f"{'configuration':<14} {'lifetime':>9} {'overhead':>9}")
    stack = contextlib.ExitStack()
    stack.enter_context(_observability(args.trace_out))
    for config in WORKFLOW_CONFIGS:
        reset_clock(args.time_scale)
        testbed = build_paper_testbed(seed=args.seed)
        handle = build_workflow(
            config,
            testbed,
            [AppMethod(crunch, resource="gpu", topic="work")],
            {"work": TopicPolicy(locality="cross", threshold=10_000)},
            n_cpu_workers=1,
            n_gpu_workers=4,
        )
        lifetimes, overheads = [], []
        with handle, at_site(testbed.theta_login):
            for index in range(args.tasks):
                handle.queues.send_request(
                    "_crunch", args=(Blob(payload, tag=str(index)),), topic="work"
                )
            for _ in range(args.tasks):
                result = handle.queues.get_result("work", timeout=600)
                if result is None or not result.success:
                    print(f"{config:<14} task failed: {result and result.error}")
                    break
                result.access_value()
                lifetimes.append(result.task_lifetime)
                overheads.append(result.overhead)
        if lifetimes:
            print(
                f"{config:<14} {statistics.median(lifetimes):>8.2f}s "
                f"{statistics.median(overheads):>8.2f}s"
            )
    stack.close()
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.campaign import (
        CONFIGS,
        FAULT_MODES,
        render_results,
        run_campaign,
    )

    modes = tuple(args.modes) if args.modes else FAULT_MODES
    configs = tuple(args.configs) if args.configs else CONFIGS
    unknown_modes = [m for m in modes if m not in FAULT_MODES]
    if unknown_modes:
        print(f"unknown fault mode(s) {unknown_modes}; known: {sorted(FAULT_MODES)}")
        return 1
    unknown_configs = [c for c in configs if c not in CONFIGS]
    if unknown_configs:
        print(f"unknown config(s) {unknown_configs}; known: {sorted(CONFIGS)}")
        return 1
    reset_clock(args.time_scale)
    print(
        f"chaos campaign: {len(modes)} fault modes x {len(configs)} configs, "
        f"{args.tasks} tasks/cell, seed {args.seed}"
        + (", determinism verified (each cell runs twice)"
           if args.verify_determinism else "")
    )
    results = run_campaign(
        modes,
        configs,
        seed=args.seed,
        n_tasks=args.tasks,
        verify_determinism=args.verify_determinism,
    )
    print(render_results(results))
    return 0 if all(result.passed for result in results) else 1


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.apps.moldesign import MolDesignConfig
    from repro.durable import run_resumable_moldesign

    reset_clock(args.time_scale)
    config = MolDesignConfig(
        n_molecules=args.molecules,
        n_initial=min(8, max(args.simulations // 3, 2)),
        max_simulations=args.simulations,
        retrain_after=10_000,  # determinism regime: see repro.durable.resume
        sim_duration=4.0,
    )
    print(
        f"{args.workflow}: killing the campaign after {args.crash_after} of "
        f"{args.simulations} results, then resuming from the journal"
        + (" (uninterrupted control run follows)" if args.verify_determinism else "")
    )
    report = run_resumable_moldesign(
        args.workflow,
        config,
        seed=args.seed,
        crash_after_results=args.crash_after,
        verify_determinism=args.verify_determinism,
        join_timeout=args.timeout,
    )
    print(
        f"crashed run consumed {report.crashed_simulations} results; "
        f"resumed run simulated {report.resumed_simulations} more; "
        f"final ledger: {report.n_simulated} molecules, "
        f"{report.n_found} above IP {report.threshold:.2f}"
    )
    print(f"resumed ledger digest:      {report.digest}")
    if args.verify_determinism:
        print(f"uninterrupted run's digest: {report.uninterrupted_digest}")
        print(
            "digests MATCH — resume is bit-deterministic"
            if report.deterministic
            else "digests DIFFER — resume diverged from the uninterrupted run"
        )
    recomputed_nothing = report.resumed_simulations < args.simulations
    if not recomputed_nothing:
        print("FAIL: the resumed run recomputed the full budget")
    return 0 if (report.deterministic and recomputed_nothing) else 1


def _noop_task(index):
    """Module-level so the FuncX-like registry can pickle it."""
    return index


def cmd_tenants(args: argparse.Namespace) -> int:
    from repro.exceptions import ThrottledError
    from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasEndpoint
    from repro.net.context import at_site
    from repro.resources import WorkerPool
    from repro.tenancy import (
        CloudRouter,
        TenantQuota,
        render_tenant_table,
        tenant_scope,
    )

    reset_clock(args.time_scale)
    testbed = build_paper_testbed(seed=args.seed)
    auth = AuthServer()
    identity = auth.register_identity("operator", "anl")
    router = CloudRouter(
        testbed.faas_cloud,
        testbed.network,
        auth,
        testbed.constants,
        n_shards=args.shards,
    )
    # Three representative tenants: a heavyweight campaign, a rate-limited
    # one, and one with a small in-flight quota that will throttle.
    router.create_tenant("moldesign", weight=3)
    router.create_tenant("finetune", rate=20.0)
    router.create_tenant("guest", quota=TenantQuota(max_in_flight=4))
    endpoint_token = auth.issue_token(identity, {SCOPE_COMPUTE})
    pool = WorkerPool(testbed.theta_compute, 4, name="tenants-pool")
    endpoint = FaasEndpoint(
        "theta", router, endpoint_token, testbed.theta_login, pool
    ).start()
    clients = {
        name: FaasClient(
            router,
            auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope(name)}),
            site=testbed.theta_login,
            tenant=name,
        )
        for name in ("moldesign", "finetune", "guest")
    }

    futures = []
    try:
        with at_site(testbed.theta_login):
            for index in range(args.tasks):
                for client in clients.values():
                    try:
                        futures.append(
                            client.run(_noop_task, endpoint.endpoint_id, index)
                        )
                    except ThrottledError:
                        pass  # budget exhausted even after backoff: skip
        done = sum(1 for f in futures if f.result(timeout=120) is not None)
    finally:
        for client in clients.values():
            client.close()
        endpoint.stop()
    print(
        f"{done}/{len(futures)} tasks completed on {args.shards} shard(s), "
        f"{len(clients)} tenants\n"
    )
    print(render_tenant_table(router.registry))
    return 0


def cmd_pools(args: argparse.Namespace) -> int:
    from repro.elastic import AutoscalePolicy, Autoscaler, ElasticWorkerPool
    from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
    from repro.net.context import at_site

    reset_clock(args.time_scale)
    testbed = build_paper_testbed(seed=args.seed)
    auth = AuthServer()
    identity = auth.register_identity("operator", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    policy = AutoscalePolicy(
        min_workers=0,
        max_workers=args.max_workers,
        target_tasks_per_worker=1.0,
        interval=1.0,
        cooldown=1.0,
        idle_grace=4.0,
        zero_grace=8.0,
    )
    pools = {
        "cpu": ElasticWorkerPool(testbed.theta_compute, 0, name="pools-cpu"),
        "gpu": ElasticWorkerPool(testbed.venti, 0, name="pools-gpu"),
    }
    sites = {"cpu": testbed.theta_login, "gpu": testbed.venti}
    endpoints = {
        name: FaasEndpoint(name, cloud, token, sites[name], pool).start()
        for name, pool in pools.items()
    }
    autoscalers = [
        Autoscaler(endpoint, policy=policy).start()
        for endpoint in endpoints.values()
    ]
    client = FaasClient(cloud, token, site=testbed.theta_login)
    from repro.net.clock import get_clock

    clock = get_clock()
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(_noop_task, endpoints[name].endpoint_id, index)
                for index in range(args.tasks)
                for name in endpoints
            ]
        done = sum(1 for f in futures if f.result(timeout=120) is not None)
        clock.sleep(2.0)  # let the autoscalers observe the drained queues
    finally:
        client.close()
        for scaler in autoscalers:
            scaler.stop()
        for endpoint in endpoints.values():
            endpoint.stop()
    from repro.elastic import render_pool_table

    print(f"{done}/{len(futures)} tasks completed on scale-from-zero pools\n")
    print(render_pool_table(autoscalers))
    return 0


def _render_deadletters(entries) -> str:
    """Fixed-width dead-letter table, one row per quarantined payload."""
    if not entries:
        return "dead-letter queue is empty"
    header = (
        f"{'tenant':<10} {'fingerprint':<26} {'task':<18} "
        f"{'struck endpoints':<28} error"
    )
    lines = [header, "-" * len(header)]
    for entry in entries:
        lines.append(
            f"{entry.tenant:<10} {entry.fingerprint:<26} {entry.task_id:<18} "
            f"{','.join(entry.endpoints):<28} {entry.error}"
        )
    return "\n".join(lines)


def cmd_deadletter(args: argparse.Namespace) -> int:
    from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
    from repro.chaos.policy import RetryPolicy
    from repro.exceptions import TaskQuarantinedError
    from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
    from repro.net.clock import get_clock
    from repro.net.context import at_site
    from repro.resilience import PoisonPolicy, PoisonTracker
    from repro.resources import WorkerPool

    reset_clock(args.time_scale)
    testbed = build_paper_testbed(seed=args.seed)
    auth = AuthServer()
    identity = auth.register_identity("operator", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    quorum = 2
    cloud = FaasCloud(
        testbed.faas_cloud,
        testbed.network,
        auth,
        testbed.constants,
        poison=PoisonTracker(PoisonPolicy(quorum=quorum)),
    )
    # A deterministic subset of payloads fails on every endpoint and every
    # attempt — the failure shape retries cannot fix and quarantine exists
    # to contain.
    injector = FaultInjector(
        FaultPlan.build(
            args.seed,
            (
                FaultSpec(
                    "worker.poison",
                    "poison_task",
                    rate=args.poison_rate,
                    occurrences=tuple(range(32)),
                ),
            ),
        )
    )
    set_injector(injector)
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0)
    # Two endpoints in one failover group: the quarantine quorum needs the
    # poison steering to try the payload on distinct endpoints.
    endpoints = [
        FaasEndpoint(
            f"dlq-ep-{index}",
            cloud,
            token,
            testbed.theta_login,
            WorkerPool(testbed.theta_compute, 2, name=f"dlq-pool-{index}"),
            failover_group="dlq-pair",
            poll_interval=0.25,
        ).start()
        for index in range(2)
    ]
    client = FaasClient(cloud, token, site=testbed.theta_login, retry_policy=policy)
    completed = quarantined = 0
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(_noop_task, endpoints[0].endpoint_id, index)
                for index in range(args.tasks)
            ]
        for future in futures:
            try:
                future.result(timeout=120)
                completed += 1
            except TaskQuarantinedError:
                quarantined += 1
        # The storm is over and the "bad deploy" is rolled back: whatever
        # happens to the dead-letter queue next is the operator's call.
        set_injector(None)
        entries = cloud.deadletters()
        print(
            f"{completed}/{len(futures)} tasks completed; {quarantined} "
            f"poisoned payload(s) quarantined after failing on {quorum} "
            f"distinct endpoints\n"
        )
        print(_render_deadletters(entries))
        if args.action == "retry" and entries:
            clock = get_clock()
            retried = [
                cloud.deadletter_retry(
                    token, entry.tenant, entry.fingerprint, endpoints[1].endpoint_id
                )
                for entry in entries
            ]
            deadline = clock.now() + 60.0
            while clock.now() < deadline and not all(
                cloud.task(task_id).status.terminal for task_id in retried
            ):
                clock.sleep(0.25)
            statuses = [cloud.task(task_id).status.value for task_id in retried]
            print(
                f"\nretried {len(retried)} quarantined payload(s) on "
                f"{endpoints[1].endpoint_id}: statuses {statuses}; "
                f"{len(cloud.deadletters())} entr(ies) remain"
            )
        elif args.action == "drop" and entries:
            for entry in entries:
                cloud.deadletter_drop(token, entry.tenant, entry.fingerprint)
            print(
                f"\ndropped {len(entries)} entr(ies); "
                f"{len(cloud.deadletters())} remain"
            )
    finally:
        set_injector(None)
        client.close()
        for endpoint in endpoints:
            endpoint.stop()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import observe

    try:
        spans = observe.load_spans_jsonl(args.trace_file)
    except FileNotFoundError:
        print(f"trace file not found: {args.trace_file}")
        return 1
    except (ValueError, KeyError) as exc:
        print(f"could not parse {args.trace_file}: {exc}")
        return 1
    if not spans:
        print(f"no spans in {args.trace_file}")
        return 1
    print(observe.render_span_summary(spans))
    orphans = observe.find_orphans(spans)
    if orphans:
        print(f"\nWARNING: {len(orphans)} orphan spans (parent never recorded):")
        for span in orphans[:10]:
            print(f"  {span.name} trace={span.trace_id} parent={span.parent_id}")
    else:
        print("\nno orphan spans: every parent id resolves within its trace")
    traces = observe.group_traces(spans)
    if args.trace_id is not None:
        chosen = [args.trace_id]
    else:
        # Default: the longest task, where the critical path is most telling.
        def root_duration(bucket):
            root = observe.trace_root(bucket)
            return root.duration or 0.0 if root is not None else 0.0

        ranked = sorted(traces, key=lambda t: root_duration(traces[t]), reverse=True)
        chosen = ranked[: args.limit]
    for trace_id in chosen:
        print()
        print(observe.render_critical_path(spans, trace_id))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("testbed", help="describe the simulated testbed")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_testbed)

    p = sub.add_parser("moldesign", help="run a molecular design campaign")
    _add_common(p)
    p.add_argument("--simulations", type=int, default=120)
    p.add_argument("--molecules", type=int, default=1200)
    p.add_argument("--timeout", type=float, default=600.0)
    p.set_defaults(func=cmd_moldesign)

    p = sub.add_parser("finetune", help="run a surrogate fine-tuning campaign")
    _add_common(p)
    p.add_argument("--structures", type=int, default=36)
    p.add_argument("--pretrain", type=int, default=200)
    p.add_argument("--timeout", type=float, default=900.0)
    p.set_defaults(func=cmd_finetune)

    p = sub.add_parser("compare", help="compare the three workflow stacks")
    _add_common(p)
    p.add_argument("--payload-mb", type=float, default=1.0)
    p.add_argument("--tasks", type=int, default=8)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "chaos", help="sweep the fault matrix and audit recovery invariants"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--time-scale", type=float, default=0.002,
        help="wall seconds per nominal second (smaller = faster run)",
    )
    p.add_argument(
        "--matrix", "--modes", dest="modes", nargs="+", default=None,
        metavar="MODE",
        help="fault modes to inject (default: all; see repro.chaos.campaign."
        "FAULT_MODES)",
    )
    p.add_argument(
        "--configs", nargs="+", default=None, metavar="CONFIG",
        help="workflow configs to sweep (default: faas-file faas-redis "
        "faas-globus)",
    )
    p.add_argument(
        "--tasks", type=int, default=6, help="tasks per campaign cell"
    )
    p.add_argument(
        "--verify-determinism", action="store_true",
        help="run every cell twice and require identical ledger digests",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "resume", help="kill a campaign mid-flight and resume it from its journal"
    )
    _add_common(p)
    p.add_argument("--simulations", type=int, default=24)
    p.add_argument("--molecules", type=int, default=200)
    p.add_argument(
        "--crash-after", type=int, default=8,
        help="kill the campaign after this many simulation results",
    )
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument(
        "--verify-determinism", action="store_true",
        help="also run an uninterrupted control and require bit-identical "
        "ledger digests",
    )
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "tenants", help="print a per-tenant usage/quota table from a short storm"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--time-scale", type=float, default=0.002,
        help="wall seconds per nominal second (smaller = faster run)",
    )
    p.add_argument("--shards", type=int, default=2, help="control-plane shards")
    p.add_argument("--tasks", type=int, default=8, help="tasks per tenant")
    p.set_defaults(func=cmd_tenants)

    p = sub.add_parser(
        "pools", help="print a per-pool autoscaling table from a short burst"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--time-scale", type=float, default=0.002,
        help="wall seconds per nominal second (smaller = faster run)",
    )
    p.add_argument("--tasks", type=int, default=8, help="tasks per endpoint")
    p.add_argument("--max-workers", type=int, default=4, help="autoscaler ceiling")
    p.set_defaults(func=cmd_pools)

    p = sub.add_parser(
        "deadletter",
        help="quarantine poisoned payloads, then list/retry/drop the "
        "dead-letter queue",
    )
    p.add_argument(
        "action", choices=("list", "retry", "drop"),
        help="what to do with the quarantined entries after the storm",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--time-scale", type=float, default=0.002,
        help="wall seconds per nominal second (smaller = faster run)",
    )
    p.add_argument("--tasks", type=int, default=8, help="tasks in the storm")
    p.add_argument(
        "--poison-rate", type=float, default=0.5,
        help="fraction of payload keys deterministically poisoned",
    )
    p.set_defaults(func=cmd_deadletter)

    p = sub.add_parser(
        "trace", help="reconstruct a recorded campaign from a span JSONL file"
    )
    p.add_argument("trace_file", help="JSONL written by a --trace-out run")
    p.add_argument(
        "--trace-id", default=None,
        help="print this task's critical path (default: the longest tasks)",
    )
    p.add_argument(
        "--limit", type=int, default=1,
        help="how many longest tasks to print critical paths for",
    )
    p.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
