"""Steering layer (the Colmena substitute): Results, queues, Thinkers, and
Task Servers — the paper's contribution surface."""

from repro.core.queues import ColmenaQueues, KillSignal, TopicSpec
from repro.core.result import Result
from repro.core.task_server import (
    ColmenaTask,
    FuncXTaskServer,
    LocalTaskServer,
    MethodSpec,
    ParslTaskServer,
    TaskServer,
)
from repro.core.thinker import (
    BaseThinker,
    ResourceCounter,
    agent,
    event_responder,
    result_processor,
    task_submitter,
)

__all__ = [
    "ColmenaQueues",
    "KillSignal",
    "TopicSpec",
    "Result",
    "ColmenaTask",
    "FuncXTaskServer",
    "LocalTaskServer",
    "MethodSpec",
    "ParslTaskServer",
    "TaskServer",
    "BaseThinker",
    "ResourceCounter",
    "agent",
    "event_responder",
    "result_processor",
    "task_submitter",
]
