"""Client/Task-Server queues with automatic pass-by-reference.

The Thinker and Task Server exchange :class:`~repro.core.result.Result`
envelopes through Redis-backed queues (one request queue, one result queue
per *topic*).  The integration that makes the paper's numbers work happens
at serialization time: any task input larger than the topic's
``proxy_threshold`` is swapped for a ProxyStore proxy before the envelope is
pickled, so queues, the Task Server, and the FaaS cloud only ever carry
lightweight references (§IV-D).  Thresholds and stores are configured *per
topic*, which is how one application mixes a file-system store for local
simulation tasks with a Globus store for cross-site AI tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import Result
from repro.exceptions import WorkflowError
from repro.net.clock import Clock, get_clock
from repro.observe import (
    counter_inc,
    new_task_trace,
    observe,
    record_span,
    trace_span,
)
from repro.net.context import current_site
from repro.net.kvstore import KVClient, KVServer
from repro.net.topology import Network
from repro.proxystore.prefetch import normalize_hints
from repro.proxystore.store import Store
from repro.serialize import (
    deserialize,
    deserialize_cost,
    nominal_size,
    serialize,
    serialize_cost,
)

__all__ = ["TopicSpec", "ColmenaQueues", "KillSignal"]

_REQUEST_QUEUE = "colmena:requests"
_RESULT_QUEUE = "colmena:results:{topic}"
_KILL = b"__COLMENA_KILL__"


class KillSignal(Exception):
    """Raised on the Task Server side when the client requests shutdown."""


@dataclass
class TopicSpec:
    """Data-fabric policy for one topic (class of tasks).

    ``proxy_threshold`` of ``None`` disables proxying (the plain-Parsl,
    everything-by-value baseline); otherwise inputs/outputs with nominal
    size strictly greater than the threshold are passed by reference via
    ``store``.
    """

    name: str
    store: Store | None = None
    proxy_threshold: int | None = None

    def should_proxy(self, size: int) -> bool:
        return (
            self.store is not None
            and self.proxy_threshold is not None
            and size > self.proxy_threshold
        )


class ColmenaQueues:
    """Both halves of the Thinker↔Task-Server message fabric.

    One instance is shared (it is in-process glue); *where* a call pays its
    network cost is decided by the calling thread's site, exactly like the
    other clients in this package.
    """

    def __init__(
        self,
        server: KVServer,
        network: Network,
        topics: list[str] | None = None,
        *,
        topic_specs: dict[str, TopicSpec] | None = None,
        default_store: Store | None = None,
        default_threshold: int | None = None,
        via_tunnel: bool = False,
        clock: Clock | None = None,
    ) -> None:
        self._server = server
        self._network = network
        self._tunnel = via_tunnel
        self._clock = clock or get_clock()
        self.topics = set(topics or []) | {"default"}
        self._specs: dict[str, TopicSpec] = {}
        for topic in self.topics:
            self._specs[topic] = TopicSpec(
                topic, store=default_store, proxy_threshold=default_threshold
            )
        for name, spec in (topic_specs or {}).items():
            self.topics.add(name)
            self._specs[name] = spec
        self._clients: dict[str, KVClient] = {}

    # -- plumbing -----------------------------------------------------------
    def _client(self) -> KVClient:
        site = current_site() or self._server.site
        client = self._clients.get(site.name)
        if client is None:
            client = KVClient(
                self._server, self._network, site=site, via_tunnel=self._tunnel
            )
            self._clients[site.name] = client
        return client

    def spec(self, topic: str) -> TopicSpec:
        try:
            return self._specs[topic]
        except KeyError:
            raise WorkflowError(f"unknown topic {topic!r}") from None

    # -- client (Thinker) side ---------------------------------------------------
    def send_request(
        self,
        method: str,
        *,
        args: tuple = (),
        kwargs: dict | None = None,
        topic: str = "default",
        task_info: dict | None = None,
        prefetch: "object | None" = None,
    ) -> Result:
        """Create, proxy, serialize, and enqueue a task request.

        ``prefetch`` is an optional :class:`PrefetchHint` (or sequence of
        them) naming the store keys this task will resolve; the hint rides
        the envelope so the execution site can warm its proxy cache before
        the task lands (see :mod:`repro.proxystore.prefetch`).
        """
        spec = self.spec(topic)
        result = Result(
            method=method,
            args=args,
            kwargs=kwargs or {},
            topic=topic,
            task_info=task_info or {},
            prefetch=normalize_hints(prefetch),
        )
        result.mark_created()
        result.trace_ctx = new_task_trace(result.task_id)
        with trace_span(
            "client.submit", parent=result.trace_ctx, topic=topic, method=method
        ):
            start = self._clock.now()
            result.args = tuple(self._maybe_proxy(a, spec) for a in result.args)
            result.kwargs = {
                k: self._maybe_proxy(v, spec) for k, v in result.kwargs.items()
            }
            result.dur_proxy_inputs = self._clock.now() - start
            # Measure the envelope first so the cost can ride inside the pickle.
            probe = serialize(result)
            cost = serialize_cost(probe.nominal_size)
            result.dur_serialize_inputs = cost
            result.mark_client_sent()
            payload = serialize(result)
            self._clock.sleep(cost)
            self._client().rpush(_REQUEST_QUEUE, payload)
        counter_inc("queues.tasks_submitted", topic=topic)
        return result

    def _maybe_proxy(self, obj: object, spec: TopicSpec) -> object:
        if spec.should_proxy(nominal_size(obj)):
            assert spec.store is not None
            return spec.store.proxy(obj)
        return obj

    def get_result(self, topic: str = "default", timeout: float | None = None) -> Result | None:
        """Pop the next completed Result for ``topic`` (None on timeout)."""
        item = self._client().blpop(_RESULT_QUEUE.format(topic=topic), timeout)
        if item is None:
            return None
        _, payload = item
        cost = deserialize_cost(payload.nominal_size)
        self._clock.sleep(cost)
        result: Result = deserialize(payload)
        result.dur_deserialize_value = cost
        result.mark_client_result_received()
        if result.trace_ctx is not None:
            # The return hop (server stamped one end, we stamped the other)
            # and the root span whose id was pre-allocated at submit time.
            record_span(
                "queue.result",
                parent=result.trace_ctx,
                start=result.time_server_result_received,
                end=result.time_client_result_received,
                topic=result.topic,
            )
            record_span(
                "task",
                trace_id=result.trace_ctx[0],
                span_id=result.trace_ctx[1],
                start=result.time_created,
                end=result.time_client_result_received,
                method=result.method,
                topic=result.topic,
                success=result.success,
            )
        counter_inc("queues.results_received", topic=result.topic)
        if result.task_lifetime is not None:
            observe("task.lifetime_s", result.task_lifetime, topic=result.topic)
        return result

    def send_kill_signal(self) -> None:
        self._client().rpush(_REQUEST_QUEUE, _KILL)

    # -- Task Server side -------------------------------------------------------------
    def get_task(self, timeout: float | None = None) -> Result | None:
        """Pop the next task request (None on timeout).

        Raises :class:`KillSignal` when the client has asked the server to
        shut down.
        """
        item = self._client().blpop(_REQUEST_QUEUE, timeout)
        if item is None:
            return None
        _, payload = item
        if payload == _KILL:
            raise KillSignal
        cost = deserialize_cost(payload.nominal_size)
        self._clock.sleep(cost)
        result: Result = deserialize(payload)
        result.dur_server_deserialize = cost
        result.mark_server_received()
        if result.trace_ctx is not None:
            record_span(
                "queue.request",
                parent=result.trace_ctx,
                start=result.time_client_sent,
                end=result.time_server_received,
                topic=result.topic,
            )
        return result

    def send_result(self, result: Result) -> None:
        """Route a completed Result back to its topic's queue."""
        probe = serialize(result)
        cost = serialize_cost(probe.nominal_size)
        result.dur_server_serialize = cost
        payload = serialize(result)
        self._clock.sleep(cost)
        self._client().rpush(_RESULT_QUEUE.format(topic=result.topic), payload)
