"""The ``Result`` record: one task's life, fully timestamped.

A ``Result`` is created by the Thinker when it requests a task, travels to
the Task Server, across the compute fabric to a worker, and back — each hop
stamping wall-clock (virtual) timestamps and duration counters onto it.
Every latency the paper reports (Figs. 3–7 and §V-D's reaction/decision/
dispatch analysis) is a derived property of this ledger:

* *serialization time* — client + worker (de)serialize and proxy work,
* *thinker↔task-server* and *task-server↔worker* communication times,
* *time on worker* (deserialize + proxy-resolve + execute + serialize),
* *task lifetime* (creation → result back at the Thinker),
* *data-access latency* (how long the Thinker waits to touch a proxied
  value — Fig. 5 bottom panel).
"""

from __future__ import annotations

import itertools
import uuid
from dataclasses import dataclass, field
from typing import Any

from repro.net.clock import get_clock
from repro.observe import trace_span
from repro.proxystore.proxy import is_proxy, resolve, resolve_seconds

__all__ = ["Result"]

_task_counter = itertools.count()


@dataclass
class Result:
    """A task request/response envelope with a timing ledger.

    Timestamps (``time_*``) are absolute nominal seconds from the shared
    clock; duration counters (``dur_*``) are nominal seconds of work billed
    to one component.  ``None`` means "this stage has not happened".
    """

    method: str
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    topic: str = "default"
    task_id: str = field(
        default_factory=lambda: f"r{next(_task_counter):07d}-{uuid.uuid4().hex[:6]}"
    )
    #: Free-form application data that rides along (e.g. batch labels).
    task_info: dict[str, Any] = field(default_factory=dict)
    #: ``(trace_id, root_span_id)`` when the campaign runs under
    #: :mod:`repro.observe` tracing; rides the envelope so every hop can
    #: parent its spans to this task's trace.  ``None`` when tracing is off.
    trace_ctx: tuple[str, str] | None = None
    #: Advisory :class:`~repro.proxystore.prefetch.PrefetchHint` tuple: the
    #: store keys this task will resolve, so whichever agent fronts the
    #: execution site can warm its cache while the task is still in flight.
    prefetch: tuple = ()

    # -- outcome -----------------------------------------------------------
    value: Any = None
    success: bool | None = None
    error: str | None = None
    remote_traceback: str | None = None
    complete: bool = False

    # -- timestamps (stamped in order) ---------------------------------------
    time_created: float | None = None
    time_client_sent: float | None = None
    time_server_received: float | None = None
    time_server_dispatched: float | None = None
    time_worker_started: float | None = None
    time_compute_started: float | None = None
    time_compute_ended: float | None = None
    time_worker_ended: float | None = None
    time_server_result_received: float | None = None
    time_client_result_received: float | None = None
    time_value_accessed: float | None = None

    # -- duration counters ------------------------------------------------------
    dur_proxy_inputs: float = 0.0  # client: placing large inputs in a store
    dur_serialize_inputs: float = 0.0  # client: envelope serialization
    dur_server_deserialize: float = 0.0  # task server: unpack from queue
    dur_server_serialize: float = 0.0  # task server: repack for the fabric
    dur_deserialize_inputs: float = 0.0  # worker: envelope deserialization
    dur_resolve_proxies: float = 0.0  # worker: waiting for input data
    #: Per-argument resolve wait: ``{"arg0": s, "<kwarg name>": s, ...}``.
    #: Only proxied inputs appear; the values sum to ``dur_resolve_proxies``
    #: (modulo non-proxy overhead), splitting Fig. 5's aggregate wait by input.
    proxy_resolve_detail: dict[str, float] = field(default_factory=dict)
    dur_proxy_value: float = 0.0  # worker: placing large outputs in a store
    dur_serialize_value: float = 0.0  # worker: envelope serialization
    dur_deserialize_value: float = 0.0  # client: envelope deserialization
    dur_resolve_value: float = 0.0  # client: waiting for output data

    # -- stamping helpers ----------------------------------------------------------
    def _stamp(self, name: str) -> None:
        setattr(self, name, get_clock().now())

    def mark_created(self) -> None:
        self._stamp("time_created")

    def mark_client_sent(self) -> None:
        self._stamp("time_client_sent")

    def mark_server_received(self) -> None:
        self._stamp("time_server_received")

    def mark_server_dispatched(self) -> None:
        self._stamp("time_server_dispatched")

    def mark_worker_started(self) -> None:
        self._stamp("time_worker_started")

    def mark_compute_started(self) -> None:
        self._stamp("time_compute_started")

    def mark_compute_ended(self) -> None:
        self._stamp("time_compute_ended")

    def mark_worker_ended(self) -> None:
        self._stamp("time_worker_ended")

    def mark_server_result_received(self) -> None:
        self._stamp("time_server_result_received")

    def mark_client_result_received(self) -> None:
        self._stamp("time_client_result_received")

    # -- outcome helpers --------------------------------------------------------------
    def set_success(self, value: Any) -> None:
        self.value = value
        self.success = True
        self.complete = True

    def set_failure(self, error: str, remote_traceback: str | None = None) -> None:
        self.error = error
        self.remote_traceback = remote_traceback
        self.success = False
        self.complete = True

    def access_value(self) -> Any:
        """Read the task's output, resolving a proxied value if needed.

        The first call times how long the Thinker blocks before the data is
        locally available — the Fig. 5 "time to access result data" metric —
        and stamps ``time_value_accessed``.
        """
        clock = get_clock()
        start = clock.now()
        value = self.value
        if is_proxy(value):
            # The store's own ``proxy.resolve`` span nests under this one,
            # joining the Thinker's data-access wait to the task's trace.
            with trace_span("result.resolve", parent=self.trace_ctx):
                resolve(value)
            took = resolve_seconds(value)
            self.dur_resolve_value = took if took is not None else clock.now() - start
        if self.time_value_accessed is None:
            self.time_value_accessed = clock.now()
        return value

    # -- derived metrics -----------------------------------------------------------------
    @staticmethod
    def _gap(later: float | None, earlier: float | None) -> float | None:
        if later is None or earlier is None:
            return None
        return later - earlier

    @property
    def time_running(self) -> float | None:
        """Pure method execution time."""
        return self._gap(self.time_compute_ended, self.time_compute_started)

    @property
    def time_on_worker(self) -> float | None:
        """Worker wall time: deserialize + resolve + execute + serialize."""
        return self._gap(self.time_worker_ended, self.time_worker_started)

    @property
    def comm_client_to_server(self) -> float | None:
        return self._gap(self.time_server_received, self.time_client_sent)

    @property
    def comm_server_to_worker(self) -> float | None:
        return self._gap(self.time_worker_started, self.time_server_dispatched)

    @property
    def comm_worker_to_server(self) -> float | None:
        return self._gap(self.time_server_result_received, self.time_worker_ended)

    @property
    def comm_server_to_client(self) -> float | None:
        return self._gap(
            self.time_client_result_received, self.time_server_result_received
        )

    @property
    def time_serialization(self) -> float | None:
        """All (de)serialization + proxy work across client and worker —
        the "serialization" bar of Fig. 3."""
        return (
            self.dur_proxy_inputs
            + self.dur_serialize_inputs
            + self.dur_server_deserialize
            + self.dur_server_serialize
            + self.dur_deserialize_inputs
            + self.dur_proxy_value
            + self.dur_serialize_value
            + self.dur_deserialize_value
        )

    @property
    def task_lifetime(self) -> float | None:
        """Creation at the Thinker to result received by the Thinker."""
        return self._gap(self.time_client_result_received, self.time_created)

    @property
    def notification_latency(self) -> float | None:
        """Task finished computing → Thinker knows (Fig. 5 top panel)."""
        return self._gap(self.time_client_result_received, self.time_compute_ended)

    @property
    def overhead(self) -> float | None:
        """Lifetime minus useful compute — Fig. 7b's per-task overhead."""
        lifetime, running = self.task_lifetime, self.time_running
        if lifetime is None or running is None:
            return None
        return lifetime - running
