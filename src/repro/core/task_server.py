"""Task Servers: dispatch Colmena tasks onto a compute fabric.

A Task Server pulls :class:`~repro.core.result.Result` requests off the
queues, re-serializes them into whichever fabric it fronts, and routes the
completed envelopes back to the Thinker's topic queues (Fig. 2).  Three
fabrics are provided:

* :class:`LocalTaskServer` — an in-process thread pool (tests, examples);
* :class:`ParslTaskServer` — the conventional pilot-job baseline;
* :class:`FuncXTaskServer` — the cloud-managed FaaS fabric.

What actually executes on a worker is a :class:`ColmenaTask`: a pickleable
wrapper that stamps worker-side timestamps, resolves input proxies (timing
the wait — the Globus-transfer wait of Fig. 4 lands here), runs the method,
and proxies large outputs back through the topic's store so results also
travel by reference.
"""

from __future__ import annotations

import queue
from abc import ABC, abstractmethod
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.core.queues import ColmenaQueues, KillSignal
from repro.core.result import Result
from repro.exceptions import WorkflowError
from repro.faas.client import FaasClient
from repro.net.clock import get_clock
from repro.net.context import SiteThread, at_site
from repro.net.topology import Site
from repro.observe import counter_inc, current_span, record_span, trace_span
from repro.parsl.dataflow import DataFlowKernel
from repro.proxystore.prefetch import apply_prefetch_hints
from repro.proxystore.proxy import extract, is_proxy
from repro.proxystore.store import get_store
from repro.serialize import deserialize_cost, nominal_size, serialize_cost

__all__ = [
    "ColmenaTask",
    "MethodSpec",
    "TaskServer",
    "LocalTaskServer",
    "ParslTaskServer",
    "FuncXTaskServer",
]


class ColmenaTask:
    """The function body shipped to workers for one registered method."""

    def __init__(
        self,
        fn: Callable,
        *,
        output_store: str | None = None,
        output_threshold: int | None = None,
    ) -> None:
        self.fn = fn
        self.output_store = output_store
        self.output_threshold = output_threshold

    def _resolve_inputs(self, result: Result, clock) -> tuple[tuple, dict]:
        """Materialize proxied inputs, timing the wait per argument."""
        args = []
        for index, arg in enumerate(result.args):
            if is_proxy(arg):
                t0 = clock.now()
                args.append(extract(arg))
                result.proxy_resolve_detail[f"arg{index}"] = clock.now() - t0
            else:
                args.append(arg)
        kwargs = {}
        for name, value in result.kwargs.items():
            if is_proxy(value):
                t0 = clock.now()
                kwargs[name] = extract(value)
                result.proxy_resolve_detail[name] = clock.now() - t0
            else:
                kwargs[name] = value
        return tuple(args), kwargs

    def __call__(self, result: Result) -> Result:
        clock = get_clock()
        # Parent to the surrounding fabric span when one is active on this
        # thread (FuncX/Htex worker wrappers), else directly to the task root.
        parent = current_span() or result.trace_ctx
        with trace_span("worker.execute", parent=parent, method=result.method):
            result.mark_worker_started()
            size_in = nominal_size(result.args) + nominal_size(result.kwargs)
            result.dur_deserialize_inputs = deserialize_cost(size_in)
            # Materialize proxied inputs, timing the wait for remote data.
            start = clock.now()
            with trace_span("worker.resolve_proxies"):
                args, kwargs = self._resolve_inputs(result, clock)
            result.dur_resolve_proxies = clock.now() - start
            result.mark_compute_started()
            try:
                with trace_span("worker.compute"):
                    value = self.fn(*args, **kwargs)
            except Exception as exc:
                import traceback

                result.mark_compute_ended()
                result.set_failure(repr(exc), traceback.format_exc())
                result.mark_worker_ended()
                return result
            result.mark_compute_ended()
            # Large outputs go back by reference, same policy as inputs.
            start = clock.now()
            if (
                self.output_store is not None
                and self.output_threshold is not None
                and nominal_size(value) > self.output_threshold
            ):
                with trace_span("worker.proxy_output"):
                    value = get_store(self.output_store).proxy(value)
            result.dur_proxy_value = clock.now() - start
            result.set_success(value)
            result.dur_serialize_value = serialize_cost(nominal_size(value) + 512)
            result.mark_worker_ended()
        return result


@dataclass
class MethodSpec:
    """How one method is deployed: callable + routing + output data fabric."""

    fn: Callable
    #: FuncX endpoint id or Parsl executor label (fabric-specific routing).
    target: str | None = None
    output_store: str | None = None
    output_threshold: int | None = None

    @property
    def name(self) -> str:
        return self.fn.__name__

    def task(self) -> ColmenaTask:
        return ColmenaTask(
            self.fn,
            output_store=self.output_store,
            output_threshold=self.output_threshold,
        )


class TaskServer(ABC):
    """Queue-draining loop + fabric dispatch, running at one site."""

    def __init__(
        self,
        queues: ColmenaQueues,
        methods: list[MethodSpec],
        site: Site,
    ) -> None:
        if not methods:
            raise WorkflowError("a task server needs at least one method")
        self.queues = queues
        self.site = site
        self.methods = {spec.name: spec for spec in methods}
        if len(self.methods) != len(methods):
            raise WorkflowError("method names must be unique")
        self._thread: SiteThread | None = None
        self._forwarder: SiteThread | None = None
        # Completed fabric futures land here (from whatever thread completed
        # them) and are forwarded to the client queues by a thread pinned to
        # the server's site, so the return path is charged where it happens.
        self._done_queue: "queue.Queue[tuple[Result, Future] | None]" = queue.Queue()
        self._running = False
        self.tasks_dispatched = 0
        self.tasks_returned = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "TaskServer":
        if self._running:
            return self
        self._running = True
        with at_site(self.site):
            self._start_fabric()
        self._thread = SiteThread(self.site, target=self._main_loop, name="task-server")
        self._thread.start()
        self._forwarder = SiteThread(
            self.site, target=self._forward_loop, name="task-server-results"
        )
        self._forwarder.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown; usually triggered by the client's kill signal,
        but callable directly for error paths."""
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._done_queue.put(None)
        if self._forwarder is not None:
            self._forwarder.join(timeout=10)
            self._forwarder = None
        with at_site(self.site):
            self._stop_fabric()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    # -- loop -------------------------------------------------------------------
    def _main_loop(self) -> None:
        while self._running:
            try:
                result = self.queues.get_task(timeout=0.25)
            except KillSignal:
                break
            if result is None:
                continue
            if result.method not in self.methods:
                result.set_failure(f"unknown method {result.method!r}")
                result.mark_server_result_received()
                self.queues.send_result(result)
                continue
            result.mark_server_dispatched()
            if result.trace_ctx is not None:
                record_span(
                    "server.process",
                    parent=result.trace_ctx,
                    start=result.time_server_received,
                    end=result.time_server_dispatched,
                    method=result.method,
                )
            self._dispatch(result)
            self.tasks_dispatched += 1
            counter_inc("server.tasks_dispatched", method=result.method)
        self._running = False

    def _on_fabric_done(self, original: Result, future: Future) -> None:
        self._done_queue.put((original, future))

    def _forward_loop(self) -> None:
        while True:
            item = self._done_queue.get()
            if item is None:
                return
            original, future = item
            error = future.exception()
            if error is None:
                returned: Result = future.result()
            else:
                returned = original
                returned.set_failure(repr(error))
            returned.mark_server_result_received()
            if returned.trace_ctx is not None:
                # The outbound fabric hop (dispatch -> worker start) and the
                # return hop (worker end -> back at the server), both ends
                # of each now being on the ledger.
                record_span(
                    "fabric.dispatch",
                    parent=returned.trace_ctx,
                    start=returned.time_server_dispatched,
                    end=returned.time_worker_started,
                    method=returned.method,
                )
                record_span(
                    "fabric.collect",
                    parent=returned.trace_ctx,
                    start=returned.time_worker_ended,
                    end=returned.time_server_result_received,
                    method=returned.method,
                )
            self.queues.send_result(returned)
            self.tasks_returned += 1
            counter_inc("server.tasks_returned")

    # -- fabric hooks ---------------------------------------------------------------
    @abstractmethod
    def _dispatch(self, result: Result) -> None:
        """Hand a request to the fabric; arrange for ``_on_fabric_done``."""

    def _start_fabric(self) -> None:  # noqa: B027 - optional hook
        pass

    def _stop_fabric(self) -> None:  # noqa: B027 - optional hook
        pass


class LocalTaskServer(TaskServer):
    """Runs methods on an in-process thread pool at the server's site."""

    def __init__(
        self,
        queues: ColmenaQueues,
        methods: list[MethodSpec],
        site: Site,
        *,
        n_workers: int = 4,
    ) -> None:
        super().__init__(queues, methods, site)
        self._n_workers = n_workers
        self._pool: ThreadPoolExecutor | None = None
        self._tasks = {name: spec.task() for name, spec in self.methods.items()}

    def _start_fabric(self) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=self._n_workers, thread_name_prefix="local-ts"
        )

    def _stop_fabric(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _dispatch(self, result: Result) -> None:
        assert self._pool is not None
        task = self._tasks[result.method]
        # Workers share the server's site; warm its cache while the task
        # sits in the pool queue.
        apply_prefetch_hints(result.prefetch, self.site, via="local")

        def run(result: Result = result) -> Result:
            from repro.net.context import set_current_site

            set_current_site(self.site)
            return task(result)

        future = self._pool.submit(run)
        future.add_done_callback(lambda f, r=result: self._on_fabric_done(r, f))


class ParslTaskServer(TaskServer):
    """Dispatches onto a :class:`DataFlowKernel` (the §V-B baselines).

    Each method's ``target`` names the executor label whose pilot job should
    run it (CPU methods to the HPC executor, AI methods to the GPU one).
    """

    def __init__(
        self,
        queues: ColmenaQueues,
        methods: list[MethodSpec],
        site: Site,
        dfk: DataFlowKernel,
    ) -> None:
        super().__init__(queues, methods, site)
        self.dfk = dfk
        self._tasks = {name: spec.task() for name, spec in self.methods.items()}

    def _start_fabric(self) -> None:
        self.dfk.start()

    def _stop_fabric(self) -> None:
        self.dfk.shutdown()

    def _dispatch(self, result: Result) -> None:
        spec = self.methods[result.method]
        task = self._tasks[result.method]
        future = self.dfk.submit(
            task,
            result,
            executor=spec.target,
            _trace_ctx=result.trace_ctx,
            _prefetch_hints=result.prefetch,
        )
        future.add_done_callback(lambda f, r=result: self._on_fabric_done(r, f))


class FuncXTaskServer(TaskServer):
    """Dispatches through the cloud FaaS fabric (the paper's approach).

    Each method is registered once as a serialized :class:`ColmenaTask`;
    every request then travels as (function id, Result-with-references),
    keeping cloud payloads tiny regardless of the real data size.
    """

    def __init__(
        self,
        queues: ColmenaQueues,
        methods: list[MethodSpec],
        site: Site,
        client: FaasClient,
    ) -> None:
        super().__init__(queues, methods, site)
        self.client = client
        self._func_ids: dict[str, str] = {}

    def _start_fabric(self) -> None:
        for name, spec in self.methods.items():
            if spec.target is None:
                raise WorkflowError(
                    f"method {name!r} has no endpoint id (MethodSpec.target)"
                )
            self._func_ids[name] = self.client.register_function(spec.task())

    def _stop_fabric(self) -> None:
        self.client.close()

    def _dispatch(self, result: Result) -> None:
        spec = self.methods[result.method]
        future = self.client.submit(
            self._func_ids[result.method],
            spec.target,
            result,
            _trace_ctx=result.trace_ctx,
            _prefetch_hints=result.prefetch,
        )
        future.add_done_callback(lambda f, r=result: self._on_fabric_done(r, f))
