"""Steering policies as cooperative agents (the Colmena "Thinker").

A Thinker is a class whose decorated methods run as concurrent agent
threads sharing state (§IV-D):

* ``@agent`` — a free-running policy loop;
* ``@result_processor(topic=...)`` — called once per completed Result on a
  topic;
* ``@task_submitter(task_type=..., n_slots=...)`` — called each time the
  requested number of resource slots becomes available, the idiom used to
  keep every CPU fed with a fresh simulation;
* ``@event_responder(event=...)`` — called each time a named event fires
  (e.g. "start retraining").

Agents interact through ordinary Python threading primitives plus the
:class:`ResourceCounter`, which tracks how many workers are allocated to
each task pool and is the lever steering policies use to rebalance
resources over time.
"""

from __future__ import annotations

import functools
import threading
from typing import Callable

from repro.core.queues import ColmenaQueues
from repro.exceptions import WorkflowError
from repro.net.clock import get_clock
from repro.net.context import SiteThread
from repro.net.topology import Site
from repro.observe import counter_inc

__all__ = [
    "agent",
    "result_processor",
    "task_submitter",
    "event_responder",
    "ResourceCounter",
    "BaseThinker",
]

_MARKER = "_colmena_agent_spec"


def agent(func: Callable | None = None, *, critical: bool = True) -> Callable:
    """Mark a method as a free-running agent thread.

    ``critical`` agents set the Thinker's ``done`` flag when they return or
    crash, ending the run (the usual behaviour for a main policy loop).
    """

    def mark(f: Callable) -> Callable:
        setattr(f, _MARKER, {"kind": "agent", "critical": critical})
        return f

    return mark(func) if func is not None else mark


def result_processor(*, topic: str = "default", critical: bool = False) -> Callable:
    """Run the method once per Result arriving on ``topic``."""

    def decorator(func: Callable) -> Callable:
        @functools.wraps(func)
        def loop(self: "BaseThinker") -> None:
            while not self.done.is_set():
                result = self.queues.get_result(topic, timeout=0.25)
                if result is not None:
                    counter_inc(
                        "thinker.results_processed", topic=topic, agent=func.__name__
                    )
                    func(self, result)

        setattr(loop, _MARKER, {"kind": "processor", "critical": critical})
        return loop

    return decorator


def task_submitter(
    *, task_type: str = "default", n_slots: int = 1, critical: bool = False
) -> Callable:
    """Run the method each time ``n_slots`` slots of ``task_type`` free up.

    The agent blocks on the Thinker's :class:`ResourceCounter`; pairing one
    submitter per worker slot is how the paper keeps dispatch latency out of
    the critical path (a new simulation is requested the moment a CPU frees).
    """

    def decorator(func: Callable) -> Callable:
        @functools.wraps(func)
        def loop(self: "BaseThinker") -> None:
            if self.resources is None:
                raise WorkflowError(
                    "task_submitter agents need a ResourceCounter on the Thinker"
                )
            while not self.done.is_set():
                if self.resources.acquire(task_type, n_slots, timeout=0.25):
                    if self.done.is_set():
                        self.resources.release(task_type, n_slots)
                        return
                    func(self)

        setattr(loop, _MARKER, {"kind": "submitter", "critical": critical})
        return loop

    return decorator


def event_responder(*, event: str, critical: bool = False) -> Callable:
    """Run the method each time the named Thinker event is set (the event is
    cleared after the responder finishes)."""

    def decorator(func: Callable) -> Callable:
        @functools.wraps(func)
        def loop(self: "BaseThinker") -> None:
            trigger = self.event(event)
            while not self.done.is_set():
                if trigger.wait(self._wall(0.25)):
                    if self.done.is_set():
                        return
                    func(self)
                    trigger.clear()

        setattr(loop, _MARKER, {"kind": "responder", "critical": critical})
        return loop

    return decorator


class ResourceCounter:
    """Slots of compute capacity, partitioned across task pools.

    ``allocate`` moves capacity between pools (steering decisions);
    ``acquire``/``release`` are the per-task check-out/check-in.
    """

    def __init__(self, total_slots: int, task_types: list[str] | None = None) -> None:
        if total_slots < 0:
            raise ValueError("total_slots must be non-negative")
        self._cond = threading.Condition()
        self._available: dict[str, int] = {t: 0 for t in (task_types or ["default"])}
        self._allocated: dict[str, int] = {t: 0 for t in self._available}
        self._unallocated = total_slots
        self.total_slots = total_slots

    def _check_type(self, task_type: str) -> None:
        if task_type not in self._available:
            raise WorkflowError(f"unknown task pool {task_type!r}")

    def allocate(self, task_type: str, n_slots: int) -> None:
        """Move ``n_slots`` from the unallocated pool to ``task_type``."""
        self._check_type(task_type)
        with self._cond:
            if n_slots > self._unallocated:
                raise WorkflowError(
                    f"cannot allocate {n_slots} slots; only "
                    f"{self._unallocated} unallocated"
                )
            self._unallocated -= n_slots
            self._allocated[task_type] += n_slots
            self._available[task_type] += n_slots
            self._cond.notify_all()

    def reallocate(self, src: str, dst: str, n_slots: int, timeout: float | None = None) -> bool:
        """Move idle capacity between pools (blocks until ``src`` has it)."""
        self._check_type(src)
        self._check_type(dst)
        if not self.acquire(src, n_slots, timeout=timeout):
            return False
        with self._cond:
            self._allocated[src] -= n_slots
            self._allocated[dst] += n_slots
            self._available[dst] += n_slots
            self._cond.notify_all()
        return True

    def acquire(self, task_type: str, n_slots: int, timeout: float | None = None) -> bool:
        """Check out ``n_slots`` of ``task_type``; nominal-second timeout."""
        self._check_type(task_type)
        wall = get_clock().wall_timeout(timeout)
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._available[task_type] >= n_slots, wall
            )
            if not ok:
                return False
            self._available[task_type] -= n_slots
            return True

    def release(self, task_type: str, n_slots: int = 1) -> None:
        self._check_type(task_type)
        with self._cond:
            self._available[task_type] += n_slots
            if self._available[task_type] > self._allocated[task_type]:
                raise WorkflowError(
                    f"pool {task_type!r} released more slots than allocated"
                )
            self._cond.notify_all()

    def available(self, task_type: str) -> int:
        self._check_type(task_type)
        with self._cond:
            return self._available[task_type]

    def allocated(self, task_type: str) -> int:
        self._check_type(task_type)
        with self._cond:
            return self._allocated[task_type]

    @property
    def unallocated(self) -> int:
        with self._cond:
            return self._unallocated


class BaseThinker:
    """Base class for steering policies.

    Subclass, decorate methods with the agent decorators, then ``start()``.
    The Thinker finishes when any critical agent returns (or ``done`` is set
    explicitly); ``join()`` waits for every agent thread.
    """

    def __init__(
        self,
        queues: ColmenaQueues,
        site: Site,
        resource_counter: ResourceCounter | None = None,
    ) -> None:
        self.queues = queues
        self.site = site
        self.resources = resource_counter
        self.done = threading.Event()
        self._events: dict[str, threading.Event] = {}
        self._events_lock = threading.Lock()
        self._threads: list[SiteThread] = []
        self._agent_errors: list[BaseException] = []

    # -- events ---------------------------------------------------------------
    def event(self, name: str) -> threading.Event:
        with self._events_lock:
            evt = self._events.get(name)
            if evt is None:
                evt = threading.Event()
                self._events[name] = evt
            return evt

    def set_event(self, name: str) -> None:
        self.event(name).set()

    @staticmethod
    def _wall(nominal: float) -> float | None:
        return get_clock().wall_timeout(nominal)

    # -- agent discovery & lifecycle ----------------------------------------------
    def _agents(self) -> list[tuple[Callable, dict]]:
        found = []
        for name in dir(type(self)):
            member = getattr(type(self), name, None)
            spec = getattr(member, _MARKER, None)
            if spec is not None:
                found.append((getattr(self, name), spec))
        if not found:
            raise WorkflowError(
                f"{type(self).__name__} defines no agents; decorate methods "
                "with @agent/@result_processor/@task_submitter/@event_responder"
            )
        return found

    def start(self) -> "BaseThinker":
        if self._threads:
            raise WorkflowError("thinker already started")
        for bound, spec in self._agents():
            thread = SiteThread(
                self.site,
                target=self._run_agent,
                args=(bound, spec),
                name=f"thinker-{bound.__name__}",
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _run_agent(self, bound: Callable, spec: dict) -> None:
        try:
            bound()
        except Exception as exc:
            self._agent_errors.append(exc)
            self.done.set()
        else:
            if spec.get("critical"):
                self.done.set()

    def join(self, timeout: float | None = None) -> None:
        """Wait for all agents (``timeout`` is wall seconds, stdlib-style)."""
        for thread in self._threads:
            thread.join(timeout)

    def run(self) -> None:
        """Start, then block until every agent finishes."""
        self.start()
        self.join()

    @property
    def agent_errors(self) -> list[BaseException]:
        return list(self._agent_errors)
