"""``repro.durable`` — write-ahead journal, crash recovery, campaign resume.

The paper's thesis leans on cloud services *outliving* any single process
or allocation.  This package makes that literal for the reproduction:

* :class:`Journal` — append-only JSONL write-ahead log with snapshot
  compaction over a simulated durable medium (``repro.net.fs`` volume or
  ``repro.net.kvstore`` server), charged I/O as the fsync;
* :func:`recover_cloud` — rebuild a discarded
  :class:`~repro.faas.cloud.FaasCloud`/shard from snapshot + log replay
  with exactly-once semantics (ledger dedupe, in-flight re-lease,
  notification re-establishment at the acked frontier);
* :class:`CampaignCheckpoint` — the same discipline for Thinker decision
  state, powering ``repro.cli resume``.
"""

from repro.durable.checkpoint import CampaignCheckpoint
from repro.durable.journal import (
    FileJournalBackend,
    Journal,
    KVJournalBackend,
    decode_payload,
    encode_payload,
)
from repro.durable.recovery import RecoveryReport, recover_cloud
from repro.durable.resume import ResumeReport, ledger_digest, run_resumable_moldesign

__all__ = [
    "CampaignCheckpoint",
    "FileJournalBackend",
    "Journal",
    "KVJournalBackend",
    "RecoveryReport",
    "ResumeReport",
    "decode_payload",
    "encode_payload",
    "ledger_digest",
    "recover_cloud",
    "run_resumable_moldesign",
]
