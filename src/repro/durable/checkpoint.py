"""Campaign checkpointing: Thinker decision state as a journaled stream.

A campaign Thinker's *decision state* — seen results, retrain triggers,
steering ratios — is tiny compared to the task payloads flowing under it,
but losing it forces a full restart: the funcX tier remembers every task,
yet the steering policy no longer knows which results it already consumed.
:class:`CampaignCheckpoint` closes that gap with the same write-ahead
discipline as the control-plane journal: each decision event is appended
(and charged) before the in-memory state advances, and ``save_state``
compacts the stream into one snapshot document.

Thinkers that support resume implement two methods:

* ``export_state() -> dict`` — JSON-safe decision state;
* ``restore_state(state) -> None`` — rebuild from it before ``start()``.

``repro.cli resume`` (and :mod:`repro.durable.resume`) then continue a
killed campaign without recomputing completed tasks.
"""

from __future__ import annotations

from repro.durable.journal import Journal

__all__ = ["CampaignCheckpoint"]


class CampaignCheckpoint:
    """A thin campaign-facing wrapper over one :class:`Journal`.

    ``note`` journals a decision event; ``save_state`` snapshots the full
    decision state (compacting the event log); ``load_state`` returns the
    latest snapshot plus the decision events appended after it, which is
    everything a Thinker needs to resume.
    """

    def __init__(self, journal: Journal) -> None:
        self.journal = journal

    def note(self, event: str, **fields) -> None:
        """Durably record one decision event (result seen, retrain
        triggered, steering ratio applied, ...)."""
        self.journal.append(event, **fields)

    def save_state(self, state: dict) -> None:
        """Compact the event stream into one snapshot document."""
        self.journal.snapshot(state)

    def load_state(self) -> tuple[dict | None, list[dict]]:
        """(latest snapshot or None, decision events appended since)."""
        return self.journal.records()
