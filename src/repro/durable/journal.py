"""Write-ahead journal with snapshot compaction.

The cloud tier of the paper's stack (the funcX web service) outlives any
single allocation because its state is durable: a crashed service instance
is replaced and the replacement reads queues and task records back from
storage.  :class:`Journal` reproduces that property for the simulated
control plane: an append-only JSONL log over a simulated durable medium
(:class:`repro.net.fs.FileSystem` or :class:`repro.net.kvstore.KVServer`),
with *fsync points* — each :meth:`Journal.append` charges the medium's
write cost before returning, so the journal entry is on "disk" before the
in-memory mutation it guards becomes visible.

Record format
-------------
One JSON object per line, ``sort_keys=True`` so byte content is
deterministic::

    {"type": "submit", "task_id": "task-s0-00000001", ...}

Payload bytes ride inside records base64-encoded, alongside their nominal
size (``repro.serialize.Blob`` padding makes nominal != len(data)).

Snapshot compaction
-------------------
An unbounded log makes recovery time grow with campaign length, so the
journal supports compaction: :meth:`snapshot` atomically replaces the log
with a single state document; replay is then *snapshot + suffix*.  Install
a snapshot provider and ``compact_every`` to compact automatically every N
appends.
"""

from __future__ import annotations

import base64
import json
import threading
from typing import Callable, Protocol

from repro.exceptions import FileSystemError
from repro.net.fs import FileSystem
from repro.observe import counter_inc
from repro.serialize import Payload

__all__ = [
    "FileJournalBackend",
    "Journal",
    "JournalBackend",
    "KVJournalBackend",
    "decode_payload",
    "encode_payload",
]


def encode_payload(payload: Payload) -> dict:
    """JSON-safe encoding of a :class:`Payload` (bytes + nominal size)."""
    return {
        "b64": base64.b64encode(payload.data).decode("ascii"),
        "nominal": payload.nominal_size,
    }


def decode_payload(doc: dict) -> Payload:
    return Payload(base64.b64decode(doc["b64"]), int(doc["nominal"]))


class JournalBackend(Protocol):
    """A durable medium for one journal: an append-only log plus a
    single snapshot slot.  Implementations charge simulated I/O time on
    every operation — that charge *is* the fsync."""

    def append(self, data: bytes) -> None: ...

    def read_log(self) -> bytes: ...

    def save_snapshot(self, data: bytes) -> None: ...

    def load_snapshot(self) -> bytes | None: ...

    def truncate_log(self) -> None: ...

    def log_bytes(self) -> int: ...


class FileJournalBackend:
    """JSONL log + snapshot file on a :class:`~repro.net.fs.FileSystem`.

    Appends charge only the appended bytes (``FileSystem.append``);
    recovery reads charge the whole log, which is exactly why recovery
    time scales with journal length and compaction matters.
    """

    def __init__(self, fs: FileSystem, prefix: str) -> None:
        self.fs = fs
        self.log_path = f"{prefix}.log"
        self.snapshot_path = f"{prefix}.snap"

    def append(self, data: bytes) -> None:
        self.fs.append(self.log_path, data)

    def read_log(self) -> bytes:
        try:
            return self.fs.read(self.log_path)
        except FileSystemError:
            return b""

    def save_snapshot(self, data: bytes) -> None:
        self.fs.write(self.snapshot_path, data)

    def load_snapshot(self) -> bytes | None:
        try:
            return self.fs.read(self.snapshot_path)
        except FileSystemError:
            return None

    def truncate_log(self) -> None:
        self.fs.delete(self.log_path)

    def log_bytes(self) -> int:
        try:
            return self.fs.size(self.log_path)
        except FileSystemError:
            return 0


class KVJournalBackend:
    """Journal segments as numbered keys in a :class:`KVServer`/``KVClient``.

    Each append allocates a monotonically increasing index via ``incr`` and
    stores the record under ``{prefix}:log:{index}``; the snapshot lives at
    ``{prefix}:snap``.  Works against either a raw :class:`KVServer` (no
    charged latency; the server is passive) or a ``KVClient`` (the caller
    pays the network round trips, the cloud-Redis shape).
    """

    def __init__(self, kv, prefix: str) -> None:
        self.kv = kv
        self.prefix = prefix
        self._count_key = f"{prefix}:count"
        self._snap_key = f"{prefix}:snap"
        self._floor_key = f"{prefix}:floor"

    def append(self, data: bytes) -> None:
        index = self.kv.incr(self._count_key)
        self.kv.set(f"{self.prefix}:log:{index}", data)

    def _bounds(self) -> tuple[int, int]:
        floor = self.kv.get(self._floor_key) or 0
        count = self.kv.get(self._count_key) or 0
        return int(floor), int(count)

    def read_log(self) -> bytes:
        floor, count = self._bounds()
        parts = []
        for index in range(floor + 1, count + 1):
            data = self.kv.get(f"{self.prefix}:log:{index}")
            if data is not None:
                parts.append(data)
        return b"".join(parts)

    def save_snapshot(self, data: bytes) -> None:
        self.kv.set(self._snap_key, data)

    def load_snapshot(self) -> bytes | None:
        return self.kv.get(self._snap_key)

    def truncate_log(self) -> None:
        floor, count = self._bounds()
        for index in range(floor + 1, count + 1):
            self.kv.delete(f"{self.prefix}:log:{index}")
        self.kv.set(self._floor_key, count)

    def log_bytes(self) -> int:
        floor, count = self._bounds()
        total = 0
        for index in range(floor + 1, count + 1):
            data = self.kv.get(f"{self.prefix}:log:{index}")
            if data is not None:
                total += len(data)
        return total


class Journal:
    """An append-only record stream with a snapshot slot.

    ``append`` is the write-ahead primitive: it serializes, charges the
    backend's write cost (the fsync), and only then returns — callers
    perform the guarded in-memory mutation *after* the journal entry is
    durable, so a crash at any instant leaves the journal no further
    behind than one un-applied record (which replay applies) and never
    records a mutation that did not reach the log.
    """

    def __init__(
        self,
        backend: JournalBackend,
        *,
        compact_every: int | None = None,
        name: str = "journal",
    ) -> None:
        if compact_every is not None and compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.backend = backend
        self.name = name
        self.compact_every = compact_every
        self._lock = threading.RLock()
        self._since_snapshot = 0
        self._appends = 0
        self._snapshot_provider: Callable[[], dict] | None = None

    # -- writing ------------------------------------------------------------
    def append(self, record_type: str, **fields) -> dict:
        """Durably append one record; returns the record dict."""
        record = {"type": record_type, **fields}
        data = (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode()
        with self._lock:
            if (
                self.compact_every is not None
                and self._snapshot_provider is not None
                and self._since_snapshot >= self.compact_every
            ):
                # Compact BEFORE appending: the caller has not applied this
                # record to the in-memory state yet, so the provider's
                # snapshot cannot cover it — truncating it away here would
                # lose it.  Snapshot (state = all prior records) + fresh log
                # (this record onward) stays complete.
                self.snapshot(self._snapshot_provider())
            self.backend.append(data)
            self._appends += 1
            self._since_snapshot += 1
            counter_inc("durable.appends", journal=self.name, type=record_type)
        return record

    def set_snapshot_provider(self, provider: Callable[[], dict]) -> None:
        """Install the state-capture callable used for auto-compaction."""
        self._snapshot_provider = provider

    def snapshot(self, state: dict) -> None:
        """Replace the log with a single state document (compaction)."""
        data = json.dumps(state, sort_keys=True, separators=(",", ":")).encode()
        with self._lock:
            self.backend.save_snapshot(data)
            self.backend.truncate_log()
            self._since_snapshot = 0
            counter_inc("durable.snapshots", journal=self.name)

    # -- reading ------------------------------------------------------------
    def records(self) -> tuple[dict | None, list[dict]]:
        """(snapshot state or None, suffix records in append order).

        Reading charges the backend's full log read cost — recovery pays
        for every byte it replays, which is what makes recovery time a
        function of journal length.
        """
        with self._lock:
            snap_data = self.backend.load_snapshot()
            log_data = self.backend.read_log()
        snapshot = json.loads(snap_data) if snap_data else None
        records = [
            json.loads(line) for line in log_data.decode().splitlines() if line.strip()
        ]
        return snapshot, records

    # -- introspection ------------------------------------------------------
    @property
    def appends(self) -> int:
        return self._appends

    def log_bytes(self) -> int:
        return self.backend.log_bytes()
