"""Crash recovery: rebuild a :class:`FaasCloud` from snapshot + log replay.

The recovery contract (funcX's "the cloud outlives the process" property):

* **Zero lost tasks** — every journaled admission is reconstructed; tasks
  that were WAITING re-enter their queues, tasks that were DISPATCHED when
  the process died are *re-leased* (re-queued at the front of their
  endpoint's queue with a fresh doorbell, exactly like
  ``requeue_dispatched`` after an endpoint crash).
* **Exactly-once results** — replay dedupes against the task ledger: the
  first journaled terminal record for a task wins, later ones (a duplicate
  report that lost the in-memory re-check just before the crash, or a
  double-replayed segment) are dropped and counted in ``durable.deduped``.
  Re-executed re-leased tasks are deduped *post*-recovery by the existing
  ``report_result`` terminal re-check.
* **Notifications are re-established at the acked frontier** — the bus is
  shared fabric that survives the shard crash, so unacked envelopes keep
  redelivering on their own; replay additionally re-pushes every journaled
  terminal result into the completed feed and re-publishes its result
  notification (``durable.renotified``), closing the window where a crash
  fell between the result fsync and the bus publish.  Clients drop
  duplicates via their pending-table pop.

Replay pays the journal backend's read charges, so recovery time is a real
function of journal length — ``durable.recovery_s`` is the histogram the
durability benchmark plots against log size, and the argument for snapshot
compaction.

Tenant-usage reconciliation: the usage registry lives outside the shard and
survives the crash with correct pre-crash state, so replay re-applies *no*
historical transitions; the only usage call it makes is ``task_requeued``
for re-leased in-flight tasks (whose queued bytes really do re-enter a
queue).  A crash that lands inside another thread's report window can skew
one task's accounting transiently; the registry clamps at zero, and no
task is ever lost or duplicated by it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.durable.journal import decode_payload as _decode
from repro.exceptions import WorkflowError
from repro.observe import counter_inc, observe

__all__ = ["RecoveryReport", "recover_cloud"]


@dataclass
class RecoveryReport:
    """What one journal replay did."""

    replayed: int = 0  # journal records applied (snapshot rows included)
    deduped: int = 0  # duplicate/stale records dropped
    released: int = 0  # in-flight-at-crash tasks re-leased to queues
    renotified: int = 0  # terminal results re-pushed to feed + bus
    recovery_s: float = 0.0  # nominal seconds the replay took


def _snapshot_records(state: dict):
    """Flatten a snapshot document into the equivalent record stream, so
    snapshot + log suffix replay through one loop."""
    for doc in state.get("functions", []):
        yield {"type": "func", **doc}
    for doc in state.get("endpoints", []):
        yield {"type": "endpoint", **doc}
    for doc in state.get("tasks", []):
        yield {"type": "task", **doc}
    for doc in state.get("deadletters", []):
        yield {"type": "deadletter", "op": "add", "entry": doc}


def _expand_batches(stream):
    """Fan a batched WAL record out into its per-task records.

    ``submit_batch``/``result_batch`` amortize the fsync but each task doc
    inside them is a complete admission/outcome record — expanding here
    means a mid-batch crash replays every member through the exact same
    dedupe logic as its singular form, exactly once."""
    for record in stream:
        rtype = record["type"]
        if rtype == "submit_batch":
            for doc in record["tasks"]:
                yield {
                    "type": "submit",
                    "client_id": record["client_id"],
                    "tenant": record["tenant"],
                    **doc,
                }
        elif rtype == "result_batch":
            for doc in record["results"]:
                yield {
                    "type": "result",
                    "endpoint_id": record["endpoint_id"],
                    **doc,
                }
        else:
            yield record


def recover_cloud(cloud, journal=None) -> RecoveryReport:
    """Replay ``journal`` into a freshly constructed ``cloud``.

    ``cloud`` must be empty (no tasks) and share the pre-crash instance's
    delivery fabric: the same bus, completed feed, usage registry, network,
    and id namespace.  Replay reconstructs registry/queue/store state
    directly — it never re-enters the journaling API paths, so recovering
    with the same journal attached does not re-append what it reads.
    """
    from repro.faas.cloud import (
        TaskRecord,
        TaskStatus,
        result_topic,
        task_topic,
    )

    journal = journal if journal is not None else cloud.journal
    if journal is None:
        raise WorkflowError("cannot recover: the cloud has no journal attached")
    started = cloud.clock.now()
    report = RecoveryReport()
    snapshot, log = journal.records()  # charges the full log read: the axis
    stream = list(_snapshot_records(snapshot)) if snapshot else []
    stream.extend(log)
    stream = list(_expand_batches(stream))

    next_id = int(snapshot.get("next_id", 0)) if snapshot else 0
    releases: list[TaskRecord] = []
    renotify: list[TaskRecord] = []

    for record in stream:
        rtype = record["type"]
        if rtype == "func":
            payload = _decode(record["payload"])
            with cloud._lock:
                cloud._functions[record["func_id"]] = payload
                cloud._function_tenants[record["func_id"]] = record["tenant"]
        elif rtype == "endpoint":
            site = cloud.network.site(record["site"])
            with cloud._lock:
                endpoint_id = record["endpoint_id"]
                cloud._endpoints[endpoint_id] = site
                cloud._endpoint_online.setdefault(endpoint_id, False)
                cloud._queues.setdefault(endpoint_id, {})
                cloud._failover_groups[endpoint_id] = record["failover_group"]
        elif rtype in ("task", "submit"):
            task_id = record["task_id"]
            next_id = max(next_id, cloud.task_id_index(task_id) + 1)
            with cloud._queue_cond:
                if task_id in cloud._tasks:
                    report.deduped += 1  # double-replayed segment
                    continue
                args = _decode(record["args"]) if "args" in record else None
                task = TaskRecord(
                    task_id=task_id,
                    func_id=record["func_id"],
                    endpoint_id=record["endpoint_id"],
                    client_id=record["client_id"],
                    args_locator=record["locator"],
                    status=TaskStatus(record.get("status", "WAITING")),
                    submitted_at=record.get("submitted_at") or 0.0,
                    fetched_at=record.get("fetched_at"),
                    completed_at=record.get("completed_at"),
                    chaos_key=record.get("chaos_key"),
                    requeues=int(record.get("requeues", 0)),
                    previous_endpoints=list(record.get("previous_endpoints", [])),
                    tenant=record.get("tenant", "default"),
                    args_nbytes=args.nominal_size if args is not None else 0,
                    deadline_at=record.get("deadline_at"),
                    fingerprint=record.get("fingerprint"),
                )
                if args is not None:
                    cloud.store.adopt(record["locator"], args)
                if "result_locator" in record and "result" in record:
                    task.result_locator = record["result_locator"]
                    cloud.store.adopt(
                        record["result_locator"],
                        _decode(record["result"]),
                        chaos_exempt=bool(record.get("result_exempt", False)),
                    )
                cloud._tasks[task_id] = task
                if task.status is TaskStatus.WAITING:
                    cloud._tenant_queue_locked(task.endpoint_id, task.tenant).append(
                        task_id
                    )
        elif rtype == "dispatch":
            with cloud._queue_cond:
                for task_id in record["task_ids"]:
                    task = cloud._tasks.get(task_id)
                    if task is None or task.status.terminal:
                        report.deduped += 1
                        continue
                    queue = cloud._queues.get(task.endpoint_id, {}).get(task.tenant)
                    if queue is not None:
                        try:
                            queue.remove(task_id)
                        except ValueError:
                            pass
                    task.status = TaskStatus.DISPATCHED
                    task.fetched_at = record.get("at")
        elif rtype == "result":
            with cloud._queue_cond:
                task = cloud._tasks.get(record["task_id"])
                if task is None or task.status.terminal:
                    # Ledger dedupe: the first terminal record won; this is
                    # a duplicate report or a double-replayed segment.
                    report.deduped += 1
                    continue
                queue = cloud._queues.get(task.endpoint_id, {}).get(task.tenant)
                if queue is not None:
                    try:
                        queue.remove(record["task_id"])
                    except ValueError:
                        pass
                task.result_locator = record["locator"]
                cloud.store.adopt(
                    record["locator"],
                    _decode(record["payload"]),
                    chaos_exempt=bool(record.get("exempt", False)),
                )
                task.status = (
                    TaskStatus.SUCCESS if record["success"] else TaskStatus.FAILED
                )
                task.completed_at = record.get("at")
        elif rtype == "deadletter":
            # Quarantine survives the crash: replay re-installs (or, for a
            # journaled retry/drop, releases) the dead-letter entry.  A
            # cloud recovered without a poison tracker simply has no
            # quarantine to rebuild — the records are skipped, not fatal.
            if cloud.poison is not None:
                from repro.resilience.deadletter import DeadLetterEntry

                entry = DeadLetterEntry.from_record(record["entry"])
                if record.get("op", "add") == "add":
                    cloud.poison.restore(entry)
                else:
                    cloud.poison.remove(entry.tenant, entry.fingerprint)
            else:
                report.deduped += 1
        else:
            raise WorkflowError(f"unknown journal record type {rtype!r}")
        report.replayed += 1

    # Reconcile the rebuilt ledger: re-lease what was in flight at the
    # crash, re-notify what was terminal (the bus subscription frontier is
    # broker-side state and survived; these publishes cover fsync-to-notify
    # crash windows, and clients dedupe).
    with cloud._queue_cond:
        cloud._ids = itertools.count(next_id)
        for task in cloud._tasks.values():
            if task.status is TaskStatus.DISPATCHED:
                task.status = TaskStatus.WAITING
                task.fetched_at = None
                task.requeues += 1
                cloud._tenant_queue_locked(task.endpoint_id, task.tenant).appendleft(
                    task.task_id
                )
                releases.append(task)
            elif task.status.terminal:
                renotify.append(task)
        if releases:
            cloud._queue_cond.notify_all()
    renotify.sort(key=lambda t: t.task_id)
    with cloud._completed.cond:
        for task in renotify:
            cloud._completed.push_locked(task.client_id, task.task_id)
    for task in releases:
        if cloud.usage is not None:
            cloud.usage.task_requeued(task.tenant, task.args_nbytes)
        cloud.bus.publish(
            task_topic(task.endpoint_id),
            task.task_id,
            chaos_key=task.chaos_key or task.task_id,
        )
    for task in renotify:
        cloud.bus.publish(
            result_topic(task.client_id),
            task.task_id,
            chaos_key=task.chaos_key or task.task_id,
        )
    if cloud._on_enqueue is not None and (releases or renotify):
        cloud._on_enqueue()

    report.released = len(releases)
    report.renotified = len(renotify)
    report.recovery_s = cloud.clock.now() - started
    shard = cloud.shard_id or "solo"
    counter_inc("durable.recoveries", shard=shard)
    counter_inc("durable.replayed", report.replayed, shard=shard)
    if report.deduped:
        counter_inc("durable.deduped", report.deduped, shard=shard)
    if report.released:
        counter_inc("durable.releases", report.released, shard=shard)
    if report.renotified:
        counter_inc("durable.renotified", report.renotified, shard=shard)
    observe("durable.recovery_s", report.recovery_s, shard=shard)
    return report
