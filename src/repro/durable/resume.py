"""Crash-and-resume harness for campaigns (``repro.cli resume``).

Runs a campaign that is **killed** after a configured number of results
(the Thinker journals every decision event to a :class:`CampaignCheckpoint`
first), then resumes it from the journal with a fresh workflow stack and
runs to completion.  The proof obligations:

* **No recomputation** — the resumed run simulates strictly fewer
  molecules than the full budget; journaled results re-enter the decision
  database without re-entering the task fabric.
* **Determinism** — the resumed campaign's final decision ledger hashes
  bit-identically to an uninterrupted run of the same seed
  (``verify_determinism=True`` runs that control and compares digests).

The digest covers the *decision ledger* — the sorted (molecule, IP) pairs
plus the success threshold — not timestamps or schedule-dependent
orderings: the oracle derives each IP from ``seed + molecule_index`` alone,
so the ledger is a pure function of which molecules were chosen, which is
exactly what resume must preserve.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.durable.checkpoint import CampaignCheckpoint
from repro.durable.journal import FileJournalBackend, Journal
from repro.net.fs import FileSystem

__all__ = ["ResumeReport", "ledger_digest", "run_resumable_moldesign"]


@dataclass
class ResumeReport:
    """What one crash-and-resume cycle did."""

    crashed_simulations: int  # results the killed run consumed (journaled)
    resumed_simulations: int  # simulations the resumed run actually ran
    n_simulated: int  # final decision-database size
    n_found: int
    threshold: float
    digest: str  # resumed run's ledger digest
    uninterrupted_digest: str | None = None  # control run's (if verified)

    @property
    def deterministic(self) -> bool:
        return (
            self.uninterrupted_digest is None
            or self.digest == self.uninterrupted_digest
        )


def ledger_digest(database: dict[int, float], threshold: float) -> str:
    """Hash the decision ledger: sorted (molecule, IP) pairs + threshold.

    ``repr`` of the exact floats — journal round-trips are exact (JSON
    shortest-repr floats), so crash/resume must reproduce these bits."""
    items = sorted((int(k), float(v)) for k, v in database.items())
    blob = repr((items, float(threshold))).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def run_resumable_moldesign(
    workflow: str = "funcx+globus",
    config=None,
    *,
    seed: int = 0,
    crash_after_results: int = 8,
    verify_determinism: bool = False,
    journal: Journal | None = None,
    join_timeout: float | None = 600.0,
) -> ResumeReport:
    """Kill a moldesign campaign mid-flight, resume it, audit the ledger.

    The default config disables retraining (``retrain_after`` above the
    simulation budget): the resumed Thinker recomputes its ranking from the
    seed, so determinism of the final ledger only holds when no
    schedule-dependent UCB reorder happened before the crash.  Pass a
    retraining config only if you accept a weaker (count-level) guarantee.
    """
    from repro.apps.moldesign.campaign import run_moldesign_campaign
    from repro.apps.moldesign.config import MolDesignConfig

    if config is None:
        config = MolDesignConfig(
            n_molecules=200,
            n_initial=8,
            max_simulations=24,
            retrain_after=10_000,  # never triggers: the determinism regime
            sim_duration=4.0,
        )
    if not 0 < crash_after_results < config.max_simulations:
        raise ValueError(
            f"crash_after_results must be in (0, {config.max_simulations}), "
            f"got {crash_after_results}"
        )
    if journal is None:
        wal = FileSystem("campaign-wal", op_latency=2e-3)
        journal = Journal(FileJournalBackend(wal, "moldesign"), name="moldesign")
    checkpoint = CampaignCheckpoint(journal)

    crashed = run_moldesign_campaign(
        workflow,
        config,
        seed=seed,
        join_timeout=join_timeout,
        checkpoint=checkpoint,
        crash_after_results=crash_after_results,
    )
    resumed = run_moldesign_campaign(
        workflow,
        config,
        seed=seed,
        join_timeout=join_timeout,
        checkpoint=checkpoint,
        resume=True,
    )
    digest = ledger_digest(resumed.database, resumed.threshold)

    uninterrupted_digest = None
    if verify_determinism:
        control = run_moldesign_campaign(
            workflow, config, seed=seed, join_timeout=join_timeout
        )
        uninterrupted_digest = ledger_digest(control.database, control.threshold)

    return ResumeReport(
        crashed_simulations=len(crashed.database),
        resumed_simulations=len(resumed.results.get("simulate", [])),
        n_simulated=resumed.n_simulated,
        n_found=resumed.n_found,
        threshold=resumed.threshold,
        digest=digest,
        uninterrupted_digest=uninterrupted_digest,
    )
