"""repro.elastic — autoscaling pilot-job endpoints.

Elastic worker pools (:class:`ElasticWorkerPool`) that grow, shrink, and
scale to zero at runtime; an :class:`Autoscaler` loop that drives them from
queue-depth/utilization/backlog signals with event-driven scale-from-zero
over the notification bus; and a :class:`SteeringPolicy` that lets Thinkers
re-divide worker capacity between task types mid-campaign.
"""

from repro.elastic.autoscaler import (
    AutoscaleDecision,
    AutoscalePolicy,
    Autoscaler,
    render_pool_table,
)
from repro.elastic.pool import ElasticWorkerPool
from repro.elastic.steering import SteeringEvent, SteeringPolicy, apportion

__all__ = [
    "AutoscaleDecision",
    "AutoscalePolicy",
    "Autoscaler",
    "ElasticWorkerPool",
    "SteeringEvent",
    "SteeringPolicy",
    "apportion",
    "render_pool_table",
]
