"""The autoscaler control loop: demand signals in, grow/drain decisions out.

One :class:`Autoscaler` watches one endpoint and drives its
:class:`~repro.elastic.pool.ElasticWorkerPool`.  Demand is read from the
canonical signals the rest of the stack already exports — the endpoint's
:meth:`~repro.faas.endpoint.FaasEndpoint.utilization` snapshot (local queue
depth, active/idle workers) plus the cloud-side per-tenant backlog
(:meth:`FaasCloud.tenant_backlog`, summed across shards by the router) —
so the autoscaler never recomputes state the endpoint or control plane
already knows.

Scale-to-zero is event-driven: when the pool is empty the loop parks on its
*own* bus subscription to the endpoint's doorbell topic (subscriber id
``<endpoint>:autoscaler``), so an idle endpoint costs no polls at all.  The
first doorbell after going dormant re-provisions the pool and arms
time-to-first-task tracking (``autoscale.time_to_first_task_s``).

Every decision is recorded (``autoscale.decisions{action=}``) and kept on
``Autoscaler.decisions`` for the CLI and benchmarks.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import SubscriptionLapsedError
from repro.net.clock import Clock, get_clock
from repro.net.context import SiteThread
from repro.observe import counter_inc, gauge_set
from repro.elastic.pool import ElasticWorkerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faas.endpoint import FaasEndpoint

__all__ = ["AutoscalePolicy", "AutoscaleDecision", "Autoscaler", "render_pool_table"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs for one endpoint's scaling loop (nominal seconds throughout)."""

    min_workers: int = 0
    max_workers: int = 8
    #: Queued+active tasks one worker is expected to absorb; demand above
    #: ``current * target_tasks_per_worker`` triggers a grow.
    target_tasks_per_worker: float = 2.0
    scale_up_step: int = 2
    scale_down_step: int = 1
    #: How long the pool must sit idle (no demand, no active work) before a
    #: shrink step, and before releasing everything (scale-to-zero).
    idle_grace: float = 10.0
    zero_grace: float = 30.0
    scale_to_zero: bool = True
    #: Loop period and the minimum spacing between grow decisions.
    interval: float = 2.0
    cooldown: float = 4.0
    #: Workers provisioned on the first doorbell after going dormant.
    wake_workers: int = 1

    def __post_init__(self) -> None:
        if self.min_workers < 0 or self.max_workers < max(1, self.min_workers):
            raise ValueError("need 0 <= min_workers <= max_workers, max >= 1")
        if self.target_tasks_per_worker <= 0:
            raise ValueError("target_tasks_per_worker must be positive")
        if self.interval <= 0 or self.idle_grace < 0 or self.zero_grace < 0:
            raise ValueError("intervals must be positive, graces non-negative")


@dataclass
class AutoscaleDecision:
    at: float
    action: str  # "grow" | "shrink" | "to_zero" | "wake"
    reason: str
    workers: int  # pool size after the decision


class Autoscaler:
    """Control loop scaling one endpoint's elastic pool on demand signals."""

    def __init__(
        self,
        endpoint: "FaasEndpoint",
        *,
        policy: AutoscalePolicy | None = None,
        clock: Clock | None = None,
    ) -> None:
        pool = endpoint.pool
        if not isinstance(pool, ElasticWorkerPool):
            raise TypeError(
                f"autoscaler needs an ElasticWorkerPool, got {type(pool).__name__}"
            )
        self.endpoint = endpoint
        self.pool = pool
        self.policy = policy or AutoscalePolicy()
        self._clock = clock or get_clock()
        self._running = False
        self._thread: SiteThread | None = None
        self._stop_evt = threading.Event()
        self.decisions: list[AutoscaleDecision] = []
        self._last_grow_at: float | None = None
        self._idle_since: float | None = None
        self._dormant = False
        # A private doorbell subscription: this is what lets a dormant
        # endpoint cost nothing — no poll loop, just a blocking receive.
        from repro.bus.consumer import BusConsumer
        from repro.faas.cloud import task_topic

        self._consumer = BusConsumer(
            endpoint.cloud.bus,
            task_topic(endpoint.endpoint_id),
            f"{endpoint.endpoint_id}:autoscaler",
            role="autoscaler",
            chaos_label=f"{endpoint.name}:autoscaler",
            clock=self._clock,
        )

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "Autoscaler":
        if self._running:
            return self
        self._running = True
        self._stop_evt.clear()
        self._thread = SiteThread(
            self.endpoint.site,
            target=self._loop,
            name=f"autoscaler-{self.endpoint.name}",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._stop_evt.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._consumer.close()

    @property
    def last_decision(self) -> AutoscaleDecision | None:
        return self.decisions[-1] if self.decisions else None

    @property
    def wake_latencies(self) -> list[float]:
        return self.pool.wake_latencies

    # -- the loop ------------------------------------------------------------
    def _loop(self) -> None:
        while self._running:
            if self._dormant:
                woke = self._await_doorbell()
                if not self._running:
                    return
                if woke:
                    self._wake()
                    continue
            else:
                self._drain_doorbells()
                self._stop_evt.wait(
                    self._clock.wall_timeout(self.policy.interval) or 0.05
                )
            if not self._running:
                return
            self._evaluate()

    def _receive(self, timeout: float):
        try:
            return self._consumer.receive(timeout=timeout)
        except SubscriptionLapsedError:
            self._consumer.resubscribe()
            return []

    def _await_doorbell(self) -> bool:
        """Dormant wait: block on the bus for up to one interval; True when
        a doorbell (new work) arrived."""
        envelopes = self._receive(timeout=self.policy.interval)
        for envelope in envelopes:
            self._consumer.done(envelope)
        if envelopes:
            return True
        # Belt and braces: demand that slipped past the bus (e.g. a trimmed
        # window) still wakes the pool via the polled backlog signal.
        return self._demand() > 0

    def _drain_doorbells(self) -> None:
        """While workers exist the endpoint consumes its own doorbells; ack
        ours without blocking so the redelivery window stays trimmed."""
        for envelope in self._receive(timeout=0.0):
            self._consumer.done(envelope)

    def _demand(self) -> int:
        """Outstanding work visible anywhere: local pool queue + active
        closures + the cloud-side backlog across every tenant and shard."""
        util = self.endpoint.utilization()
        backlog = self.endpoint.cloud.queue_depth(self.endpoint.endpoint_id)
        return util.queue_depth + util.active + backlog

    def _evaluate(self) -> None:
        policy = self.policy
        now = self._clock.now()
        demand = self._demand()
        current = self.pool.size
        gauge_set("autoscale.demand", demand, endpoint=self.endpoint.name)
        if demand > 0:
            self._idle_since = None
        elif self._idle_since is None:
            self._idle_since = now

        desired = math.ceil(demand / policy.target_tasks_per_worker)
        desired = max(policy.min_workers, min(policy.max_workers, desired))

        if desired > current:
            if (
                self._last_grow_at is not None
                and now - self._last_grow_at < policy.cooldown
            ):
                return
            step = min(policy.scale_up_step, desired - current)
            self.pool.grow(step)
            self._last_grow_at = now
            self._record("grow", f"demand={demand} workers={current}->{current + step}")
            return

        if current == 0:
            self._dormant = True
            return
        if demand > 0 or self.pool.active_count > 0 or self._idle_since is None:
            return
        idle_for = now - self._idle_since
        zeroable = policy.scale_to_zero and policy.min_workers == 0
        # With scale-to-zero on, ordinary shrinks stop at one worker; the
        # final release is always an explicit "to_zero" after zero_grace.
        floor = 1 if zeroable else policy.min_workers
        if zeroable and idle_for >= policy.zero_grace:
            self.pool.drain(current)
            self._dormant = True
            self._record("to_zero", f"idle {idle_for:.1f}s, released {current} workers")
        elif current > floor and idle_for >= policy.idle_grace:
            step = min(policy.scale_down_step, current - floor)
            self.pool.drain(step)
            self._record("shrink", f"idle {idle_for:.1f}s workers={current}->{current - step}")

    def _wake(self) -> None:
        """First doorbell after dormancy: re-provision and arm TTFT."""
        woke_at = self._clock.now()
        self._dormant = False
        self._idle_since = None
        self.pool.mark_wake(woke_at)
        step = max(1, min(self.policy.wake_workers, self.policy.max_workers))
        self.pool.grow(step)
        self._last_grow_at = woke_at
        counter_inc("autoscale.wakes", endpoint=self.endpoint.name)
        self._record("wake", f"doorbell after dormancy, provisioning {step}")

    def _record(self, action: str, reason: str) -> None:
        decision = AutoscaleDecision(
            at=self._clock.now(),
            action=action,
            reason=reason,
            workers=self.pool.size,
        )
        self.decisions.append(decision)
        counter_inc(
            "autoscale.decisions", action=action, endpoint=self.endpoint.name
        )


def render_pool_table(autoscalers: list[Autoscaler]) -> str:
    """Fixed-width per-endpoint pool report (``repro.cli pools``)."""
    headers = (
        "endpoint",
        "workers",
        "active",
        "idle",
        "queue",
        "decisions",
        "last decision",
    )
    rows = []
    for scaler in autoscalers:
        util = scaler.endpoint.utilization()
        last = scaler.last_decision
        last_txt = "-" if last is None else f"{last.action}@{last.at:.1f}s ({last.reason})"
        rows.append(
            (
                scaler.endpoint.name,
                str(scaler.pool.size),
                str(util.active),
                str(util.idle),
                str(util.queue_depth),
                str(len(scaler.decisions)),
                last_txt,
            )
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
