"""Elastic worker pools: pilot jobs that grow, shrink, and scale to zero.

An :class:`ElasticWorkerPool` keeps the :class:`~repro.resources.WorkerPool`
surface (``submit`` / ``queue_depth`` / ``active_count``) so FaaS endpoints
and Parsl executors run on it unchanged, but its workers come and go at
runtime.  Each ``grow(n)`` spawns worker threads that provision *their own*
node share by resizing the pool's shared :class:`BatchJob` in place
(``BatchScheduler.resize``), so capacity arrives incrementally and the
batch-queue wait is paid inside the new worker, never by the caller.
``drain(n)`` retires workers gracefully: in-flight closures finish, queued
closures stay queued for the survivors (or the next scale-up), and the
retired worker returns its nodes on the way out.  Draining to zero releases
the whole allocation — the scale-to-zero state the autoscaler enters when
an endpoint goes idle.

Provisioning is a chaos hook (``scheduler.provision``): a fault spec can
stall or fail a scale-up request, and the pool retries with the shared
:class:`~repro.chaos.policy.RetryPolicy` backoff.  A failed provision only
delays capacity — tasks sit in the pool queue and are never lost.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Callable

from repro.bench.recording import emit
from repro.chaos.plan import chaos_check
from repro.chaos.policy import RetryPolicy
from repro.exceptions import SchedulerError
from repro.net.clock import Clock
from repro.net.context import SiteThread
from repro.net.topology import Site
from repro.observe import counter_inc, gauge_set, observe
from repro.resources.scheduler import BatchScheduler, JobState
from repro.resources.worker import WorkerPool

__all__ = ["ElasticWorkerPool"]

#: Default backoff for retrying failed scale-up requests.
DEFAULT_PROVISION_RETRY = RetryPolicy(max_attempts=4, base_delay=0.5, max_delay=8.0)


class ElasticWorkerPool(WorkerPool):
    """A worker pool whose size is a runtime variable, not a constructor
    argument.  Starts with ``n_workers`` (zero is fine); ``grow``/``drain``
    move it between 0 and ``max_workers``."""

    def __init__(
        self,
        site: Site,
        n_workers: int = 0,
        *,
        name: str = "elastic-pool",
        scheduler: BatchScheduler | None = None,
        nodes_per_worker: int = 1,
        clock: Clock | None = None,
        max_workers: int | None = None,
        provision_retry: RetryPolicy | None = None,
        provision_timeout: float | None = 120.0,
        poll_interval: float = 0.25,
    ) -> None:
        if n_workers < 0:
            raise ValueError("n_workers must be non-negative")
        super().__init__(
            site,
            max(1, n_workers),
            name=name,
            scheduler=scheduler,
            nodes_per_worker=nodes_per_worker,
            clock=clock,
        )
        self.n_workers = n_workers
        self.max_workers = max_workers
        self._retry = provision_retry or DEFAULT_PROVISION_RETRY
        self._provision_timeout = provision_timeout
        self._poll_interval = poll_interval
        self._elock = threading.Lock()
        self._job_cond = threading.Condition(self._elock)
        self._job_creating = False
        self._worker_ids = itertools.count()
        self._workers: dict[int, SiteThread] = {}
        self._online: set[int] = set()
        self._online_at: dict[int, float] = {}
        self._retire = 0
        #: Node-seconds accumulated by departed workers (live workers are
        #: added on top by :meth:`node_seconds_total`).
        self.node_seconds = 0.0
        self._wake_mark: float | None = None
        #: Time-to-first-task samples recorded after each scale-from-zero.
        self.wake_latencies: list[float] = []

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ElasticWorkerPool":
        if self._running:
            return self
        self._running = True
        if self.n_workers:
            self.grow(self.n_workers)
        return self

    def stop(self, *, drain: bool = True) -> list[Callable[[], None]]:
        if not self._running:
            return []
        if drain and self.queue_depth > 0 and not self._workers:
            # Nobody left to run the backlog: wake one worker for the drain.
            self.grow(1)
        with self._elock:
            self._running = False
            self._retire = 0
            live = list(self._workers.values())
        pending: list[Callable[[], None]] = []
        if not drain:
            while True:
                try:
                    work = self._queue.get_nowait()
                except queue.Empty:
                    break
                if work is not None:
                    pending.append(work)
        for _ in live:
            self._queue.put(None)
        for thread in live:
            thread.join(timeout=10)
        with self._job_cond:
            job = self._job
            self._job = None
        if self._scheduler is not None and job is not None:
            self._scheduler.release(job)
        self._publish_workers()
        return pending

    # -- elasticity ----------------------------------------------------------
    @property
    def size(self) -> int:
        """Live workers, counting ones still provisioning, minus pending
        retirements."""
        with self._elock:
            return max(0, len(self._workers) - self._retire)

    @property
    def online_count(self) -> int:
        """Workers that finished provisioning and hold nodes."""
        with self._elock:
            return len(self._online)

    @property
    def idle_count(self) -> int:
        return max(0, self.online_count - self.active_count)

    def grow(self, n: int) -> list[int]:
        """Add ``n`` workers; returns their indices immediately.  Each new
        worker provisions its node share inside its own thread, so the
        batch-queue wait never blocks the caller.  Pending retirements are
        cancelled first — a grow right after a drain reclaims the workers
        that have not exited yet."""
        if n <= 0:
            return []
        with self._elock:
            if not self._running:
                raise RuntimeError(f"worker pool {self.name!r} is not running")
            reclaimed = min(self._retire, n)
            self._retire -= reclaimed
            spawn = n - reclaimed
            if self.max_workers is not None:
                room = self.max_workers - (len(self._workers) - self._retire)
                spawn = max(0, min(spawn, room))
            indices = [next(self._worker_ids) for _ in range(spawn)]
            threads = []
            for idx in indices:
                thread = SiteThread(
                    self.site,
                    target=self._elastic_worker,
                    args=(idx,),
                    name=f"{self.name}-worker-{idx}",
                )
                self._workers[idx] = thread
                threads.append(thread)
        for thread in threads:
            thread.start()
        if indices or reclaimed:
            counter_inc("pool.grows", pool=self.name)
        self._publish_workers()
        return indices

    def drain(self, n: int) -> int:
        """Retire up to ``n`` workers gracefully; returns how many were
        claimed.  Each retiring worker finishes its in-flight closure, puts
        nothing back, and leaves queued closures on the queue for the
        survivors (or for the next ``grow``)."""
        with self._elock:
            claimable = len(self._workers) - self._retire
            claimed = max(0, min(n, claimable))
            self._retire += claimed
        if claimed:
            counter_inc("pool.drains", pool=self.name)
        return claimed

    def mark_wake(self, at: float | None = None) -> None:
        """Arm time-to-first-task tracking: the next closure to *start*
        records ``now - at`` as ``autoscale.time_to_first_task_s``."""
        with self._elock:
            self._wake_mark = self._clock.now() if at is None else at

    def node_seconds_total(self) -> float:
        """Node-seconds consumed so far, including live workers."""
        now = self._clock.now()
        with self._elock:
            live = sum(now - t for t in self._online_at.values())
            return self.node_seconds + live * self._nodes_per_worker

    # -- worker internals ----------------------------------------------------
    def _elastic_worker(self, idx: int) -> None:
        try:
            if not self._provision(idx):
                return
            wall = max(0.005, self._clock.wall_timeout(self._poll_interval) or 0.05)
            while True:
                with self._elock:
                    if self._retire > 0:
                        self._retire -= 1
                        return
                try:
                    work = self._queue.get(timeout=wall)
                except queue.Empty:
                    continue
                if work is None:
                    return
                self._execute(idx, work)
        finally:
            self._depart(idx)

    def _execute(self, idx: int, work: Callable[[], None]) -> None:
        with self._elock:
            mark, self._wake_mark = self._wake_mark, None
        if mark is not None:
            ttft = self._clock.now() - mark
            self.wake_latencies.append(ttft)
            observe("autoscale.time_to_first_task_s", ttft, pool=self.name)
        try:
            super()._execute(idx, work)
        finally:
            self._publish_workers()

    def _provision(self, idx: int) -> bool:
        """Acquire this worker's nodes, retrying injected/real scheduler
        failures with backoff.  Returns False once retries are exhausted —
        the worker departs and the autoscaler's next pass tops the pool
        back up; queued tasks are untouched either way."""
        base_key = f"{self.name}|w{idx}"
        attempt = 0
        while True:
            key = base_key if attempt == 0 else f"{base_key}#a{attempt}"
            err: Exception | None = None
            spec = chaos_check(
                "scheduler.provision",
                key,
                attempt=attempt,
                pool=self.name,
                site=self.site.name,
            )
            if spec is not None:
                if spec.delay:
                    self._clock.sleep(spec.delay)
                err = SchedulerError(
                    f"injected provision fault for worker {idx} of {self.name}"
                )
            else:
                try:
                    self._acquire_nodes()
                except SchedulerError as exc:
                    err = exc
            if err is None:
                now = self._clock.now()
                with self._elock:
                    self._online.add(idx)
                    self._online_at[idx] = now
                counter_inc("pool.provisions", pool=self.name)
                self._publish_workers()
                return True
            if not self._retry.retries_left(attempt):
                counter_inc("autoscale.provision_abandoned", pool=self.name)
                emit(
                    "provision_abandoned",
                    pool=self.name,
                    worker=idx,
                    error=repr(err),
                )
                return False
            counter_inc("autoscale.provision_retries", pool=self.name)
            self._clock.sleep(self._retry.delay_for(attempt, key=base_key))
            attempt += 1

    def _acquire_nodes(self) -> None:
        """Claim ``nodes_per_worker`` nodes by resizing the pool's shared
        batch job (creating it on first use).  Raises SchedulerError on
        timeout or if the job completes mid-wait."""
        if self._scheduler is None:
            return
        npw = self._nodes_per_worker
        while True:
            with self._job_cond:
                job = self._job
                if job is not None and job.state is JobState.RUNNING:
                    pass  # resize below, outside the condition
                elif not self._job_creating:
                    self._job_creating = True
                    job = None
                else:
                    self._job_cond.wait(self._clock.wall_timeout(1.0) or 1.0)
                    continue
            if job is None:
                try:
                    new_job = self._scheduler.submit(
                        npw, timeout=self._provision_timeout
                    )
                finally:
                    with self._job_cond:
                        self._job_creating = False
                        self._job_cond.notify_all()
                with self._job_cond:
                    self._job = new_job
                    self._job_cond.notify_all()
                return
            self._scheduler.resize(job, npw, timeout=self._provision_timeout)
            return

    def _release_nodes(self) -> None:
        if self._scheduler is None:
            return
        with self._job_cond:
            job = self._job
        if job is None:
            return
        try:
            self._scheduler.resize(job, -self._nodes_per_worker)
        except SchedulerError:
            return  # already released (e.g. by stop())
        if job.state is JobState.COMPLETED:
            with self._job_cond:
                if self._job is job:
                    self._job = None

    def _depart(self, idx: int) -> None:
        now = self._clock.now()
        with self._elock:
            self._workers.pop(idx, None)
            was_online = idx in self._online
            if was_online:
                self._online.discard(idx)
                online_at = self._online_at.pop(idx)
                self.node_seconds += (now - online_at) * self._nodes_per_worker
        if was_online:
            self._release_nodes()
        self._publish_workers()

    def _publish_workers(self) -> None:
        online = self.online_count
        active = min(self.active_count, online)
        gauge_set("pool.workers", active, pool=self.name, state="active")
        gauge_set("pool.workers", max(0, online - active), pool=self.name, state="idle")
        gauge_set("pool.queue_depth", self._queue.qsize(), pool=self.name)
