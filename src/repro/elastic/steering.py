"""Task-ratio steering: Thinkers re-divide worker capacity at runtime.

radical.pilot's ``bragg.py`` exemplar kills simulation workers the moment
the learning threshold is reached so training can have their nodes.  The
:class:`SteeringPolicy` here is that lever made first-class: it owns a set
of named :class:`~repro.elastic.pool.ElasticWorkerPool`\\ s sharing one
worker budget, and :meth:`set_ratio` re-apportions the budget to a new
weight vector — draining over-target pools first (freeing their nodes
gracefully: in-flight tasks finish, queued tasks wait for the survivors)
and then growing the under-target ones into the freed room.

Apportionment is largest-remainder with a deterministic name-order
tie-break, so identical weight vectors always produce identical worker
moves — a requirement for chaos-campaign ledger digests to stay
bit-identical.  Every call is recorded as a :class:`SteeringEvent` for the
benchmarks and the CLI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.net.clock import Clock, get_clock
from repro.observe import counter_inc, gauge_set
from repro.elastic.pool import ElasticWorkerPool

__all__ = ["SteeringEvent", "SteeringPolicy", "apportion"]


def apportion(weights: Mapping[str, float], total: int) -> dict[str, int]:
    """Split ``total`` integer slots over ``weights`` by largest remainder.

    Deterministic: exact quotas are floored, then leftover slots go to the
    largest fractional parts, ties broken by name order.  Zero-weight
    entries get zero slots.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative")
    weight_sum = sum(weights.values())
    if weight_sum <= 0:
        raise ValueError("at least one weight must be positive")
    quotas = {name: total * w / weight_sum for name, w in weights.items()}
    shares = {name: math.floor(q) for name, q in quotas.items()}
    leftover = total - sum(shares.values())
    by_remainder = sorted(
        weights, key=lambda name: (-(quotas[name] - shares[name]), name)
    )
    for name in by_remainder[:leftover]:
        shares[name] += 1
    return shares


@dataclass
class SteeringEvent:
    at: float
    weights: dict[str, float]
    targets: dict[str, int]
    moved: int  # workers drained (== grown) by this re-balance
    reason: str = ""


@dataclass
class SteeringPolicy:
    """Runtime re-balancing of one worker budget across task-type pools."""

    pools: dict[str, ElasticWorkerPool]
    total_workers: int
    clock: Clock = field(default_factory=get_clock)
    events: list[SteeringEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.pools:
            raise ValueError("steering needs at least one pool")
        if self.total_workers <= 0:
            raise ValueError("total_workers must be positive")

    def sizes(self) -> dict[str, int]:
        return {name: pool.size for name, pool in self.pools.items()}

    def set_ratio(
        self, weights: Mapping[str, float], *, reason: str = ""
    ) -> dict[str, int]:
        """Re-apportion the worker budget to ``weights`` and apply it.

        Shrinks run before grows so the freed nodes are what the growing
        pools provision into.  Draining is graceful (no task is lost), and
        the whole call is synchronous bookkeeping — the actual worker exits
        and node provisioning proceed in the pools' own threads.
        """
        unknown = set(weights) - set(self.pools)
        if unknown:
            raise KeyError(f"unknown steering pools: {sorted(unknown)}")
        full = {name: float(weights.get(name, 0.0)) for name in self.pools}
        targets = apportion(full, self.total_workers)
        moved = 0
        for name in sorted(self.pools):  # shrink first: free the budget
            delta = targets[name] - self.pools[name].size
            if delta < 0:
                moved += self.pools[name].drain(-delta)
        for name in sorted(self.pools):
            delta = targets[name] - self.pools[name].size
            if delta > 0:
                self.pools[name].grow(delta)
        for name, target in targets.items():
            gauge_set("steer.target_workers", target, pool=self.pools[name].name)
        event = SteeringEvent(
            at=self.clock.now(),
            weights=dict(full),
            targets=dict(targets),
            moved=moved,
            reason=reason,
        )
        self.events.append(event)
        counter_inc("autoscale.steering_events")
        return targets
