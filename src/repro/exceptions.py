"""Exception hierarchy shared across the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch simulator-level failures without also swallowing
programming errors (``TypeError`` and friends propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A site or link referenced in the network topology does not exist."""


class PortPolicyError(ReproError):
    """An operation required an inbound network port a site does not allow.

    This models the deployment constraint at the heart of the paper: HPC
    centers rarely allow services to listen on externally reachable ports,
    which is why the Parsl baseline needs "open ports or a tunnel" while the
    FuncX/Globus stack only makes outbound connections.
    """


class FileSystemError(ReproError):
    """A path was missing or a site attempted to use a non-mounted volume."""


class AuthenticationError(ReproError):
    """A request carried a missing, expired, or malformed credential."""


class AuthorizationError(ReproError):
    """A valid identity lacked the scope or role required for an operation."""


class SerializationError(ReproError):
    """An object could not be serialized or deserialized for transport."""


class PayloadTooLargeError(SerializationError):
    """A payload exceeded a transport's size cap (e.g. FuncX's 10 MB)."""


class TaskError(ReproError):
    """A task failed on a worker; carries the remote traceback text."""

    def __init__(self, message: str, *, remote_traceback: str | None = None):
        super().__init__(message)
        self.remote_traceback = remote_traceback


class DeadlineExceededError(ReproError):
    """A blocking wait elapsed before the awaited event happened."""


#: Deprecated alias for :class:`DeadlineExceededError` (the old name worked
#: around shadowing the builtin ``TimeoutError`` with a trailing underscore).
TimeoutError_ = DeadlineExceededError


class RetryExhaustedError(ReproError):
    """An operation failed on every attempt its retry budget allowed.

    Carries the number of attempts and the last underlying error so callers
    can distinguish "gave up retrying" from a first-try failure.
    """

    def __init__(
        self,
        message: str,
        *,
        attempts: int | None = None,
        last_error: str | None = None,
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class InvalidTenantError(ReproError):
    """A tenant name failed validation (charset/length) or is unknown to the
    control plane; raised at registration/submission time so the mistake
    surfaces where it was made rather than as a later ``KeyError``."""


class InvalidFunctionError(ReproError):
    """A function name failed validation (charset/length) at registration
    time, or a function id does not resolve within the caller's tenant."""


class ThrottledError(ReproError):
    """The control plane rejected a request with a *retryable* throttle
    response (HTTP-429-shaped).  ``retry_after`` is the server's hint, in
    nominal seconds, for when the client should try again; clients are
    expected to back off and resubmit rather than fail the task."""

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class TenantQuotaExceededError(ThrottledError):
    """A tenant hit one of its quotas (in-flight tasks, registered
    functions, queued bytes) or its submit rate limit.  Retryable: quota
    headroom returns as in-flight work completes or the token bucket
    refills."""


class ShardUnavailableError(ThrottledError):
    """The shard that owns the request's partition is restarting or
    otherwise briefly unavailable.  Retryable: the shard's durable state
    (queues, payload store) survives the restart, so a resubmission after
    ``retry_after`` succeeds without losing work."""


class TaskQuarantinedError(ReproError):
    """A task's argument fingerprint was quarantined as a poison task: it
    failed deterministically on a quorum of distinct endpoints and now lives
    in the tenant's dead-letter queue.  Terminal, *not* retryable — retrying
    would burn budget on a task that fails everywhere; an operator must
    ``deadletter retry`` (after fixing the cause) or ``deadletter drop`` it."""

    def __init__(self, message: str, *, fingerprint: str | None = None) -> None:
        super().__init__(message)
        self.fingerprint = fingerprint


class LeaseExpiredError(ReproError):
    """An endpoint acted on a task after its heartbeat lease expired and the
    task was handed to another endpoint (the action must be discarded)."""


class EndpointUnavailableError(ReproError):
    """A FaaS endpoint was offline and the operation could not be queued."""


class SubscriptionLapsedError(ReproError):
    """A bus subscription was dropped (missed heartbeat, forced disconnect,
    redelivery-window overflow); the subscriber must fall back to polling
    and resubscribe, which replays everything after its last ack."""


class TransferError(ReproError):
    """A managed data transfer failed terminally."""


class StoreError(ReproError):
    """A ProxyStore backend operation failed (missing key, evicted, ...)."""


class ProxyResolutionError(StoreError):
    """A proxy's factory could not produce the target object."""


class SchedulerError(ReproError):
    """The batch scheduler rejected a job request."""


class WorkflowError(ReproError):
    """Generic workflow-engine failure (double shutdown, bad method, ...)."""
