"""Federated function-as-a-service (the FuncX substitute)."""

from repro.faas.auth import (
    SCOPE_COMPUTE,
    SCOPE_TRANSFER,
    AuthServer,
    Identity,
    Token,
)
from repro.faas.client import FaasClient, FaasExecutor
from repro.faas.cloud import FaasCloud, TaskDispatch, TaskRecord, TaskStatus
from repro.faas.endpoint import FaasEndpoint

__all__ = [
    "SCOPE_COMPUTE",
    "SCOPE_TRANSFER",
    "AuthServer",
    "Identity",
    "Token",
    "FaasClient",
    "FaasExecutor",
    "FaasCloud",
    "TaskDispatch",
    "TaskRecord",
    "TaskStatus",
    "FaasEndpoint",
]
