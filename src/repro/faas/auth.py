"""Globus-Auth-like identity and access management.

§IV-A1: the security model must support different identity providers per
facility, scoped tokens with short lifetimes, and *delegation* so a workflow
holding a user's consent can call dependent services (FuncX calling Globus
Transfer on the user's behalf) without holding the user's credentials.

This module implements the OAuth2-shaped subset those flows need: identity
registration against named providers, scoped bearer tokens with expiry on
the virtual clock, validation, and dependent-token issuance.  Every cloud
API call in :mod:`repro.faas.cloud` and the task servers validates a token,
so the authN/authZ path is exercised by every experiment.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass, field

from repro.exceptions import AuthenticationError, AuthorizationError
from repro.net.clock import Clock, get_clock

__all__ = ["Identity", "Token", "AuthServer", "SCOPE_COMPUTE", "SCOPE_TRANSFER"]

SCOPE_COMPUTE = "urn:repro:scopes:compute.all"
SCOPE_TRANSFER = "urn:repro:scopes:transfer.all"


@dataclass(frozen=True)
class Identity:
    """A user identity at one provider (e.g. ``ward@anl.gov``)."""

    username: str
    provider: str

    def __str__(self) -> str:
        return f"{self.username}@{self.provider}"


@dataclass(frozen=True)
class Token:
    """A bearer token: opaque value, identity, scopes, expiry."""

    value: str
    identity: Identity
    scopes: frozenset[str]
    expires_at: float
    parent: str | None = None  # value of the token this was delegated from

    def has_scope(self, scope: str) -> bool:
        return scope in self.scopes


@dataclass
class AuthServer:
    """The identity provider + token issuer.

    Lives conceptually in the cloud; latency for auth round trips is folded
    into the API-call costs of the services that validate tokens (validation
    itself is a local introspection against a cached JWKS in real systems).
    """

    default_lifetime: float = 48 * 3600.0
    clock: Clock = field(default_factory=get_clock)
    _identities: dict[str, Identity] = field(default_factory=dict)
    _tokens: dict[str, Token] = field(default_factory=dict)
    _revoked: set[str] = field(default_factory=set)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    # -- identities ---------------------------------------------------------
    def register_identity(self, username: str, provider: str) -> Identity:
        identity = Identity(username, provider)
        with self._lock:
            self._identities[str(identity)] = identity
        return identity

    # -- issuance -------------------------------------------------------------
    def issue_token(
        self,
        identity: Identity,
        scopes: set[str] | frozenset[str],
        lifetime: float | None = None,
    ) -> Token:
        with self._lock:
            if str(identity) not in self._identities:
                raise AuthenticationError(f"unknown identity {identity}")
        token = Token(
            value=secrets.token_hex(16),
            identity=identity,
            scopes=frozenset(scopes),
            expires_at=self.clock.now() + (lifetime or self.default_lifetime),
        )
        with self._lock:
            self._tokens[token.value] = token
        return token

    def delegate(
        self, token: Token, scopes: set[str], lifetime: float | None = None
    ) -> Token:
        """Issue a dependent token, restricted to a subset of the parent's
        scopes — how a service acts on the user's behalf downstream."""
        self.validate(token)
        if not set(scopes) <= set(token.scopes):
            raise AuthorizationError(
                "dependent token may not broaden scopes: "
                f"{set(scopes) - set(token.scopes)} not granted"
            )
        child = Token(
            value=secrets.token_hex(16),
            identity=token.identity,
            scopes=frozenset(scopes),
            expires_at=min(
                self.clock.now() + (lifetime or self.default_lifetime),
                token.expires_at,
            ),
            parent=token.value,
        )
        with self._lock:
            self._tokens[child.value] = child
        return child

    # -- validation -----------------------------------------------------------
    def validate(self, token: Token | None, scope: str | None = None) -> Identity:
        """Check a token; returns the identity or raises."""
        if token is None:
            raise AuthenticationError("no credential supplied")
        with self._lock:
            known = self._tokens.get(token.value)
            revoked = token.value in self._revoked
        if known is None or revoked:
            raise AuthenticationError("credential is unknown or revoked")
        if self.clock.now() >= known.expires_at:
            raise AuthenticationError("credential has expired")
        if scope is not None and not known.has_scope(scope):
            raise AuthorizationError(
                f"token for {known.identity} lacks required scope {scope!r}"
            )
        return known.identity

    def revoke(self, token: Token, *, cascade: bool = True) -> None:
        """Revoke a token and (by default) everything delegated from it."""
        with self._lock:
            self._revoked.add(token.value)
            if cascade:
                frontier = {token.value}
                while frontier:
                    children = {
                        t.value
                        for t in self._tokens.values()
                        if t.parent in frontier and t.value not in self._revoked
                    }
                    self._revoked.update(children)
                    frontier = children
