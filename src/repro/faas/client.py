"""Client SDK for the FaaS platform: futures, executor, notification.

``FaasClient.submit`` serializes arguments, pays the HTTPS round trip, and
returns a ``concurrent.futures.Future``.  A per-client notifier thread
(modeling the SDK's result websocket) blocks on the cloud's completed queue,
downloads result payloads, and completes futures — including converting
remote failures into :class:`repro.exceptions.TaskError` with the remote
traceback attached.

:class:`FaasExecutor` adapts the client to the standard
``concurrent.futures.Executor`` interface, the integration surface FuncX
exposes and Colmena's task server builds on.
"""

from __future__ import annotations

import threading
import uuid
from concurrent.futures import Executor, Future
from typing import Callable

from repro.bench.recording import emit
from repro.exceptions import TaskError
from repro.faas.auth import Token
from repro.faas.cloud import FaasCloud, TaskStatus
from repro.net.clock import Clock, get_clock
from repro.net.context import SiteThread, current_site
from repro.net.topology import Site
from repro.observe import TraceContext, counter_inc, record_span, trace_span
from repro.serialize import deserialize, deserialize_cost, serialize, serialize_cost

__all__ = ["FaasClient", "FaasExecutor"]


class FaasClient:
    """A user's connection to the FaaS cloud from one site."""

    def __init__(
        self,
        cloud: FaasCloud,
        token: Token,
        *,
        site: Site | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.cloud = cloud
        self.token = token
        self.client_id = f"client-{uuid.uuid4().hex[:8]}"
        self._site = site
        self._clock = clock or get_clock()
        self._futures: dict[str, Future] = {}
        self._futures_lock = threading.Lock()
        # Trace context per in-flight task, so the notifier thread can emit
        # download spans into the right trace.
        self._traces: dict[str, TraceContext] = {}
        # Registration cache: holds a strong reference to each function so
        # identity (``is``) stays valid — caching by bare id() would break
        # when CPython reuses a collected object's address.
        self._registered: list[tuple[Callable, str]] = []
        self._running = True
        self._notifier = SiteThread(
            self._home_site(), target=self._notify_loop, name="faas-client-notify"
        )
        self._notifier.start()

    def _home_site(self) -> Site:
        return self._site or current_site() or self.cloud.site

    def _pay_api_call(self) -> None:
        site = self._home_site()
        cost = self.cloud.network.rtt(site, self.cloud.site)
        cost += self.cloud.network._sample(self.cloud.constants.faas_api_latency)
        self._clock.sleep(cost)

    # -- API ------------------------------------------------------------------
    def register_function(self, fn: Callable) -> str:
        """Register a function body with the cloud; idempotent per object."""
        for known, func_id in self._registered:
            if known is fn:
                return func_id
        payload = serialize(fn)
        self._clock.sleep(serialize_cost(payload.nominal_size))
        self._pay_api_call()
        func_id = self.cloud.register_function(self.token, payload)
        self._registered.append((fn, func_id))
        return func_id

    def submit(
        self,
        func_id: str,
        endpoint_id: str,
        /,
        *args: object,
        _trace_ctx: TraceContext | None = None,
        **kwargs: object,
    ) -> Future:
        """Invoke a registered function on an endpoint; returns a future.

        ``_trace_ctx`` (underscored: the name is reserved, never forwarded
        to the function) joins this invocation to an observe trace; the
        context also rides the cloud dispatch record so the endpoint and
        worker side can parent their spans to the same trace.
        """
        with trace_span("cloud.submit", parent=_trace_ctx, endpoint=endpoint_id) as span:
            # Direct SDK use has no task-level context; root the task's
            # trace at this submit span so the endpoint/worker/download
            # spans still join up into one trace.
            ctx = _trace_ctx if _trace_ctx is not None else span.context
            args_payload = serialize((args, kwargs))
            self._clock.sleep(serialize_cost(args_payload.nominal_size))
            self._pay_api_call()
            task_id = self.cloud.submit(
                self.token,
                self.client_id,
                func_id,
                endpoint_id,
                args_payload,
                trace_ctx=ctx,
            )
        counter_inc("faas.api_calls", op="submit")
        future: Future = Future()
        future.task_id = task_id  # type: ignore[attr-defined]
        with self._futures_lock:
            self._futures[task_id] = future
            if ctx is not None:
                self._traces[task_id] = ctx
        return future

    def run(
        self,
        fn: Callable,
        endpoint_id: str,
        /,
        *args: object,
        _trace_ctx: TraceContext | None = None,
        **kwargs: object,
    ) -> Future:
        """Register-if-needed and submit in one call."""
        return self.submit(
            self.register_function(fn),
            endpoint_id,
            *args,
            _trace_ctx=_trace_ctx,
            **kwargs,
        )

    def close(self) -> None:
        self._running = False
        self._notifier.join(timeout=10)

    # -- result delivery -----------------------------------------------------------
    def _notify_loop(self) -> None:
        while self._running:
            task_id = self.cloud.next_completed(self.client_id, timeout=0.25)
            if task_id is None:
                continue
            with self._futures_lock:
                future = self._futures.pop(task_id, None)
                trace_ctx = self._traces.pop(task_id, None)
            if future is None:
                continue  # e.g. a cancelled/unknown task
            # Notification push + result download, charged to the client.
            with trace_span("result.download", parent=trace_ctx):
                site = self._home_site()
                self._clock.sleep(self.cloud.network.latency(self.cloud.site, site))
                status, payload = self.cloud.get_result_payload(self.token, task_id)
                self._clock.sleep(
                    self.cloud.network.transfer_time(
                        self.cloud.site, site, payload.nominal_size
                    )
                )
                emit(
                    "data_transfer",
                    resource=site.name,
                    bytes=payload.nominal_size,
                    via="faas-cloud",
                )
                self._clock.sleep(deserialize_cost(payload.nominal_size))
                body = deserialize(payload)
            if status is TaskStatus.SUCCESS and body.get("success"):
                future.set_result(body["value"])
            else:
                future.set_exception(
                    TaskError(
                        body.get("error", "remote task failed"),
                        remote_traceback=body.get("traceback"),
                    )
                )

    def __enter__(self) -> "FaasClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FaasExecutor(Executor):
    """``concurrent.futures.Executor`` over one (client, endpoint) pair —
    the interface parity FuncX advertises (§IV-B)."""

    def __init__(self, client: FaasClient, endpoint_id: str) -> None:
        self._client = client
        self._endpoint_id = endpoint_id
        self._shutdown = False

    def submit(self, fn: Callable, /, *args: object, **kwargs: object) -> Future:
        if self._shutdown:
            raise RuntimeError("cannot submit to a shut-down executor")
        return self._client.run(fn, self._endpoint_id, *args, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        self._shutdown = True
