"""Client SDK for the FaaS platform: futures, executor, notification, retry.

``FaasClient.submit`` serializes arguments, pays the HTTPS round trip, and
returns a ``concurrent.futures.Future``.  A per-client notifier thread
(modeling the SDK's result websocket) blocks on the cloud's completed queue,
downloads result payloads, and completes futures — including converting
remote failures into :class:`repro.exceptions.TaskError` with the remote
traceback attached.

Hand the client a :class:`repro.chaos.RetryPolicy` and failed attempts are
retried transparently: the notifier resubmits the already-serialized
argument payload under the *same* future after a backoff, so the caller only
ever sees the final outcome (the value, or ``RetryExhaustedError`` once the
budget is spent).  Submission-time rejections (payload cap) retry inline in
``submit``.  Without a policy the original fail-fast semantics are intact.

Two resilience hooks ride the submit path (see DESIGN.md §11).  A
:class:`repro.resilience.HedgePolicy` passed as ``_hedge`` arms *hedged
execution*: when an attempt outlives the client's p95-derived hedge delay,
the notifier launches a speculative duplicate on a different endpoint and
the first successful leg wins — losers are cancelled (or, too late, their
results dropped), reconciled exactly once in ``client.hedges{outcome=}``.
A ``_deadline`` becomes an absolute ``deadline_at`` that rides the task
record end to end; once it passes, retries stop and the future fails with
:class:`~repro.exceptions.DeadlineExceededError` instead of burning budget
on work that can no longer finish.

:class:`FaasExecutor` adapts the client to the standard
``concurrent.futures.Executor`` interface, the integration surface FuncX
exposes and Colmena's task server builds on.
"""

from __future__ import annotations

import hashlib
import threading
import uuid
from concurrent.futures import Executor, Future
from dataclasses import dataclass, field
from typing import Callable

from repro.batch import BatchAccumulator, BatchPolicy, get_reactor
from repro.bench.recording import emit
from repro.bus import BusConsumer
from repro.chaos.policy import RetryPolicy
from repro.exceptions import (
    DeadlineExceededError,
    InvalidFunctionError,
    PayloadTooLargeError,
    ReproError,
    RetryExhaustedError,
    SubscriptionLapsedError,
    TaskError,
    TaskQuarantinedError,
    ThrottledError,
    WorkflowError,
)
from repro.faas.auth import Token
from repro.faas.cloud import FaasCloud, TaskStatus, TaskSubmission, result_topic
from repro.tenancy.tenant import DEFAULT_TENANT, validate_function_name
from repro.net.clock import Clock, get_clock
from repro.net.defaults import (
    CLIENT_CLOSE_TIMEOUT,
    CLIENT_POLL_INTERVAL,
    CLIENT_RECEIVE_INTERVAL,
)
from repro.net.context import SiteThread, current_site
from repro.net.topology import Site
from repro.observe import TraceContext, counter_inc, trace_span
from repro.resilience.hedge import HedgePolicy, LatencyReservoir
from repro.serialize import (
    Payload,
    deserialize,
    deserialize_cost,
    serialize,
    serialize_cost,
)

__all__ = ["FaasClient", "FaasExecutor"]


@dataclass
class _PendingTask:
    """Everything needed to retry one submission under the same future."""

    future: Future
    trace_ctx: TraceContext | None
    func_id: str
    endpoint_id: str
    args_payload: Payload
    attempt: int
    #: Content digest of the argument payload — the stable base for chaos
    #: keys and retry jitter (task ids are allocation-order dependent).
    chaos_base: str
    #: Advisory prefetch hints re-attached on every resubmission, so a
    #: retried task still warms (or re-warms) its target endpoint.
    prefetch: tuple = ()
    #: Clock time of the *first* submission — the anchor for the retry
    #: policy's ``max_elapsed`` wall-clock budget.
    started_at: float = 0.0
    #: Absolute nominal-clock deadline riding every attempt and hedge leg;
    #: once it passes, no retry or hedge is worth launching.
    deadline_at: float | None = None
    #: Hedging policy (``None`` = never hedge) plus the live race group for
    #: the current attempt.  ``leg`` is 0 for the attempt's primary
    #: submission, ``n`` for its n-th speculative duplicate.
    hedge_policy: HedgePolicy | None = None
    hedge: "_HedgeGroup | None" = None
    leg: int = 0
    #: When *this leg* was submitted — the anchor the hedge delay is
    #: measured from, and the start of the latency sample it contributes.
    attempt_at: float = 0.0


@dataclass
class _HedgeGroup:
    """Shared race state for one attempt's legs (primary + hedges).

    All legs complete the same future; the group tracks who is still in
    flight so the first success can cancel the rest, and so an attempt only
    counts as failed once *every* leg has failed (the last error wins).
    Only the notifier thread mutates a group, so no extra lock is needed.
    """

    primary: _PendingTask
    #: Legs still racing, by task id.
    legs: dict[str, _PendingTask] = field(default_factory=dict)
    #: Hedge legs launched for this attempt (primary excluded).
    launched: int = 0
    resolved: bool = False
    last_error: str = "remote task failed"
    last_traceback: str | None = None


class FaasClient:
    """A user's connection to the FaaS cloud from one site."""

    def __init__(
        self,
        cloud: FaasCloud,
        token: Token,
        *,
        site: Site | None = None,
        clock: Clock | None = None,
        retry_policy: RetryPolicy | None = None,
        throttle_policy: RetryPolicy | None = None,
        batch: BatchPolicy | None = None,
        tenant: str = DEFAULT_TENANT,
        use_bus: bool = True,
        chaos_label: str = "client",
        client_id: str | None = None,
        receive_interval: float = CLIENT_RECEIVE_INTERVAL,
        poll_interval: float = CLIENT_POLL_INTERVAL,
        close_timeout: float = CLIENT_CLOSE_TIMEOUT,
    ) -> None:
        self.cloud = cloud
        self.token = token
        self.tenant = tenant
        # A stable ``client_id`` lets a resumed campaign reconnect to the
        # completed feed / result topic of a crashed predecessor and drain
        # the results it never saw.
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:8]}"
        self._receive_interval = receive_interval
        self._poll_interval = poll_interval
        self._close_timeout = close_timeout
        self._site = site
        self._clock = clock or get_clock()
        self._retry_policy = retry_policy
        # Throttle responses (429-shaped ThrottledError) are *always*
        # retried with backoff — the funcX SDK's ThrottledBaseClient
        # behavior — independent of the failure retry policy: a throttle is
        # the service asking the client to wait, not a failed task.
        self._throttle_policy = throttle_policy or RetryPolicy(
            max_attempts=10, base_delay=0.1, max_delay=4.0
        )
        # Adaptive batching (DESIGN.md §12): with a policy, ``submit`` parks
        # submissions in a per-(tenant, endpoint) accumulator and a flush —
        # inline on a size/bytes trigger, or an adaptive hold timer on the
        # shared reactor — pays one API round trip for the whole batch.
        # Without one, every path below is byte-identical to the unbatched
        # client.
        self._batcher = (
            BatchAccumulator(batch, clock=self._clock) if batch is not None else None
        )
        if batch is not None and self._site is None:
            # Pin the home site now: deadline flushes run on the process
            # reactor thread, which carries no site context of its own.
            self._site = self._home_site()
        # In-flight work by task id; a retried attempt re-registers the same
        # _PendingTask (same future) under the new task id.
        self._pending: dict[str, _PendingTask] = {}
        self._futures_lock = threading.Lock()
        # Completion latencies (submit -> result, successful legs only):
        # the sample the hedge delay's p95 quantile is derived from.
        self._latencies = LatencyReservoir()
        # Registration cache: holds a strong reference to each function so
        # identity (``is``) stays valid — caching by bare id() would break
        # when CPython reuses a collected object's address.
        self._registered: list[tuple[Callable, str]] = []
        # Event-driven result delivery: subscribe before the notifier starts
        # (and before any submit) so no completion can slip past the stream.
        # ``_fallback`` flips on when the subscription lapses; the notifier
        # then drains the cloud's completed queue (the poll path) and hands
        # back on resubscribe, which replays from the last acked sequence.
        self._consumer = (
            BusConsumer(
                cloud.bus,
                result_topic(self.client_id),
                self.client_id,
                role="client",
                chaos_label=chaos_label,
                clock=self._clock,
            )
            if use_bus
            else None
        )
        self._fallback = False
        self._running = True
        self._notifier = SiteThread(
            self._home_site(), target=self._notify_loop, name="faas-client-notify"
        )
        self._notifier.start()

    def _home_site(self) -> Site:
        return self._site or current_site() or self.cloud.site

    def _pay_api_call(self) -> None:
        site = self._home_site()
        cost = self.cloud.network.rtt(site, self.cloud.site)
        cost += self.cloud.network._sample(self.cloud.constants.faas_api_latency)
        self._clock.sleep(cost)

    def _cloud_submit(
        self,
        func_id: str,
        endpoint_id: str,
        args_payload: Payload,
        *,
        trace_ctx: TraceContext | None,
        chaos_key: str | None,
        prefetch: tuple,
        deadline_at: float | None = None,
    ) -> str:
        """One cloud submit with transparent throttle backoff.

        A throttle retry re-sends the *same* chaos key (it is the same
        logical submission — the attempt counter is reserved for failure
        retries), waiting at least the server's ``retry_after`` hint."""
        throttle_attempt = 0
        throttle_started = self._clock.now()
        while True:
            self._pay_api_call()
            try:
                return self.cloud.submit(
                    self.token,
                    self.client_id,
                    func_id,
                    endpoint_id,
                    args_payload,
                    tenant=self.tenant,
                    trace_ctx=trace_ctx,
                    chaos_key=chaos_key,
                    prefetch=prefetch,
                    deadline_at=deadline_at,
                )
            except ThrottledError as exc:
                policy = self._throttle_policy
                elapsed = self._clock.now() - throttle_started
                if not policy.retries_left(throttle_attempt, elapsed=elapsed):
                    raise
                counter_inc(
                    "client.throttled", tenant=self.tenant, endpoint=endpoint_id
                )
                self._clock.sleep(
                    max(
                        exc.retry_after,
                        policy.delay_for(throttle_attempt, key=chaos_key or func_id),
                    )
                )
                throttle_attempt += 1

    # -- API ------------------------------------------------------------------
    def register_function(self, fn: Callable, *, name: str | None = None) -> str:
        """Register a function body with the cloud; idempotent per object.

        The registered name defaults to ``fn.__name__`` when that is a
        valid function name (lambdas and exotic callables register
        anonymously)."""
        for known, func_id in self._registered:
            if known is fn:
                return func_id
        if name is None:
            try:
                name = validate_function_name(getattr(fn, "__name__", None))
            except InvalidFunctionError:
                name = None
        payload = serialize(fn)
        self._clock.sleep(serialize_cost(payload.nominal_size))
        self._pay_api_call()
        func_id = self.cloud.register_function(
            self.token, payload, tenant=self.tenant, name=name
        )
        self._registered.append((fn, func_id))
        return func_id

    def submit(
        self,
        func_id: str,
        endpoint_id: str,
        /,
        *args: object,
        _trace_ctx: TraceContext | None = None,
        _prefetch_hints: tuple = (),
        _hedge: HedgePolicy | None = None,
        _deadline: float | None = None,
        **kwargs: object,
    ) -> Future:
        """Invoke a registered function on an endpoint; returns a future.

        ``_trace_ctx`` (underscored: the name is reserved, never forwarded
        to the function) joins this invocation to an observe trace; the
        context also rides the cloud dispatch record so the endpoint and
        worker side can parent their spans to the same trace.
        ``_prefetch_hints`` (same convention) ride the dispatch record so
        the endpoint can warm its site's proxy cache before the task runs.
        ``_hedge`` arms hedged execution for this task (see the module
        docstring); ``_deadline`` is a relative nominal-seconds budget that
        becomes an absolute ``deadline_at`` riding the task record — the
        cloud refuses or expires work past it, and the client stops
        retrying once it lapses.
        """
        with trace_span(
            "cloud.submit", parent=_trace_ctx, endpoint=endpoint_id, tenant=self.tenant
        ) as span:
            # Direct SDK use has no task-level context; root the task's
            # trace at this submit span so the endpoint/worker/download
            # spans still join up into one trace.
            ctx = _trace_ctx if _trace_ctx is not None else span.context
            args_payload = serialize((args, kwargs))
            self._clock.sleep(serialize_cost(args_payload.nominal_size))
            chaos_base = hashlib.sha256(args_payload.data).hexdigest()[:16]
            started_at = self._clock.now()
            deadline_at = None if _deadline is None else started_at + _deadline
            if self._batcher is not None:
                return self._submit_batched(
                    func_id,
                    endpoint_id,
                    args_payload,
                    ctx=ctx,
                    chaos_base=chaos_base,
                    prefetch=tuple(_prefetch_hints),
                    started_at=started_at,
                    deadline_at=deadline_at,
                    hedge=_hedge,
                )
            attempt = 0
            while True:
                try:
                    task_id = self._cloud_submit(
                        func_id,
                        endpoint_id,
                        args_payload,
                        trace_ctx=ctx,
                        chaos_key=f"{chaos_base}#a{attempt}",
                        prefetch=tuple(_prefetch_hints),
                        deadline_at=deadline_at,
                    )
                    break
                except PayloadTooLargeError:
                    policy = self._retry_policy
                    elapsed = self._clock.now() - started_at
                    if policy is None or not policy.retries_left(
                        attempt, elapsed=elapsed
                    ):
                        raise
                    counter_inc("client.submit_retries", endpoint=endpoint_id)
                    self._clock.sleep(policy.delay_for(attempt, key=chaos_base))
                    attempt += 1
        counter_inc("faas.api_calls", op="submit")
        future: Future = Future()
        future.task_id = task_id  # type: ignore[attr-defined]
        pending = _PendingTask(
            future=future,
            trace_ctx=ctx,
            func_id=func_id,
            endpoint_id=endpoint_id,
            args_payload=args_payload,
            attempt=attempt,
            chaos_base=chaos_base,
            prefetch=tuple(_prefetch_hints),
            started_at=started_at,
            deadline_at=deadline_at,
            hedge_policy=_hedge,
            attempt_at=self._clock.now(),
        )
        with self._futures_lock:
            self._pending[task_id] = pending
        return future

    def run(
        self,
        fn: Callable,
        endpoint_id: str,
        /,
        *args: object,
        _trace_ctx: TraceContext | None = None,
        _prefetch_hints: tuple = (),
        _hedge: HedgePolicy | None = None,
        _deadline: float | None = None,
        **kwargs: object,
    ) -> Future:
        """Register-if-needed and submit in one call."""
        return self.submit(
            self.register_function(fn),
            endpoint_id,
            *args,
            _trace_ctx=_trace_ctx,
            _prefetch_hints=_prefetch_hints,
            _hedge=_hedge,
            _deadline=_deadline,
            **kwargs,
        )

    # -- adaptive batching -----------------------------------------------------
    def _submit_batched(
        self,
        func_id: str,
        endpoint_id: str,
        args_payload: Payload,
        *,
        ctx: TraceContext | None,
        chaos_base: str,
        prefetch: tuple,
        started_at: float,
        deadline_at: float | None,
        hedge: HedgePolicy | None,
    ) -> Future:
        """Park one submission in the accumulator and return its future.

        ``future.task_id`` is ``None`` until the flush assigns the real id.
        A size/bytes trigger flushes inline on this thread; otherwise the
        accumulator's adaptive hold is armed on the process reactor, so a
        lone task under an idle batcher still goes out within ``min_hold``.
        """
        future: Future = Future()
        future.task_id = None  # type: ignore[attr-defined]  # set at flush
        pending = _PendingTask(
            future=future,
            trace_ctx=ctx,
            func_id=func_id,
            endpoint_id=endpoint_id,
            args_payload=args_payload,
            attempt=0,
            chaos_base=chaos_base,
            prefetch=prefetch,
            started_at=started_at,
            deadline_at=deadline_at,
            hedge_policy=hedge,
            attempt_at=started_at,
        )
        key = (self.tenant, endpoint_id)
        ready, hold, generation = self._batcher.add(
            key, pending, args_payload.nominal_size
        )
        if ready is not None:
            self._flush_batch(ready)
        elif hold is not None:
            get_reactor().call_later(hold, lambda: self._flush_due(key, generation))
        return future

    def _flush_due(self, key: tuple, generation: int) -> None:
        """Hold timer fired (reactor thread): flush if not already flushed."""
        if not self._running:
            return  # close() drains explicitly; kill() drops like a crash
        batch = self._batcher.take(key, generation)
        if batch:
            self._flush_batch(batch)

    def flush_batches(self) -> int:
        """Flush every parked batch now; returns how many tasks went out."""
        if self._batcher is None:
            return 0
        flushed = 0
        for _key, items in self._batcher.take_all():
            self._flush_batch(items)
            flushed += len(items)
        return flushed

    def _flush_batch(self, items: list[_PendingTask]) -> None:
        """Submit one accumulated batch in a single cloud round trip.

        Per-item rejections split back into singles: each rejected task
        re-enters the standard retry path (``_finish_attempt`` →
        ``_resubmit``) under its own future, with its tenant, deadline,
        prefetch hints, and hedge policy intact.
        """
        submissions = [
            TaskSubmission(
                func_id=p.func_id,
                endpoint_id=p.endpoint_id,
                args_payload=p.args_payload,
                trace_ctx=p.trace_ctx,
                chaos_key=f"{p.chaos_base}#a{p.attempt}",
                prefetch=p.prefetch,
                deadline_at=p.deadline_at,
            )
            for p in items
        ]
        try:
            outcomes = self._cloud_submit_batch(submissions)
        except ReproError as exc:
            outcomes = [exc] * len(items)
        now = self._clock.now()
        accepted: list[tuple[str, _PendingTask]] = []
        rejected: list[tuple[_PendingTask, Exception]] = []
        for pending, outcome in zip(items, outcomes):
            if isinstance(outcome, str):
                pending.attempt_at = now
                pending.future.task_id = outcome  # type: ignore[attr-defined]
                accepted.append((outcome, pending))
            else:
                rejected.append((pending, outcome))
        with self._futures_lock:
            for task_id, pending in accepted:
                self._pending[task_id] = pending
        for pending, exc in rejected:
            counter_inc("client.batch_splits", endpoint=pending.endpoint_id)
            self._finish_attempt(pending, repr(exc), None)

    def _cloud_submit_batch(self, submissions: list[TaskSubmission]) -> list:
        """One batched cloud submit with transparent throttle backoff.

        Throttled members are re-sent together under the *same* chaos keys
        (a throttle retry is the same logical submission) until the
        throttle policy's budget runs out; other outcomes — task ids and
        terminal rejections — pass through positionally.
        """
        small = self.cloud.constants.faas_small_object_threshold
        site = self._home_site()
        outcomes: list = [None] * len(submissions)
        live = list(range(len(submissions)))
        throttle_attempt = 0
        throttle_started = self._clock.now()
        while True:
            batch = [submissions[i] for i in live]
            self._pay_api_call()
            counter_inc("faas.api_calls", op="submit")
            # Zero-copy payloads ride the submit message itself, so their
            # bytes are charged as request transfer, not as store ops.
            inline_bytes = sum(
                s.args_payload.nominal_size
                for s in batch
                if s.args_payload.nominal_size < small
            )
            if inline_bytes:
                self._clock.sleep(
                    self.cloud.network.transfer_time(
                        site, self.cloud.site, inline_bytes
                    )
                )
            results = self.cloud.submit_batch(
                self.token, self.client_id, batch, tenant=self.tenant
            )
            throttled: list[int] = []
            retry_after = 0.0
            for i, result in zip(live, results):
                outcomes[i] = result
                if isinstance(result, ThrottledError):
                    throttled.append(i)
                    retry_after = max(retry_after, result.retry_after)
            if not throttled:
                return outcomes
            policy = self._throttle_policy
            elapsed = self._clock.now() - throttle_started
            if not policy.retries_left(throttle_attempt, elapsed=elapsed):
                return outcomes  # the stored ThrottledErrors stand
            counter_inc(
                "client.throttled",
                len(throttled),
                tenant=self.tenant,
                endpoint=submissions[throttled[0]].endpoint_id,
            )
            first = submissions[throttled[0]]
            self._clock.sleep(
                max(
                    retry_after,
                    policy.delay_for(
                        throttle_attempt, key=first.chaos_key or first.func_id
                    ),
                )
            )
            throttle_attempt += 1
            live = throttled

    def cancel_pending(self, endpoint_id: str | None = None) -> int:
        """Cancel in-flight futures (optionally only those targeting one
        endpoint) and forget them; returns how many were cancelled.

        A cancelled task may still execute remotely — its notification
        arrives to find no pending entry and is dropped, the same dead-letter
        path an already-retried task id takes.
        """
        cancelled = 0
        with self._futures_lock:
            for task_id, pending in list(self._pending.items()):
                if endpoint_id is not None and pending.endpoint_id != endpoint_id:
                    continue
                if pending.future.cancel():
                    del self._pending[task_id]
                    cancelled += 1
                    counter_inc("client.cancelled", endpoint=pending.endpoint_id)
        return cancelled

    def close(self) -> None:
        if self._batcher is not None:
            # Parked submissions must go out before the notifier stops —
            # otherwise their futures would be abandoned below.  Stale hold
            # timers on the reactor no-op: the generation has moved on.
            self.flush_batches()
        self._running = False
        self._notifier.join(timeout=self._close_timeout)
        if self._notifier.is_alive():
            counter_inc("client.wedged_threads")
            raise WorkflowError(
                f"FaasClient notifier thread was still alive "
                f"{self._close_timeout} s after close(); it is likely "
                "blocked inside the cloud's completed queue with a stopped "
                "clock"
            )
        if self._consumer is not None:
            self._consumer.close()
        # Nobody is listening for results anymore: fail what is still in
        # flight so callers blocked on .result() see the close instead of
        # hanging forever.
        with self._futures_lock:
            abandoned = list(self._pending.values())
            self._pending.clear()
        for pending in abandoned:
            if not pending.future.done():
                counter_inc("client.abandoned", endpoint=pending.endpoint_id)
                pending.future.set_exception(
                    WorkflowError("client closed with the task still in flight")
                )

    def kill(self) -> None:
        """Simulate a process crash: stop the notifier but do *not* close
        the bus subscription or fail the in-flight futures.

        A dead process never says goodbye — the broker keeps the
        subscription and its unacked redelivery window, so a successor
        client constructed with the *same* ``client_id`` (see ``attach``)
        resumes delivery from the acked frontier.  ``close`` after ``kill``
        would ack that frontier away; a crashed client must never be
        closed.
        """
        self._running = False
        self._notifier.join(timeout=self._close_timeout)
        counter_inc("client.killed")
        with self._futures_lock:
            self._pending.clear()

    def attach(
        self,
        task_id: str,
        *,
        endpoint_id: str,
        func_id: str = "",
        args_payload: Payload | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> Future:
        """Adopt a task submitted by a crashed predecessor client.

        Registers a pending entry for ``task_id`` (the predecessor must
        have shared this ``client_id`` — the cloud routes the result
        notification by it) and returns a fresh future for it.  If the
        task already completed while nobody was listening, the completion
        is delivered immediately from the cloud's ledger; otherwise the
        notifier picks it up from the re-established feed.  Payload-less
        attaches cannot be retried on failure (there is nothing to
        resubmit), so they surface terminal errors directly.
        """
        payload = args_payload if args_payload is not None else serialize(((), {}))
        chaos_base = hashlib.sha256(payload.data).hexdigest()[:16]
        future: Future = Future()
        future.task_id = task_id  # type: ignore[attr-defined]
        pending = _PendingTask(
            future=future,
            trace_ctx=trace_ctx,
            func_id=func_id,
            endpoint_id=endpoint_id,
            args_payload=payload,
            # Attach exhausts the retry budget when there is no real payload
            # to resubmit: a failure completes the future with the error.
            attempt=0 if args_payload is not None else (1 << 30),
            chaos_base=chaos_base,
            started_at=self._clock.now(),
            attempt_at=self._clock.now(),
        )
        with self._futures_lock:
            self._pending[task_id] = pending
        counter_inc("client.attached", endpoint=endpoint_id)
        # The crash window: the task may have completed (and its doorbell
        # may have been acked) before the predecessor died.  The ledger is
        # ground truth — deliver terminal tasks inline; `_handle_completion`
        # pops the pending entry, so a late duplicate doorbell is a no-op.
        try:
            record = self.cloud.task(task_id)
        except WorkflowError:
            record = None
        if record is not None and record.status.terminal:
            self._handle_completion(task_id)
        return future

    # -- result delivery -----------------------------------------------------------
    def _notify_loop(self) -> None:
        while self._running:
            # Hedge pass first: each receive/poll interval bounds how stale
            # the overdue-primary scan can be, so a hedge launches within
            # one interval of its delay expiring.
            self._scan_hedges()
            consumer = self._consumer
            if consumer is not None and not self._fallback:
                try:
                    envelopes = consumer.receive(timeout=self._receive_interval)
                except SubscriptionLapsedError:
                    self._fallback = True
                    counter_inc("bus.fallback_engaged", role="client")
                    continue
                for envelope in envelopes:
                    # A coalesced doorbell carries a comma-joined id list;
                    # singles have no comma and take the unbatched path.
                    self._handle_completions(envelope.payload.split(","))
                    consumer.done(envelope)
                continue
            # Poll fallback (and the only path when the bus is disabled):
            # the completed queue is the ground truth the bus doorbells over.
            # A batching client drains multi-task leases in one call; the
            # unbatched client keeps the exact one-at-a-time legacy path.
            fetch_batch = (
                getattr(self.cloud, "next_completed_batch", None)
                if self._batcher is not None
                else None
            )
            if fetch_batch is not None:
                task_ids = fetch_batch(self.client_id, timeout=self._poll_interval)
                if task_ids:
                    self._handle_completions(task_ids)
                    continue
            else:
                task_id = self.cloud.next_completed(
                    self.client_id, timeout=self._poll_interval
                )
                if task_id is not None:
                    self._handle_completion(task_id)
                    continue  # keep draining until the queue is confirmed empty
            if consumer is not None and self._fallback:
                # Hand back to the bus only after an empty drain: completions
                # whose notifications were trimmed from the redelivery window
                # have no doorbell left, so the fallback must empty the queue
                # before resubscribing.  Resubscription then replays every
                # unacked notification — nothing from the gap is lost.
                consumer.resubscribe()
                self._fallback = False

    # -- hedged execution ------------------------------------------------------
    def _scan_hedges(self) -> None:
        """Launch speculative duplicates for overdue hedge-armed primaries.

        Runs on the notifier thread (the same thread that resolves
        completions), so a candidate collected here cannot race its own
        resolution — only external pops (``close``, ``cancel_pending``),
        which the post-submit re-check under the lock covers.
        """
        now = self._clock.now()
        with self._futures_lock:
            candidates = [
                (task_id, pending)
                for task_id, pending in self._pending.items()
                if pending.hedge_policy is not None
                and pending.leg == 0
                and not pending.future.done()
                and (
                    pending.hedge is None
                    or pending.hedge.launched < pending.hedge_policy.max_hedges
                )
            ]
        for task_id, pending in candidates:
            policy = pending.hedge_policy
            delay = policy.hedge_delay(self._latencies)
            if delay is None or now - pending.attempt_at < delay:
                continue  # not overdue yet (or no latency sample to judge by)
            if pending.deadline_at is not None and now >= pending.deadline_at:
                continue  # past deadline: the cloud would refuse the leg
            taken = {pending.endpoint_id}
            if pending.hedge is not None:
                taken.update(leg.endpoint_id for leg in pending.hedge.legs.values())
            target = policy.hedge_target(exclude=taken)
            if target is None:
                continue  # every candidate endpoint already carries a leg
            self._launch_hedge(task_id, pending, target)

    def _launch_hedge(self, primary_id: str, pending: _PendingTask, target: str) -> None:
        group = pending.hedge
        if group is None:
            group = _HedgeGroup(primary=pending)
            group.legs[primary_id] = pending
            pending.hedge = group
        n = group.launched + 1
        # ``#h<n>`` keeps the hedge leg's chaos identity distinct from the
        # primary's while preserving the content base (``partition('#')``
        # strips it for poison fingerprints) and the ``#a<attempt>`` suffix.
        chaos_key = f"{pending.chaos_base}#h{n}#a{pending.attempt}"
        # A hedge leg rides the primary's already-serialized payload too.
        counter_inc("client.serialize_skipped", endpoint=target)
        try:
            hedge_id = self._cloud_submit(
                pending.func_id,
                target,
                pending.args_payload,
                trace_ctx=pending.trace_ctx,
                chaos_key=chaos_key,
                prefetch=pending.prefetch,
                deadline_at=pending.deadline_at,
            )
        except ReproError:
            # The duplicate was refused (throttle budget, breaker, quota...):
            # the primary keeps racing alone; try again next scan.
            counter_inc("client.hedge_rejected", endpoint=target)
            return
        counter_inc("faas.api_calls", op="submit")
        group.launched = n
        leg = _PendingTask(
            future=pending.future,
            trace_ctx=pending.trace_ctx,
            func_id=pending.func_id,
            endpoint_id=target,
            args_payload=pending.args_payload,
            attempt=pending.attempt,
            chaos_base=pending.chaos_base,
            prefetch=pending.prefetch,
            started_at=pending.started_at,
            deadline_at=pending.deadline_at,
            hedge_policy=pending.hedge_policy,
            hedge=group,
            leg=n,
            attempt_at=self._clock.now(),
        )
        with self._futures_lock:
            stale = group.resolved or primary_id not in self._pending
            if not stale:
                self._pending[hedge_id] = leg
                group.legs[hedge_id] = leg
        if stale:
            # The race resolved (or the caller cancelled) while we paid the
            # submit round trip; reel the duplicate back in.
            self._cancel_leg(hedge_id, leg, group)
            return
        counter_inc("client.hedges_launched", endpoint=target)

    def _cancel_leg(self, task_id: str, leg: _PendingTask, group: _HedgeGroup) -> None:
        """Cancel one losing leg; reconcile its outcome exactly once.

        A hedge leg cancelled while still queued never executed (``lost``);
        one the cloud could no longer cancel is a duplicate execution whose
        eventual result finds no pending entry and is dropped (``wasted``).
        """
        self._pay_api_call()
        counter_inc("faas.api_calls", op="cancel")
        cancelled = self.cloud.cancel_task(self.token, task_id)
        if leg.leg > 0:
            counter_inc(
                "client.hedges",
                outcome="lost" if cancelled else "wasted",
                endpoint=leg.endpoint_id,
            )

    def _settle_leg(
        self,
        task_id: str,
        pending: _PendingTask,
        ok: bool,
        value: object,
        error: str,
        traceback_text: str | None,
    ) -> None:
        """Resolve one completed leg against its (possible) hedge race."""
        group = pending.hedge
        if group is None:
            if ok:
                self._latencies.add(self._clock.now() - pending.attempt_at)
                pending.future.set_result(value)
            else:
                self._finish_attempt(pending, error, traceback_text)
            return
        group.legs.pop(task_id, None)
        if group.resolved:
            return  # a duplicate delivery raced the resolution; drop it
        if ok:
            group.resolved = True
            self._latencies.add(self._clock.now() - pending.attempt_at)
            losers = list(group.legs.items())
            group.legs.clear()
            with self._futures_lock:
                for other_id, _ in losers:
                    self._pending.pop(other_id, None)
            for other_id, other in losers:
                self._cancel_leg(other_id, other, group)
            if pending.leg > 0:
                counter_inc(
                    "client.hedges", outcome="won", endpoint=pending.endpoint_id
                )
            pending.future.set_result(value)
            return
        group.last_error, group.last_traceback = error, traceback_text
        if group.legs:
            # Other legs are still racing; this one just drops out.  A
            # failed hedge leg bought nothing — pure duplicate work.
            if pending.leg > 0:
                counter_inc(
                    "client.hedges", outcome="wasted", endpoint=pending.endpoint_id
                )
            return
        # Every leg failed: the *attempt* failed.  Retry (or give up) under
        # the primary's pending record so a resubmission returns to the
        # originally requested endpoint.
        group.resolved = True
        group.primary.hedge = None
        self._finish_attempt(group.primary, group.last_error, group.last_traceback)

    def _handle_completions(self, task_ids: list[str]) -> None:
        """Resolve a coalesced completion notification.

        A single id takes the unbatched path unchanged.  A multi-id
        doorbell downloads every result behind *one* notification-push
        latency, then reads, transfers, and settles each task
        individually — per-task dedupe, retry, and hedge reconciliation
        are untouched.
        """
        if len(task_ids) == 1:
            self._handle_completion(task_ids[0])
            return
        entries: list[tuple[str, _PendingTask]] = []
        with self._futures_lock:
            for task_id in task_ids:
                pending = self._pending.pop(task_id, None)
                if pending is not None:
                    entries.append((task_id, pending))
        if not entries:
            return
        site = self._home_site()
        self._clock.sleep(self.cloud.network.latency(self.cloud.site, site))
        counter_inc("client.batched_downloads", len(entries))
        for task_id, pending in entries:
            try:
                with trace_span("result.download", parent=pending.trace_ctx):
                    status, payload = self.cloud.get_result_payload(
                        self.token, task_id
                    )
                    self._clock.sleep(
                        self.cloud.network.transfer_time(
                            self.cloud.site, site, payload.nominal_size
                        )
                    )
                    emit(
                        "data_transfer",
                        resource=site.name,
                        bytes=payload.nominal_size,
                        via="faas-cloud",
                    )
                    self._clock.sleep(deserialize_cost(payload.nominal_size))
                    body = deserialize(payload)
            except ReproError as exc:
                self._settle_leg(task_id, pending, False, None, repr(exc), None)
                continue
            if status is TaskStatus.SUCCESS and body.get("success"):
                self._settle_leg(task_id, pending, True, body["value"], "", None)
            else:
                self._settle_leg(
                    task_id,
                    pending,
                    False,
                    None,
                    body.get("error", "remote task failed"),
                    body.get("traceback"),
                )

    def _handle_completion(self, task_id: str) -> None:
        with self._futures_lock:
            pending = self._pending.pop(task_id, None)
        if pending is None:
            return  # e.g. a cancelled/unknown/already-handled task
        try:
            status, body = self._download(task_id, pending.trace_ctx)
        except ReproError as exc:
            # The download itself failed (e.g. the cloud store returned
            # corrupt data): consumes an attempt like a remote failure.
            self._settle_leg(task_id, pending, False, None, repr(exc), None)
            return
        if status is TaskStatus.SUCCESS and body.get("success"):
            self._settle_leg(task_id, pending, True, body["value"], "", None)
        else:
            self._settle_leg(
                task_id,
                pending,
                False,
                None,
                body.get("error", "remote task failed"),
                body.get("traceback"),
            )

    def _download(
        self, task_id: str, trace_ctx: TraceContext | None
    ) -> tuple[TaskStatus, dict]:
        # Notification push + result download, charged to the client.
        with trace_span("result.download", parent=trace_ctx):
            site = self._home_site()
            self._clock.sleep(self.cloud.network.latency(self.cloud.site, site))
            status, payload = self.cloud.get_result_payload(self.token, task_id)
            self._clock.sleep(
                self.cloud.network.transfer_time(
                    self.cloud.site, site, payload.nominal_size
                )
            )
            emit(
                "data_transfer",
                resource=site.name,
                bytes=payload.nominal_size,
                via="faas-cloud",
            )
            self._clock.sleep(deserialize_cost(payload.nominal_size))
            body = deserialize(payload)
        return status, body

    def _finish_attempt(
        self, pending: _PendingTask, error: str, traceback_text: str | None
    ) -> None:
        """A task attempt failed: retry under the same future, or give up."""
        if error.startswith("DeadlineExceededError"):
            # The cloud already ruled the work too late (expired in queue,
            # or skipped endpoint-side): retrying cannot beat a deadline
            # that has passed.
            counter_inc("client.deadline_failures", endpoint=pending.endpoint_id)
            pending.future.set_exception(DeadlineExceededError(error))
            return
        policy = self._retry_policy
        attempt = pending.attempt
        while policy is not None and policy.retries_left(
            attempt, elapsed=self._clock.now() - pending.started_at
        ):
            if (
                pending.deadline_at is not None
                and self._clock.now() >= pending.deadline_at
            ):
                counter_inc(
                    "client.deadline_abandoned", endpoint=pending.endpoint_id
                )
                pending.future.set_exception(
                    DeadlineExceededError(
                        f"deadline ({pending.deadline_at:.3f}s) passed after "
                        f"{attempt + 1} attempt(s); last error: {error}"
                    )
                )
                return
            counter_inc("client.retries", endpoint=pending.endpoint_id)
            self._clock.sleep(policy.delay_for(attempt, key=pending.chaos_base))
            if not policy.retries_left(
                attempt, elapsed=self._clock.now() - pending.started_at
            ):
                # The backoff sleep itself can blow the ``max_elapsed``
                # wall-clock budget; re-check *after* sleeping so a retry
                # never launches past the budget it was granted under.
                break
            attempt += 1
            try:
                self._resubmit(pending, attempt)
                return
            except (DeadlineExceededError, TaskQuarantinedError) as exc:
                # Terminal rejections: the deadline lapsed before the cloud
                # accepted the resubmission, or the payload was quarantined
                # as poison.  More attempts cannot change either verdict.
                counter_inc(
                    "client.terminal_rejections", endpoint=pending.endpoint_id
                )
                pending.future.set_exception(exc)
                return
            except ReproError as exc:
                # The resubmission itself was rejected; burn another attempt.
                error = repr(exc)
                traceback_text = None
        if policy is None:
            pending.future.set_exception(
                TaskError(error, remote_traceback=traceback_text)
            )
        else:
            counter_inc("client.retries_exhausted", endpoint=pending.endpoint_id)
            pending.future.set_exception(
                RetryExhaustedError(
                    f"task failed after {attempt + 1} attempts: {error}",
                    attempts=attempt + 1,
                    last_error=error,
                )
            )

    def _resubmit(self, pending: _PendingTask, attempt: int) -> None:
        """Re-enter the already-serialized payload under a fresh task id.

        The arguments were serialized (and ``serialize_cost`` paid) exactly
        once, at first submit; a retry reuses ``pending.args_payload``
        as-is.  The counter pins that invariant — it must move in lockstep
        with ``client.retries`` or a double-serialization charge crept in.
        """
        counter_inc("client.serialize_skipped", endpoint=pending.endpoint_id)
        with trace_span(
            "cloud.submit",
            parent=pending.trace_ctx,
            endpoint=pending.endpoint_id,
            tenant=self.tenant,
        ):
            task_id = self._cloud_submit(
                pending.func_id,
                pending.endpoint_id,
                pending.args_payload,
                trace_ctx=pending.trace_ctx,
                chaos_key=f"{pending.chaos_base}#a{attempt}",
                prefetch=pending.prefetch,
                deadline_at=pending.deadline_at,
            )
        counter_inc("faas.api_calls", op="submit")
        pending.attempt = attempt
        # A fresh attempt races from scratch: no hedge group yet, and the
        # hedge delay measures from this submission.
        pending.hedge = None
        pending.leg = 0
        pending.attempt_at = self._clock.now()
        with self._futures_lock:
            self._pending[task_id] = pending

    def __enter__(self) -> "FaasClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FaasExecutor(Executor):
    """``concurrent.futures.Executor`` over one (client, endpoint) pair —
    the interface parity FuncX advertises (§IV-B)."""

    def __init__(self, client: FaasClient, endpoint_id: str) -> None:
        self._client = client
        self._endpoint_id = endpoint_id
        self._shutdown = False

    def submit(self, fn: Callable, /, *args: object, **kwargs: object) -> Future:
        if self._shutdown:
            raise RuntimeError("cannot submit to a shut-down executor")
        return self._client.run(fn, self._endpoint_id, *args, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Match ``concurrent.futures.Executor`` semantics:
        ``cancel_futures=True`` cancels this executor's still-pending
        futures (and forgets them at the client) instead of ignoring them."""
        self._shutdown = True
        if cancel_futures:
            self._client.cancel_pending(self._endpoint_id)
