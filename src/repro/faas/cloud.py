"""The cloud half of the federated FaaS platform (the FuncX web service).

Responsibilities reproduced from §IV-B and §V-C1:

* **Function registry** — serialized function bodies registered once,
  referenced by id in every invocation.
* **Task queues per endpoint** — store-and-forward: tasks submitted while an
  endpoint is offline wait in its queue; results reported while the client
  is away wait in the client's completed queue.
* **Split payload store** — function arguments and results below 20 kB live
  in an ElastiCache-Redis-like store, larger ones in an S3-like store with
  higher latency and limited bandwidth.  This is why "Task Server-to-worker
  communication dominates the overall task lifetime" for by-value payloads
  (Fig. 3), and the 10 MB payload cap is enforced at submission.
* **Authentication** — every API call validates a scoped bearer token.

Latency accounting: the cloud's own compute is charged on the *calling*
thread (client or endpoint), which is where those costs land in reality —
the caller is blocked on the HTTPS response.

Multi-tenancy (``repro.tenancy``): a :class:`FaasCloud` doubles as the
**shard engine** behind :class:`repro.tenancy.CloudRouter`.  The hooks that
make one instance shardable are all constructor keywords with single-node
defaults — a shared :class:`~repro.bus.NotificationBus`, a shared
:class:`_CompletedFeed`, a locator prefix on the payload store, a task-id
namespace, a serialized per-shard admission cost, and a
:class:`~repro.tenancy.TenantRegistry` that usage events are reported to.
Task queues are per ``(endpoint, tenant)`` and drained weighted-round-robin
so one hot tenant cannot starve the rest of an endpoint's feed.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import uuid
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.bus import NotificationBus
from repro.chaos.plan import attempt_from_key, chaos_check
from repro.chaos.policy import RetryPolicy
from repro.durable.journal import encode_payload
from repro.exceptions import (
    DeadlineExceededError,
    EndpointUnavailableError,
    LeaseExpiredError,
    PayloadTooLargeError,
    ReproError,
    TaskQuarantinedError,
    WorkflowError,
)
from repro.faas.auth import SCOPE_COMPUTE, AuthServer, Token
from repro.net.clock import Clock, get_clock
from repro.net.defaults import PaperConstants
from repro.net.topology import Network, Site
from repro.observe import TraceContext, counter_inc, gauge_set
from repro.resilience.health import BREAKER_OPEN
from repro.serialize import Payload, borrow, serialize
from repro.tenancy.tenant import (
    DEFAULT_TENANT,
    tenant_scope,
    validate_function_name,
    validate_tenant_name,
)

__all__ = [
    "TaskStatus",
    "TaskRecord",
    "TaskDispatch",
    "TaskSubmission",
    "FaasCloud",
    "task_topic",
    "result_topic",
]


def task_topic(endpoint_id: str) -> str:
    """Bus topic carrying task-available doorbells for one endpoint."""
    return f"tasks/{endpoint_id}"


def result_topic(client_id: str) -> str:
    """Bus topic carrying result notifications for one client."""
    return f"results/{client_id}"


class TaskStatus(str, Enum):
    WAITING = "WAITING"  # queued at the cloud, not yet fetched
    DISPATCHED = "DISPATCHED"  # fetched by the endpoint
    SUCCESS = "SUCCESS"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self in (TaskStatus.SUCCESS, TaskStatus.FAILED)


@dataclass
class TaskRecord:
    task_id: str
    func_id: str
    endpoint_id: str
    client_id: str
    args_locator: str
    status: TaskStatus = TaskStatus.WAITING
    result_locator: str | None = None
    submitted_at: float = 0.0
    fetched_at: float | None = None
    completed_at: float | None = None
    trace_ctx: TraceContext | None = None
    #: Content-derived fault-injection key supplied by the client (rides the
    #: dispatch so endpoint/worker hooks key faults deterministically).
    chaos_key: str | None = None
    #: How many times this record went back to WAITING (crash reclaim or
    #: lease-expiry failover).
    requeues: int = 0
    #: Endpoints this task was reassigned *away from*; a result reported by
    #: one of them is a stale lease, not a protocol error.
    previous_endpoints: list[str] = field(default_factory=list)
    #: Advisory prefetch hints from the client, forwarded on dispatch so the
    #: executing endpoint can warm its site's proxy cache.
    prefetch: tuple = ()
    #: The tenant the task was submitted under (fair dequeue + quotas).
    tenant: str = DEFAULT_TENANT
    #: Size of the argument payload, kept for queued-bytes quota release.
    args_nbytes: int = 0
    #: Absolute nominal time after which the task's result is worthless;
    #: rides dispatch/retry/hedge so every layer can stop dead work early.
    deadline_at: float | None = None
    #: Content fingerprint (``func_id:args-digest``) for poison-task strike
    #: accounting: identical resubmissions share one fingerprint.
    fingerprint: str | None = None


@dataclass(frozen=True)
class TaskDispatch:
    """What an endpoint receives for one task: ids plus the args locator
    (payloads never ride the control message when they are large)."""

    task_id: str
    func_id: str
    args_locator: str
    trace_ctx: TraceContext | None = None
    chaos_key: str | None = None
    prefetch: tuple = ()
    tenant: str = DEFAULT_TENANT
    deadline_at: float | None = None


@dataclass(frozen=True)
class TaskSubmission:
    """One task inside a batched submit (client → cloud).

    The batch-level call carries the shared tenant and pays the shared
    costs (auth, admission, WAL append, doorbell); everything per-task —
    deadline, chaos key, prefetch hints — rides here so batching never
    erases per-task semantics."""

    func_id: str
    endpoint_id: str
    args_payload: Payload
    trace_ctx: TraceContext | None = None
    chaos_key: str | None = None
    prefetch: tuple = ()
    deadline_at: float | None = None


@dataclass
class _StoredObject:
    payload: Payload
    tier: str  # "redis" | "s3"
    chaos_exempt: bool = False


class _PayloadStore:
    """The ElastiCache/S3 split store for args and results."""

    def __init__(
        self,
        constants: PaperConstants,
        network: Network,
        clock: Clock,
        prefix: str = "",
    ) -> None:
        self._constants = constants
        self._network = network
        self._clock = clock
        # Shards prefix their locators (``s0/redis:...``) so a router can
        # resolve any locator to its owning shard; standalone clouds keep
        # the bare ``<tier>:<id>`` form.
        self._prefix = prefix
        self._objects: dict[str, _StoredObject] = {}
        self._lock = threading.Lock()

    def _charge(self, tier: str, nbytes: int) -> None:
        c = self._constants
        if tier == "inline":
            return  # rides the task message itself
        if tier == "redis":
            self._clock.sleep(self._network._sample(c.faas_redis_latency))
        else:
            self._clock.sleep(
                self._network._sample(c.faas_s3_latency) + nbytes / c.faas_s3_bandwidth
            )

    def _tier(self, nbytes: int, borrowed: bool = False) -> str:
        c = self._constants
        if nbytes < c.faas_inline_threshold:
            return "inline"
        if borrowed and nbytes < c.faas_small_object_threshold:
            # Zero-copy fast path: a borrowed sub-20 kB payload rode the
            # carrying message inline, so the redis hop (and its second
            # serialize/deserialize) never happens.
            return "inline"
        if nbytes < c.faas_small_object_threshold:
            return "redis"
        return "s3"

    def write(self, payload: Payload, *, chaos_exempt: bool = False) -> str:
        """Store a payload.  ``chaos_exempt`` marks payloads whose bytes are
        *not* content-deterministic (failure reports embed task ids and
        tracebacks); fault injection skips them so the fault ledger stays a
        pure function of the plan seed."""
        tier = self._tier(payload.nominal_size, payload.borrowed)
        self._charge(tier, payload.nominal_size)
        counter_inc("faas.store_writes", tier=tier)
        locator = f"{self._prefix}{tier}:{uuid.uuid4().hex}"
        with self._lock:
            self._objects[locator] = _StoredObject(payload, tier, chaos_exempt)
        return locator

    def read(self, locator: str) -> Payload:
        with self._lock:
            try:
                stored = self._objects[locator]
            except KeyError:
                raise WorkflowError(f"unknown payload locator {locator!r}") from None
        self._charge(stored.tier, stored.payload.nominal_size)
        counter_inc("faas.store_reads", tier=stored.tier)
        # Fault keys derive from payload *content* so re-stored retries of
        # the same bytes count occurrences deterministically across runs.
        if stored.chaos_exempt:
            return stored.payload
        spec = chaos_check(
            "cloud.store.read",
            hashlib.sha256(stored.payload.data).hexdigest()[:16],
            tier=stored.tier,
        )
        if spec is not None:
            if spec.delay:
                self._clock.sleep(spec.delay)
            raise WorkflowError(
                f"injected fault {spec.mode!r}: payload store read of "
                f"{locator!r} returned corrupt data"
            )
        return stored.payload

    def delete(self, locator: str) -> None:
        with self._lock:
            self._objects.pop(locator, None)

    def adopt(self, locator: str, payload: Payload, *, chaos_exempt: bool = False) -> None:
        """Re-install an object under a locator minted before a crash.

        Used by journal replay: the tier is parsed back out of the locator
        (``<shard>/<tier>:<id>``) and no store latency is charged — the
        bytes come off the journal, whose read already paid the I/O.
        """
        tier = locator.rsplit("/", 1)[-1].split(":", 1)[0]
        with self._lock:
            self._objects[locator] = _StoredObject(payload, tier, chaos_exempt)

    def raw(self, locator: str) -> _StoredObject | None:
        """The stored object without charging I/O (snapshot capture)."""
        with self._lock:
            return self._objects.get(locator)


class _CompletedFeed:
    """Per-client completed-task queues (the poll half of result delivery).

    Extracted from :class:`FaasCloud` so a router can hand every shard the
    *same* feed: a client long-polling ``next_completed`` then sees results
    from all shards through one wait, exactly as if the cloud were one
    service.  ``cond`` doubles as the terminal-transition lock shards use
    for their exactly-once ``report_result`` dance."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self.cond = threading.Condition()
        self._queues: dict[str, deque[str]] = {}

    def push_locked(self, client_id: str, task_id: str) -> None:
        """Append a completion; caller must hold :attr:`cond`."""
        self._queues.setdefault(client_id, deque()).append(task_id)
        self.cond.notify_all()

    def retire(self, client_id: str, task_id: str) -> None:
        """Drop a completion that was collected through another path."""
        with self.cond:
            queue = self._queues.get(client_id)
            if queue is not None:
                try:
                    queue.remove(task_id)
                except ValueError:
                    pass

    def next_completed(self, client_id: str, timeout: float | None) -> str | None:
        deadline = None if timeout is None else self._clock.now() + timeout
        with self.cond:
            queue = self._queues.setdefault(client_id, deque())
            while not queue:
                remaining = None
                if deadline is not None:
                    remaining = deadline - self._clock.now()
                    if remaining <= 0:
                        return None
                self.cond.wait(self._clock.wall_timeout(remaining))
            return queue.popleft()

    def next_completed_batch(
        self, client_id: str, max_n: int, timeout: float | None
    ) -> list[str]:
        """One wait, up to ``max_n`` completions: the batched drain a
        notifier uses so a storm of results costs one wakeup, not one
        per task."""
        deadline = None if timeout is None else self._clock.now() + timeout
        with self.cond:
            queue = self._queues.setdefault(client_id, deque())
            while not queue:
                remaining = None
                if deadline is not None:
                    remaining = deadline - self._clock.now()
                    if remaining <= 0:
                        return []
                self.cond.wait(self._clock.wall_timeout(remaining))
            out: list[str] = []
            while queue and len(out) < max_n:
                out.append(queue.popleft())
            return out


class FaasCloud:
    """The hosted service: registry, queues, payload store, delivery."""

    def __init__(
        self,
        site: Site,
        network: Network,
        auth: AuthServer,
        constants: PaperConstants | None = None,
        clock: Clock | None = None,
        *,
        bus: NotificationBus | None = None,
        completed: "_CompletedFeed | None" = None,
        usage: object | None = None,
        shard_id: str = "",
        service_time: float = 0.0,
        store_prefix: str = "",
        task_namespace: str = "",
        on_enqueue: object | None = None,
        journal: object | None = None,
        health: object | None = None,
        poison: object | None = None,
    ) -> None:
        """Single-node cloud by default; the keyword block turns one
        instance into a shard behind :class:`repro.tenancy.CloudRouter`:

        ``bus`` / ``completed``
            Shared delivery fabric — all shards publish doorbells and
            completions into the same streams, so endpoints and clients
            subscribe once no matter how many shards exist.
        ``usage``
            A :class:`repro.tenancy.TenantRegistry`; dispatch / requeue /
            terminal transitions release the reservations the router made
            at admission (``None`` skips all usage accounting).
        ``service_time``
            Serialized per-submit admission cost in nominal seconds — the
            shard's finite control-plane capacity.  Aggregate admission
            throughput therefore scales with the number of shards.
        ``store_prefix`` / ``task_namespace``
            Disambiguate locators and task ids across shards so a router
            can route any id back to its owner.
        ``journal``
            A :class:`repro.durable.Journal` this instance writes through:
            admission, dispatch, and result-uplink mutations (which carry
            the tenant-usage deltas) are appended — and their I/O cost
            charged, the fsync — *before* the in-memory mutation becomes
            visible, so a crash-discarded instance can be rebuilt from
            snapshot + log replay (:func:`repro.durable.recover_cloud`).
        ``health`` / ``poison``
            A :class:`repro.resilience.EndpointHealthTracker` and a
            :class:`repro.resilience.PoisonTracker`; shards behind one
            router share single instances so health signals and poison
            strikes accumulate fleet-wide.  ``None`` (the default) disables
            circuit breaking / quarantine entirely — the seed dispatch path
            is untouched.
        """
        self.site = site
        self.network = network
        self.auth = auth
        self.constants = constants or PaperConstants()
        self.clock = clock or get_clock()
        self.shard_id = shard_id
        self._shard_label = shard_id or "solo"
        self.usage = usage
        self._service_time = service_time
        self._admission_lock = threading.Lock()
        self._on_enqueue = on_enqueue
        self.store = _PayloadStore(
            self.constants, network, self.clock, prefix=store_prefix
        )
        # Push-notification bus: result notifications to clients, task-
        # available doorbells to endpoints.  The queues below stay the
        # ground truth; the bus only carries acked wakeups, so the poll
        # paths remain correct as a degraded fallback.
        self.bus = bus if bus is not None else NotificationBus(
            clock=self.clock,
            redelivery=RetryPolicy(
                max_attempts=6,
                base_delay=self.constants.bus_redelivery_base,
                max_delay=self.constants.bus_redelivery_max,
            ),
            lease_ttl=self.constants.bus_lease_ttl,
            window=self.constants.bus_redelivery_window,
        )
        self._functions: dict[str, Payload] = {}
        self._function_tenants: dict[str, str] = {}
        self._endpoints: dict[str, Site] = {}
        self._endpoint_online: dict[str, bool] = {}
        self._tasks: dict[str, TaskRecord] = {}
        # endpoint id -> tenant -> FIFO of waiting task ids.  Draining is
        # weighted round-robin across the tenant queues (see
        # ``_pop_next_locked``), the per-endpoint fair-dequeue guarantee.
        self._queues: dict[str, dict[str, deque[str]]] = {}
        self._wrr_tenant: dict[str, str] = {}
        self._wrr_credit: dict[str, int] = {}
        self._queue_cond = threading.Condition()
        self._completed = completed if completed is not None else _CompletedFeed(
            self.clock
        )
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._task_namespace = task_namespace
        # Heartbeat leases: only endpoints that ever heartbeat hold a lease,
        # so direct-API test rigs without an agent process are never reaped.
        self._lease_expiry: dict[str, float] = {}
        self._failover_groups: dict[str, str | None] = {}
        self.health = health
        self.poison = poison
        self.journal = journal
        if journal is not None:
            journal.set_snapshot_provider(self.journal_state)

    # -- registry ------------------------------------------------------------
    def register_function(
        self,
        token: Token,
        payload: Payload,
        *,
        tenant: str = DEFAULT_TENANT,
        name: str | None = None,
        func_id: str | None = None,
    ) -> str:
        """Register a function body for ``tenant``.

        ``name`` (optional) is validated for charset/length and embedded in
        the function id for readability; ``func_id`` lets a router assign
        the id up front (it must, to consistent-hash the registration to
        the owning shard before the id exists anywhere)."""
        self.auth.validate(token, SCOPE_COMPUTE)
        validate_tenant_name(tenant)
        if tenant != DEFAULT_TENANT:
            self.auth.validate(token, tenant_scope(tenant))
        if name is not None:
            validate_function_name(name)
        if self.usage is not None:
            self.usage.admit_function(tenant)
        if func_id is None:
            stem = f"fn-{name}-" if name else "fn-"
            func_id = f"{stem}{uuid.uuid4().hex[:12]}"
        self._journal_function(func_id, tenant, payload)
        with self._lock:
            self._functions[func_id] = payload
            self._function_tenants[func_id] = tenant
        return func_id

    def adopt_function(self, func_id: str, tenant: str, payload: Payload) -> None:
        """Install an already-admitted registration (shard rebalancing).

        Skips validation and quota accounting: the registration was
        admitted when the tenant first registered it; moving it to the
        partition's new owner must not charge the quota twice."""
        self._journal_function(func_id, tenant, payload)
        with self._lock:
            self._functions[func_id] = payload
            self._function_tenants[func_id] = tenant

    def _journal_function(self, func_id: str, tenant: str, payload: Payload) -> None:
        if self.journal is not None:
            self.journal.append(
                "func", func_id=func_id, tenant=tenant, payload=encode_payload(payload)
            )

    def get_function(
        self, token: Token, func_id: str, tenant: str = DEFAULT_TENANT
    ) -> Payload:
        """Fetch a function body.  Only :data:`SCOPE_COMPUTE` is required —
        endpoints execute for every tenant, so their tokens carry no tenant
        scopes — but the function must be visible to ``tenant``."""
        self.auth.validate(token, SCOPE_COMPUTE)
        with self._lock:
            payload = self._functions.get(func_id)
            owner = self._function_tenants.get(func_id, DEFAULT_TENANT)
        if payload is None or owner != tenant:
            raise WorkflowError(f"unknown function {func_id!r}")
        return payload

    def register_endpoint(
        self,
        token: Token,
        name: str,
        site: Site,
        *,
        failover_group: str | None = None,
    ) -> str:
        """Register an endpoint; endpoints sharing a ``failover_group`` are
        interchangeable targets, so tasks stranded on one whose lease
        expires are re-dispatched to a surviving member of the group."""
        self.auth.validate(token, SCOPE_COMPUTE)
        endpoint_id = f"ep-{name}-{uuid.uuid4().hex[:8]}"
        self.adopt_endpoint(endpoint_id, site, failover_group=failover_group)
        # Pre-create the bus stream so doorbells published before the agent
        # first connects are retained and replayed on its subscribe.  The
        # chaos label is the (stable) endpoint *name*, not the run-local id.
        self.bus.register_subscriber(
            task_topic(endpoint_id), endpoint_id, chaos_label=name
        )
        return endpoint_id

    def adopt_endpoint(
        self,
        endpoint_id: str,
        site: Site,
        *,
        failover_group: str | None = None,
    ) -> None:
        """Create queue/lease structures for an endpoint id assigned
        elsewhere.  A router adopts each endpoint into *every* shard (any
        partition may dispatch to any endpoint) while registering the bus
        subscriber exactly once itself."""
        if self.journal is not None:
            self.journal.append(
                "endpoint",
                endpoint_id=endpoint_id,
                site=site.name,
                failover_group=failover_group,
            )
        with self._lock:
            self._endpoints[endpoint_id] = site
            self._endpoint_online[endpoint_id] = False
            self._queues[endpoint_id] = {}
            self._failover_groups[endpoint_id] = failover_group

    def endpoint_site(self, endpoint_id: str) -> Site:
        with self._lock:
            try:
                return self._endpoints[endpoint_id]
            except KeyError:
                raise EndpointUnavailableError(
                    f"unknown endpoint {endpoint_id!r}"
                ) from None

    def set_endpoint_online(self, endpoint_id: str, online: bool) -> None:
        with self._queue_cond:
            self.endpoint_site(endpoint_id)
            self._endpoint_online[endpoint_id] = online
            self._queue_cond.notify_all()

    def endpoint_online(self, endpoint_id: str) -> bool:
        with self._lock:
            return self._endpoint_online.get(endpoint_id, False)

    # -- heartbeats and leases ------------------------------------------------
    def heartbeat(self, token: Token, endpoint_id: str) -> float:
        """Renew an endpoint's lease; returns the new expiry (nominal s).

        An endpoint that stops heartbeating — crash, reclaim, partition —
        has its lease expire after ``endpoint_lease_ttl``, at which point
        the cloud re-dispatches everything it held (see
        :meth:`expire_leases`).  This is the funcX liveness mechanism that
        makes federation survive endpoint loss without client involvement.
        """
        self.auth.validate(token, SCOPE_COMPUTE)
        self.endpoint_site(endpoint_id)
        expiry = self.clock.now() + self.constants.endpoint_lease_ttl
        with self._queue_cond:
            self._lease_expiry[endpoint_id] = expiry
            self._endpoint_online[endpoint_id] = True
            # Liveness checks ride every heartbeat: with bus-driven pickup a
            # healthy-but-idle endpoint no longer polls, so a peer's
            # heartbeat (not its long poll) is what reaps a dead member and
            # triggers failover.  The breaker shed sweep rides along for the
            # same reason — a bus-idle standby never fetches, so without
            # this a gray peer's backlog would strand until some poll.
            self._expire_leases_locked()
            self._shed_open_breakers_locked()
        if self.health is not None:
            # Heartbeat jitter is a gray-failure signal: a degraded agent
            # beats late long before it stops beating entirely.
            self.health.record_heartbeat(
                endpoint_id,
                self.clock.now(),
                self.constants.endpoint_heartbeat_period,
            )
        counter_inc("faas.heartbeats", endpoint=endpoint_id)
        return expiry

    def lease_valid(self, endpoint_id: str) -> bool:
        with self._queue_cond:
            expiry = self._lease_expiry.get(endpoint_id)
            return expiry is not None and expiry > self.clock.now()

    def release_lease(self, token: Token, endpoint_id: str) -> None:
        """Graceful shutdown: surrender the lease so the stop is not later
        mistaken for a crash (no failover is triggered)."""
        self.auth.validate(token, SCOPE_COMPUTE)
        with self._queue_cond:
            self._lease_expiry.pop(endpoint_id, None)

    def expire_leases(self) -> list[str]:
        """Reap endpoints whose lease lapsed; returns the reaped ids.

        Runs lazily on every submit/fetch (any surviving endpoint's long
        poll triggers it), so failover needs no dedicated reaper thread.
        """
        with self._queue_cond:
            return self._expire_leases_locked()

    def _failover_target_locked(self, endpoint_id: str) -> str | None:
        """A surviving same-group endpoint with a live lease, if any."""
        group = self._failover_groups.get(endpoint_id)
        if group is None:
            return None
        now = self.clock.now()
        for other_id, other_group in sorted(self._failover_groups.items()):
            if other_id == endpoint_id or other_group != group:
                continue
            expiry = self._lease_expiry.get(other_id)
            if expiry is not None and expiry > now:
                return other_id
        return None

    def _group_members_locked(self, endpoint_id: str) -> list[str]:
        """Same-failover-group peers with live leases, sorted (self excluded)."""
        group = self._failover_groups.get(endpoint_id)
        if group is None:
            return []
        now = self.clock.now()
        return sorted(
            other_id
            for other_id, other_group in self._failover_groups.items()
            if other_id != endpoint_id
            and other_group == group
            and (expiry := self._lease_expiry.get(other_id)) is not None
            and expiry > now
        )

    def _healthy_target_locked(self, endpoint_id: str, now: float) -> str | None:
        """A live same-group peer whose breaker is not open, if any."""
        for other_id in self._group_members_locked(endpoint_id):
            if (
                self.health is None
                or self.health.evaluate(other_id, now) != BREAKER_OPEN
            ):
                return other_id
        return None

    def _shed_open_breakers_locked(self) -> None:
        """Move work away from endpoints whose circuit breaker is open.

        The gray twin of the lease-expiry failover sweep: a degraded
        endpoint is still heartbeating (its lease never lapses), so any
        healthy peer's fetch runs this sweep and pulls both the queued
        backlog and the in-flight (DISPATCHED) stragglers over to a healthy
        group member.  The gray endpoint's eventual slow results arrive as
        stale-lease reports and are dropped — exactly the duplicate-report
        path crash failover already exercises.
        """
        if self.health is None:
            return
        now = self.clock.now()
        for endpoint_id in list(self._queues):
            if self.health.evaluate(endpoint_id, now) != BREAKER_OPEN:
                continue
            target = self._healthy_target_locked(endpoint_id, now)
            if target is None:
                continue  # nowhere healthier to go; leave the work in place
            stranded = sorted(
                (
                    record
                    for record in self._tasks.values()
                    if record.endpoint_id == endpoint_id
                    and record.status is TaskStatus.DISPATCHED
                ),
                key=lambda record: record.submitted_at,
            )
            queued = self._queued_records_locked(endpoint_id)
            if not stranded and not queued:
                continue
            for queue in self._queues[endpoint_id].values():
                queue.clear()
            stranded_ids = {record.task_id for record in stranded}
            for record in stranded + queued:
                record.status = TaskStatus.WAITING
                record.fetched_at = None
                record.requeues += 1
                if self.usage is not None and record.task_id in stranded_ids:
                    self.usage.task_requeued(record.tenant, record.args_nbytes)
                if endpoint_id not in record.previous_endpoints:
                    record.previous_endpoints.append(endpoint_id)
                record.endpoint_id = target
                self._tenant_queue_locked(target, record.tenant).append(
                    record.task_id
                )
                counter_inc(
                    "resilience.sheds", from_endpoint=endpoint_id, to_endpoint=target
                )
                self.bus.publish(
                    task_topic(target),
                    record.task_id,
                    chaos_key=record.chaos_key or record.task_id,
                )
            self._publish_depth_locked(endpoint_id)
            self._publish_depth_locked(target)
            self._queue_cond.notify_all()

    # -- per-tenant queue helpers ---------------------------------------------
    def _tenant_queue_locked(self, endpoint_id: str, tenant: str) -> deque[str]:
        return self._queues[endpoint_id].setdefault(tenant, deque())

    def _backlog_locked(self, endpoint_id: str) -> bool:
        return any(self._queues[endpoint_id].values())

    def _depth_locked(self, endpoint_id: str) -> int:
        return sum(len(q) for q in self._queues[endpoint_id].values())

    def _queued_records_locked(self, endpoint_id: str) -> list[TaskRecord]:
        """Every WAITING record queued at an endpoint, per-tenant FIFO
        order, tenants in sorted order."""
        records: list[TaskRecord] = []
        for tenant in sorted(self._queues[endpoint_id]):
            records.extend(
                self._tasks[tid] for tid in self._queues[endpoint_id][tenant]
            )
        return records

    def _tenant_weight(self, tenant: str) -> int:
        if self.usage is None:
            return 1
        return self.usage.weight(tenant)

    def _pop_next_locked(self, endpoint_id: str) -> str | None:
        """Weighted-round-robin pop across an endpoint's tenant queues.

        Each tenant gets up to ``weight`` consecutive tasks per turn of the
        rotation, so over any drain window a backlogged tenant receives at
        most ``weight / sum(weights of backlogged tenants)`` of the feed —
        the starvation bound the noisy-neighbor benchmark asserts."""
        queues = self._queues[endpoint_id]
        backlogged = sorted(tenant for tenant, q in queues.items() if q)
        if not backlogged:
            return None
        current = self._wrr_tenant.get(endpoint_id)
        credit = self._wrr_credit.get(endpoint_id, 0)
        if current is not None and credit > 0 and queues.get(current):
            self._wrr_credit[endpoint_id] = credit - 1
            return queues[current].popleft()
        # Advance the rotation: the first backlogged tenant strictly after
        # the current one in sorted order (wrapping), so a tenant whose
        # queue empties forfeits the rest of its turn.
        nxt = next(
            (t for t in backlogged if current is None or t > current),
            backlogged[0],
        )
        self._wrr_tenant[endpoint_id] = nxt
        self._wrr_credit[endpoint_id] = max(self._tenant_weight(nxt), 1) - 1
        return queues[nxt].popleft()

    def queue_depth(self, endpoint_id: str) -> int:
        """Tasks waiting in this cloud's queues for ``endpoint_id``, summed
        over tenants — the cloud half of the autoscaler's demand signal."""
        with self._queue_cond:
            if endpoint_id not in self._queues:
                return 0
            return self._depth_locked(endpoint_id)

    def tenant_backlog(self, endpoint_id: str) -> dict[str, int]:
        """Per-tenant waiting-task counts for ``endpoint_id`` (backlogged
        tenants only)."""
        with self._queue_cond:
            queues = self._queues.get(endpoint_id, {})
            return {tenant: len(q) for tenant, q in queues.items() if q}

    def _publish_depth_locked(self, endpoint_id: str) -> None:
        gauge_set(
            "faas.queue_depth", self._depth_locked(endpoint_id), endpoint=endpoint_id
        )
        for tenant, queue in self._queues[endpoint_id].items():
            gauge_set(
                "cloud.tenant_queue_depth",
                len(queue),
                tenant=tenant,
                endpoint=endpoint_id,
                shard=self._shard_label,
            )

    def _expire_leases_locked(self) -> list[str]:
        now = self.clock.now()
        reaped = [
            endpoint_id
            for endpoint_id, expiry in self._lease_expiry.items()
            if expiry <= now
        ]
        for endpoint_id in reaped:
            del self._lease_expiry[endpoint_id]
            self._endpoint_online[endpoint_id] = False
            counter_inc("faas.lease_expiries", endpoint=endpoint_id)
            target = self._failover_target_locked(endpoint_id)
            # Everything the dead endpoint held: fetched-but-unfinished
            # tasks first (oldest first), then its still-queued backlog.
            stranded = sorted(
                (
                    record
                    for record in self._tasks.values()
                    if record.endpoint_id == endpoint_id
                    and record.status is TaskStatus.DISPATCHED
                ),
                key=lambda record: record.submitted_at,
            )
            queued = self._queued_records_locked(endpoint_id)
            if target is None:
                # No survivor: put fetched work back on the dead endpoint's
                # own queue (store-and-forward across a restart, as before).
                for record in reversed(stranded):
                    record.status = TaskStatus.WAITING
                    record.fetched_at = None
                    record.requeues += 1
                    if self.usage is not None:
                        self.usage.task_requeued(record.tenant, record.args_nbytes)
                    self._tenant_queue_locked(endpoint_id, record.tenant).appendleft(
                        record.task_id
                    )
                    counter_inc("faas.requeues", endpoint=endpoint_id)
                # Fresh doorbells: the originals were acked by the dead
                # agent, so a restarted subscriber would otherwise never
                # learn its queue is non-empty again.
                for record in stranded:
                    self.bus.publish(
                        task_topic(endpoint_id),
                        record.task_id,
                        chaos_key=record.chaos_key or record.task_id,
                    )
            else:
                for queue in self._queues[endpoint_id].values():
                    queue.clear()
                stranded_ids = {record.task_id for record in stranded}
                for record in stranded + queued:
                    record.status = TaskStatus.WAITING
                    record.fetched_at = None
                    record.requeues += 1
                    # Only dispatched work re-enters the queued-bytes quota;
                    # still-queued records never left it.
                    if self.usage is not None and record.task_id in stranded_ids:
                        self.usage.task_requeued(record.tenant, record.args_nbytes)
                    if endpoint_id not in record.previous_endpoints:
                        record.previous_endpoints.append(endpoint_id)
                    record.endpoint_id = target
                    self._tenant_queue_locked(target, record.tenant).append(
                        record.task_id
                    )
                    counter_inc(
                        "faas.failovers", from_endpoint=endpoint_id, to_endpoint=target
                    )
                    self.bus.publish(
                        task_topic(target),
                        record.task_id,
                        chaos_key=record.chaos_key or record.task_id,
                    )
                self._publish_depth_locked(target)
            if stranded or queued:
                self._queue_cond.notify_all()
        return reaped

    # -- client side ------------------------------------------------------------
    def submit(
        self,
        token: Token,
        client_id: str,
        func_id: str,
        endpoint_id: str,
        args_payload: Payload,
        *,
        tenant: str = DEFAULT_TENANT,
        trace_ctx: TraceContext | None = None,
        chaos_key: str | None = None,
        prefetch: tuple = (),
        deadline_at: float | None = None,
    ) -> str:
        self.auth.validate(token, SCOPE_COMPUTE)
        validate_tenant_name(tenant)
        if tenant != DEFAULT_TENANT:
            self.auth.validate(token, tenant_scope(tenant))
        self.expire_leases()
        endpoint_id, fingerprint = self._admit_task(
            client_id,
            func_id,
            endpoint_id,
            args_payload,
            tenant=tenant,
            chaos_key=chaos_key,
            deadline_at=deadline_at,
        )
        # The shard's control plane admits one submission at a time: this
        # serialized charge is the finite capacity that makes aggregate
        # admission throughput scale with the shard count.
        if self._service_time > 0.0:
            with self._admission_lock:
                self.clock.sleep(self._service_time)
        args_locator = self.store.write(args_payload)
        task_id = f"task-{self._task_namespace}{next(self._ids):08d}"
        record = TaskRecord(
            task_id=task_id,
            func_id=func_id,
            endpoint_id=endpoint_id,
            client_id=client_id,
            args_locator=args_locator,
            submitted_at=self.clock.now(),
            trace_ctx=trace_ctx,
            chaos_key=chaos_key,
            prefetch=tuple(prefetch),
            tenant=tenant,
            args_nbytes=args_payload.nominal_size,
            deadline_at=deadline_at,
            fingerprint=fingerprint,
        )
        # WAL fsync point: the admission record (task identity + argument
        # bytes + locator) is durable before the task becomes visible in a
        # queue.  A crash in between leaves a journaled-but-never-queued
        # task, which replay admits into a WAITING queue exactly once.
        if self.journal is not None:
            self.journal.append(
                "submit",
                task_id=task_id,
                func_id=func_id,
                endpoint_id=endpoint_id,
                client_id=client_id,
                locator=args_locator,
                args=encode_payload(args_payload),
                tenant=tenant,
                chaos_key=chaos_key,
                submitted_at=record.submitted_at,
                deadline_at=deadline_at,
                fingerprint=fingerprint,
            )
        with self._queue_cond:
            self._tasks[task_id] = record
            self._tenant_queue_locked(endpoint_id, tenant).append(task_id)
            self._publish_depth_locked(endpoint_id)
            self._queue_cond.notify_all()
        counter_inc("cloud.submits", tenant=tenant, shard=self._shard_label)
        # Doorbell *after* the enqueue so a subscriber that fetches on the
        # notification always finds the task in its queue.
        self.bus.publish(
            task_topic(endpoint_id), task_id, chaos_key=chaos_key or task_id
        )
        if self._on_enqueue is not None:
            self._on_enqueue()
        return record.task_id

    def _admit_task(
        self,
        client_id: str,
        func_id: str,
        endpoint_id: str,
        args_payload: Payload,
        *,
        tenant: str,
        chaos_key: str | None,
        deadline_at: float | None,
    ) -> tuple[str, str]:
        """Per-task admission checks shared by ``submit`` and
        ``submit_batch``: function/endpoint existence, deadline, poison
        quarantine, breaker steering, fault injection, and the payload cap.
        May re-steer the task; returns the (possibly new) endpoint id and
        the content fingerprint."""
        self.endpoint_site(endpoint_id)
        with self._lock:
            known = (
                func_id in self._functions
                and self._function_tenants.get(func_id, DEFAULT_TENANT) == tenant
            )
        if not known:
            raise WorkflowError(f"unknown function {func_id!r}")
        if deadline_at is not None and deadline_at <= self.clock.now():
            raise DeadlineExceededError(
                f"task submitted after its own deadline ({deadline_at:.3f}s)"
            )
        # Content fingerprint for poison accounting: the chaos-key base is
        # already a digest of the argument bytes; derive one otherwise.
        fingerprint = (chaos_key or "").partition("#")[0]
        if not fingerprint:
            fingerprint = hashlib.sha256(args_payload.data).hexdigest()[:16]
        fingerprint = f"{func_id}:{fingerprint}"
        if self.poison is not None:
            if self.poison.is_quarantined(tenant, fingerprint):
                counter_inc("resilience.quarantine_refusals", tenant=tenant)
                raise TaskQuarantinedError(
                    f"fingerprint {fingerprint} is quarantined in tenant "
                    f"{tenant!r}'s dead-letter queue (it failed on "
                    f"{self.poison.policy.quorum} distinct endpoints); "
                    "`repro.cli deadletter retry|drop` releases it",
                    fingerprint=fingerprint,
                )
            # Steer a striked fingerprint's retry to an endpoint that has
            # not voted yet, so a true poison task reaches quorum instead
            # of failing forever on one endpoint.
            if endpoint_id in self.poison.strikes(fingerprint):
                with self._queue_cond:
                    candidates = self._group_members_locked(endpoint_id)
                untried = self.poison.untried_endpoint(fingerprint, candidates)
                if untried is not None:
                    counter_inc(
                        "resilience.poison_steered",
                        from_endpoint=endpoint_id,
                        to_endpoint=untried,
                    )
                    endpoint_id = untried
        if self.health is not None:
            # An open breaker turns submits away at admission — cheaper than
            # enqueueing onto a queue the shed sweep would drain anyway.
            now = self.clock.now()
            if self.health.evaluate(endpoint_id, now) == BREAKER_OPEN:
                with self._queue_cond:
                    target = self._healthy_target_locked(endpoint_id, now)
                if target is not None:
                    counter_inc(
                        "resilience.steered",
                        from_endpoint=endpoint_id,
                        to_endpoint=target,
                    )
                    endpoint_id = target
        spec = chaos_check(
            "cloud.submit",
            chaos_key or f"{client_id}|{func_id}",
            attempt=attempt_from_key(chaos_key),
            size=args_payload.nominal_size,
        )
        if spec is not None or args_payload.nominal_size > self.constants.faas_payload_cap:
            reason = (
                f"injected fault {spec.mode!r}: service rejected the payload"
                if spec is not None
                else "pass large data by reference instead"
            )
            raise PayloadTooLargeError(
                f"arguments are {args_payload.nominal_size} bytes; the service "
                f"caps payloads at {self.constants.faas_payload_cap} ({reason})"
            )
        return endpoint_id, fingerprint

    def submit_batch(
        self,
        token: Token,
        client_id: str,
        items: list[TaskSubmission],
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> list:
        """Admit a coalesced batch of tasks in one API round trip.

        The batch pays the shared costs once — one auth/tenant check, one
        serialized admission charge, one WAL append, one queue wakeup, and
        one coalesced doorbell per destination endpoint — while every
        per-task check from :meth:`submit` (function known, deadline,
        quarantine, breaker steering, fault injection, payload cap) still
        runs per item.  Returns a list aligned with ``items``: a task id
        where admission succeeded, the raising :class:`ReproError` where it
        did not, so the client can split rejects back into singles.
        """
        self.auth.validate(token, SCOPE_COMPUTE)
        validate_tenant_name(tenant)
        if tenant != DEFAULT_TENANT:
            self.auth.validate(token, tenant_scope(tenant))
        self.expire_leases()
        results: list = [None] * len(items)
        admitted: list[tuple[int, TaskSubmission, str, str]] = []
        for i, item in enumerate(items):
            try:
                endpoint_id, fingerprint = self._admit_task(
                    client_id,
                    item.func_id,
                    item.endpoint_id,
                    item.args_payload,
                    tenant=tenant,
                    chaos_key=item.chaos_key,
                    deadline_at=item.deadline_at,
                )
            except ReproError as exc:
                results[i] = exc
                continue
            admitted.append((i, item, endpoint_id, fingerprint))
        if not admitted:
            return results
        # One serialized admission charge for the whole batch — this is the
        # control-plane amortization that lifts sustained tasks/sec.
        if self._service_time > 0.0:
            with self._admission_lock:
                self.clock.sleep(self._service_time)
        records: list[TaskRecord] = []
        task_docs: list[dict] = []
        for i, item, endpoint_id, fingerprint in admitted:
            payload = item.args_payload
            if payload.nominal_size < self.constants.faas_small_object_threshold:
                # Zero-copy: small payloads rode the batched submit message,
                # skipping the redis hop's second (de)serialization.
                payload = borrow(payload)
            args_locator = self.store.write(payload)
            task_id = f"task-{self._task_namespace}{next(self._ids):08d}"
            record = TaskRecord(
                task_id=task_id,
                func_id=item.func_id,
                endpoint_id=endpoint_id,
                client_id=client_id,
                args_locator=args_locator,
                submitted_at=self.clock.now(),
                trace_ctx=item.trace_ctx,
                chaos_key=item.chaos_key,
                prefetch=tuple(item.prefetch),
                tenant=tenant,
                args_nbytes=payload.nominal_size,
                deadline_at=item.deadline_at,
                fingerprint=fingerprint,
            )
            records.append(record)
            results[i] = task_id
            task_docs.append(
                {
                    "task_id": task_id,
                    "func_id": item.func_id,
                    "endpoint_id": endpoint_id,
                    "locator": args_locator,
                    "args": encode_payload(payload),
                    "chaos_key": item.chaos_key,
                    "submitted_at": record.submitted_at,
                    "deadline_at": item.deadline_at,
                    "fingerprint": fingerprint,
                }
            )
        # Batch WAL fsync point: ONE append makes the whole admission
        # durable, but each task doc inside it replays individually — the
        # record stays per-task-replayable (see recover_cloud), so a crash
        # between this append and the queue fan-out below loses nothing.
        if self.journal is not None:
            self.journal.append(
                "submit_batch",
                client_id=client_id,
                tenant=tenant,
                tasks=task_docs,
            )
        with self._queue_cond:
            for record in records:
                self._tasks[record.task_id] = record
                self._tenant_queue_locked(record.endpoint_id, tenant).append(
                    record.task_id
                )
            for endpoint_id in {r.endpoint_id for r in records}:
                self._publish_depth_locked(endpoint_id)
            self._queue_cond.notify_all()
        counter_inc(
            "cloud.submits", len(records), tenant=tenant, shard=self._shard_label
        )
        counter_inc("cloud.batch_submits", tenant=tenant, shard=self._shard_label)
        # One coalesced doorbell per destination endpoint: the payload is
        # the comma-joined id list (single-id doorbells have no comma, so
        # unbatched consumers parse unchanged).
        by_endpoint: dict[str, list[TaskRecord]] = {}
        for record in records:
            by_endpoint.setdefault(record.endpoint_id, []).append(record)
        for endpoint_id in sorted(by_endpoint):
            group = by_endpoint[endpoint_id]
            self.bus.publish(
                task_topic(endpoint_id),
                ",".join(r.task_id for r in group),
                chaos_key=group[0].chaos_key or group[0].task_id,
            )
        if self._on_enqueue is not None:
            self._on_enqueue()
        return results

    def task(self, task_id: str) -> TaskRecord:
        with self._lock:
            try:
                return self._tasks[task_id]
            except KeyError:
                raise WorkflowError(f"unknown task {task_id!r}") from None

    def task_records(self) -> list[TaskRecord]:
        """Every task record the cloud has seen (audit/invariant checks)."""
        with self._queue_cond:
            return list(self._tasks.values())

    def get_result_payload(self, token: Token, task_id: str) -> tuple[TaskStatus, Payload]:
        self.auth.validate(token, SCOPE_COMPUTE)
        record = self.task(task_id)
        if not record.status.terminal or record.result_locator is None:
            raise WorkflowError(f"task {task_id} has no result yet")
        # The result is being collected: retire its poll-fallback entry so a
        # client that was notified over the bus never re-sees it while
        # draining the completed queue in fallback mode.
        self._completed.retire(record.client_id, task_id)
        return record.status, self.store.read(record.result_locator)

    def next_completed(self, client_id: str, timeout: float | None) -> str | None:
        """Block until some task of ``client_id`` completes; returns its id.

        This is the poll half of the delivery hybrid — the fallback path a
        client uses while its bus subscription is lapsed (the push half is
        the ``results/<client_id>`` bus topic).  A spurious or competing
        wakeup does not consume the budget: the wait loops on a deadline
        until a completion arrives or the full timeout elapses.  When the
        feed is shared across shards, one wait covers all of them.
        """
        return self._completed.next_completed(client_id, timeout)

    def next_completed_batch(
        self, client_id: str, max_n: int = 32, timeout: float | None = None
    ) -> list[str]:
        """Batched form of :meth:`next_completed`: one wait drains up to
        ``max_n`` completions, so a result storm costs the poller one
        wakeup instead of one per task."""
        return self._completed.next_completed_batch(client_id, max_n, timeout)

    # -- endpoint side -------------------------------------------------------------
    def fetch_tasks(
        self,
        token: Token,
        endpoint_id: str,
        max_tasks: int,
        timeout: float | None,
    ) -> list[TaskDispatch]:
        """Long-poll for work (models the AMQP delivery to the endpoint).

        Draining is weighted round-robin across the endpoint's tenant
        queues, so a tenant flooding the feed gets at most its weight share
        of every delivery round while backlogs compete.

        The long-poll wait is a deadline loop clamped to the remaining
        budget: wakeups for *other* endpoints' queues (every enqueue
        notifies the shared condition) re-enter the wait with whatever
        budget is left instead of consuming — or overshooting — the whole
        timeout on a single un-clamped sleep."""
        self.auth.validate(token, SCOPE_COMPUTE)
        deadline = None if timeout is None else self.clock.now() + timeout
        out: list[TaskDispatch] = []
        expired: list[TaskRecord] = []
        with self._queue_cond:
            self._expire_leases_locked()
            self._endpoint_online[endpoint_id] = True
            # Any healthy endpoint's fetch sweeps work away from gray peers
            # — the breaker analogue of the lazy lease reaper above.
            self._shed_open_breakers_locked()
            if self.health is not None and not self.health.admit(
                endpoint_id, self.clock.now()
            ):
                # Breaker open: nothing for this endpoint this round.  Hold
                # the long poll open so the agent's cadence is unchanged.
                if timeout is not None and timeout > 0:
                    self._queue_cond.wait(self.clock.wall_timeout(timeout))
                return []
            while not self._backlog_locked(endpoint_id):
                remaining = None
                if deadline is not None:
                    remaining = deadline - self.clock.now()
                    if remaining <= 0:
                        break
                self._queue_cond.wait(
                    None if remaining is None else self.clock.wall_timeout(remaining)
                )
            while len(out) < max_tasks:
                task_id = self._pop_next_locked(endpoint_id)
                if task_id is None:
                    break
                record = self._tasks[task_id]
                if (
                    record.deadline_at is not None
                    and self.clock.now() >= record.deadline_at
                ):
                    # The deadline already passed while the task queued:
                    # fail it here instead of shipping dead work.
                    if self.usage is not None:
                        self.usage.task_dispatched(record.tenant, record.args_nbytes)
                    expired.append(record)
                    continue
                record.status = TaskStatus.DISPATCHED
                record.fetched_at = self.clock.now()
                if self.usage is not None:
                    self.usage.task_dispatched(record.tenant, record.args_nbytes)
                out.append(
                    TaskDispatch(
                        record.task_id,
                        record.func_id,
                        record.args_locator,
                        record.trace_ctx,
                        record.chaos_key,
                        record.prefetch,
                        record.tenant,
                        record.deadline_at,
                    )
                )
            self._publish_depth_locked(endpoint_id)
        for record in expired:
            counter_inc("resilience.deadline_expired", endpoint=endpoint_id)
            self._fail_task_cloudside(
                record,
                f"DeadlineExceededError: task {record.task_id} missed its "
                f"deadline ({record.deadline_at:.3f}s) while queued",
            )
        # Dispatch fsync point (outside the queue lock: the charge must not
        # serialize other endpoints' fetches): the lease is durable before
        # the endpoint receives the batch, so a crash-rebuilt shard re-leases
        # these tasks instead of losing track of who holds them.
        if self.journal is not None and out:
            self.journal.append(
                "dispatch",
                endpoint_id=endpoint_id,
                task_ids=[d.task_id for d in out],
                at=self.clock.now(),
            )
        return out

    def republish_doorbells(self) -> int:
        """Re-ring the doorbell for every task still queued at this shard.

        Used after a shard outage: doorbells delivered while the admission
        tier was down were acked against empty fetches (the router skipped
        the dark shard), so the queued backlog has no wakeup left.  Returns
        the number of doorbells published."""
        with self._queue_cond:
            queued = [
                (record.endpoint_id, record.task_id, record.chaos_key)
                for endpoint_id in self._queues
                for record in self._queued_records_locked(endpoint_id)
            ]
            if queued:
                self._queue_cond.notify_all()
        for endpoint_id, task_id, chaos_key in queued:
            self.bus.publish(
                task_topic(endpoint_id), task_id, chaos_key=chaos_key or task_id
            )
        if queued and self._on_enqueue is not None:
            self._on_enqueue()
        return len(queued)

    def requeue_dispatched(self, token: Token, endpoint_id: str) -> list[str]:
        """Re-queue tasks an endpoint fetched but never finished.

        Called when an endpoint restarts after a crash: anything it held in
        DISPATCHED state goes back to the front of its queue, preserving
        the store-and-forward guarantee of §IV-A3 even across endpoint
        process loss (the argument payloads still live in the cloud store).
        Returns the re-queued task ids, oldest first.
        """
        self.auth.validate(token, SCOPE_COMPUTE)
        self.endpoint_site(endpoint_id)
        with self._queue_cond:
            stranded = sorted(
                (
                    record
                    for record in self._tasks.values()
                    if record.endpoint_id == endpoint_id
                    and record.status is TaskStatus.DISPATCHED
                ),
                key=lambda record: record.submitted_at,
            )
            for record in reversed(stranded):
                record.status = TaskStatus.WAITING
                record.fetched_at = None
                self._tenant_queue_locked(endpoint_id, record.tenant).appendleft(
                    record.task_id
                )
                if self.usage is not None:
                    self.usage.task_requeued(record.tenant, record.args_nbytes)
            if stranded:
                self._publish_depth_locked(endpoint_id)
                self._queue_cond.notify_all()
        for record in stranded:
            self.bus.publish(
                task_topic(endpoint_id),
                record.task_id,
                chaos_key=record.chaos_key or record.task_id,
            )
        return [record.task_id for record in stranded]

    def _fail_task_cloudside(self, record: TaskRecord, message: str) -> bool:
        """Terminally fail a task from inside the cloud (deadline expiry,
        hedge-loser cancellation) with a fabricated failure result.

        Uses the same exactly-once dance as :meth:`report_result`: the
        terminal transition happens under the completed-feed lock, a copy
        that already went terminal wins, and the journal records the
        fabricated result so a crash-rebuilt shard agrees the task is done.
        """
        payload = serialize({"success": False, "error": message, "traceback": None})
        locator = self.store.write(payload, chaos_exempt=True)
        if self.journal is not None:
            self.journal.append(
                "result",
                task_id=record.task_id,
                endpoint_id=record.endpoint_id,
                success=False,
                locator=locator,
                payload=encode_payload(payload),
                exempt=True,
                at=self.clock.now(),
            )
        with self._completed.cond:
            if record.status.terminal:
                return False
            record.result_locator = locator
            record.status = TaskStatus.FAILED
            record.completed_at = self.clock.now()
            self._completed.push_locked(record.client_id, record.task_id)
        if self.usage is not None:
            self.usage.task_finished(record.tenant)
        self.bus.publish(
            result_topic(record.client_id),
            record.task_id,
            chaos_key=record.chaos_key or record.task_id,
        )
        return True

    def cancel_task(self, token: Token, task_id: str) -> bool:
        """Best-effort cancel of a *still-queued* task; True when it was
        dequeued before any endpoint fetched it.

        The hedged-execution loser path: when the first copy of a task
        wins, the client cancels the other leg.  Only WAITING tasks can be
        cancelled — once DISPATCHED the work is already running somewhere
        and the report/duplicate machinery reconciles it instead (that is
        the ``wasted`` hedge outcome).  A cancelled task goes terminal
        through the standard exactly-once transition, so the ledger never
        double-counts a hedged pair."""
        self.auth.validate(token, SCOPE_COMPUTE)
        with self._queue_cond:
            record = self._tasks.get(task_id)
            removed = False
            if record is not None and record.status is TaskStatus.WAITING:
                queue = self._queues.get(record.endpoint_id, {}).get(record.tenant)
                if queue is not None:
                    try:
                        queue.remove(task_id)
                        removed = True
                    except ValueError:
                        pass
                if removed:
                    self._publish_depth_locked(record.endpoint_id)
        if not removed:
            return False
        if self.usage is not None:
            # The queued copy's argument bytes no longer wait in a queue.
            self.usage.task_dispatched(record.tenant, record.args_nbytes)
        counter_inc("resilience.cancels", endpoint=record.endpoint_id)
        self._fail_task_cloudside(
            record,
            f"CancelledError: task {task_id} cancelled while queued "
            "(hedged duplicate lost the race)",
        )
        return True

    def _check_reporter(self, record: TaskRecord, endpoint_id: str) -> bool:
        """Validate a result report; True means "accept", False "drop".

        A second report for an already-terminal task is dropped, not an
        error (a crash-requeued task can legitimately run twice; exactly
        one terminal transition survives).  A report from an endpoint the
        task was failed *away from* is a stale lease.  Anything else
        claiming someone else's task is a protocol violation.
        """
        if record.status.terminal:
            counter_inc("faas.duplicate_results", endpoint=endpoint_id)
            return False
        if record.endpoint_id != endpoint_id:
            if endpoint_id in record.previous_endpoints:
                counter_inc("faas.stale_results", endpoint=endpoint_id)
                raise LeaseExpiredError(
                    f"endpoint {endpoint_id} reported task {record.task_id} "
                    f"after its lease expired; the task now belongs to "
                    f"{record.endpoint_id}"
                )
            raise WorkflowError(
                f"endpoint {endpoint_id} reported a result for task "
                f"{record.task_id} assigned to {record.endpoint_id}"
            )
        return True

    def report_result(
        self,
        token: Token,
        endpoint_id: str,
        task_id: str,
        success: bool,
        result_payload: Payload,
    ) -> None:
        self.auth.validate(token, SCOPE_COMPUTE)
        record = self.task(task_id)
        with self._completed.cond:
            if not self._check_reporter(record, endpoint_id):
                return
        locator = self.store.write(result_payload, chaos_exempt=not success)
        # Result-uplink fsync point: the outcome (and its bytes) is durable
        # before the terminal transition or the client notification.  A
        # crash after this append but before the bus publish is the classic
        # lost-notification window — replay applies the journaled result and
        # re-notifies, and the client's pending-table dedupe makes the
        # duplicate harmless.  A duplicate report that loses the re-check
        # below leaves an extra result record; replay keeps the first.
        if self.journal is not None:
            self.journal.append(
                "result",
                task_id=task_id,
                endpoint_id=endpoint_id,
                success=success,
                locator=locator,
                payload=encode_payload(result_payload),
                exempt=not success,
                at=self.clock.now(),
            )
        if not self._finalize_result(record, endpoint_id, success, locator):
            return
        self.bus.publish(
            result_topic(record.client_id),
            task_id,
            chaos_key=record.chaos_key or task_id,
        )

    def _finalize_result(
        self, record: TaskRecord, endpoint_id: str, success: bool, locator: str
    ) -> bool:
        """Apply a journaled result: drop requeued copies, make the terminal
        transition exactly once, and feed health/poison/usage accounting.
        Returns False when a competing copy won the re-check (duplicate
        dropped); the caller publishes the result doorbell on True."""
        task_id = record.task_id
        # A requeued copy of this task may still sit in a queue (report
        # racing a reclaim): drop it so the work is not executed again.
        with self._queue_cond:
            queue = self._queues.get(record.endpoint_id, {}).get(record.tenant)
            removed = False
            if queue is not None:
                try:
                    queue.remove(task_id)
                    removed = True
                except ValueError:
                    pass
            if removed:
                self._publish_depth_locked(record.endpoint_id)
        if removed and self.usage is not None:
            # The queued copy's argument bytes no longer wait in a queue.
            self.usage.task_dispatched(record.tenant, record.args_nbytes)
        with self._completed.cond:
            # Re-check: another copy of the task may have completed while
            # this thread was paying the store write.
            if not self._check_reporter(record, endpoint_id):
                return False
            record.result_locator = locator
            record.status = TaskStatus.SUCCESS if success else TaskStatus.FAILED
            record.completed_at = self.clock.now()
            self._completed.push_locked(record.client_id, task_id)
        if self.health is not None:
            # Dispatch→result latency plus the outcome feed the endpoint's
            # health score (the EWMA/consecutive-error breaker inputs).
            started = record.fetched_at or record.submitted_at
            self.health.record_result(
                endpoint_id,
                max(0.0, record.completed_at - started),
                success,
                record.completed_at,
            )
        if self.poison is not None and record.fingerprint is not None:
            if success:
                self.poison.note_success(record.fingerprint)
            else:
                entry = self.poison.note_failure(
                    record.tenant,
                    record.fingerprint,
                    endpoint_id,
                    func_id=record.func_id,
                    task_id=record.task_id,
                    args_locator=record.args_locator,
                    client_id=record.client_id,
                    error=(
                        f"task {task_id} failed terminally on endpoint "
                        f"{endpoint_id}"
                    ),
                    now=record.completed_at,
                )
                if entry is not None:
                    counter_inc("resilience.quarantined", tenant=record.tenant)
                    # Quarantine is durable: a crash-rebuilt shard must keep
                    # refusing the fingerprint, or the poison task resumes
                    # burning retry budget after every recovery.
                    if self.journal is not None:
                        self.journal.append(
                            "deadletter", op="add", entry=entry.to_record()
                        )
        if self.usage is not None:
            self.usage.task_finished(record.tenant)
        return True

    def report_results(
        self,
        token: Token,
        endpoint_id: str,
        results: list[tuple[str, bool, Payload]],
    ) -> list:
        """Uplink a drained batch of results in one API round trip.

        Pays one auth check and ONE WAL append for the whole batch (each
        result doc inside it replays individually), coalesces the result
        doorbells per destination client, and borrows sub-20 kB result
        payloads onto the reply message so they skip the redis hop.
        Returns a list aligned with ``results``: ``None`` for accepted or
        duplicate-dropped reports, the per-task :class:`ReproError` (e.g.
        :class:`LeaseExpiredError` for a stale lease) otherwise.
        """
        self.auth.validate(token, SCOPE_COMPUTE)
        outcomes: list = [None] * len(results)
        accepted: list[tuple[int, TaskRecord, bool, str, Payload]] = []
        result_docs: list[dict] = []
        for i, (task_id, success, result_payload) in enumerate(results):
            try:
                record = self.task(task_id)
                with self._completed.cond:
                    if not self._check_reporter(record, endpoint_id):
                        continue
            except ReproError as exc:
                outcomes[i] = exc
                continue
            if result_payload.nominal_size < self.constants.faas_small_object_threshold:
                result_payload = borrow(result_payload)
            locator = self.store.write(result_payload, chaos_exempt=not success)
            accepted.append((i, record, success, locator, result_payload))
            result_docs.append(
                {
                    "task_id": task_id,
                    "success": success,
                    "locator": locator,
                    "payload": encode_payload(result_payload),
                    "exempt": not success,
                    "at": self.clock.now(),
                }
            )
        if not accepted:
            return outcomes
        # Batch result fsync point: one append covers every outcome in the
        # uplink, and each doc replays individually on recovery.
        if self.journal is not None:
            self.journal.append(
                "result_batch", endpoint_id=endpoint_id, results=result_docs
            )
        notify: dict[str, list[TaskRecord]] = {}
        for i, record, success, locator, _payload in accepted:
            try:
                if self._finalize_result(record, endpoint_id, success, locator):
                    notify.setdefault(record.client_id, []).append(record)
            except ReproError as exc:
                outcomes[i] = exc
        # One coalesced result doorbell per client (comma-joined ids).
        for client_id in sorted(notify):
            group = notify[client_id]
            self.bus.publish(
                result_topic(client_id),
                ",".join(r.task_id for r in group),
                chaos_key=group[0].chaos_key or group[0].task_id,
            )
        return outcomes

    # -- dead-letter queue ------------------------------------------------------
    def deadletters(self, tenant: str | None = None) -> list:
        """The quarantined entries (all tenants, or one)."""
        if self.poison is None:
            return []
        return self.poison.entries(tenant)

    def deadletter_drop(self, token: Token, tenant: str, fingerprint: str):
        """Discard a quarantined entry for good (operator gave up on it).
        Returns the removed entry, or ``None`` if nothing matched."""
        self.auth.validate(token, SCOPE_COMPUTE)
        if self.poison is None:
            return None
        entry = self.poison.remove(tenant, fingerprint)
        if entry is not None:
            counter_inc("resilience.deadletter_drops", tenant=tenant)
            if self.journal is not None:
                self.journal.append(
                    "deadletter", op="drop", entry=entry.to_record()
                )
        return entry

    def deadletter_retry(
        self, token: Token, tenant: str, fingerprint: str, endpoint_id: str
    ) -> str | None:
        """Release a quarantine and resubmit the stored task to
        ``endpoint_id`` with a fresh strike slate.  Returns the new task id,
        or ``None`` if nothing matched."""
        self.auth.validate(token, SCOPE_COMPUTE)
        if self.poison is None:
            return None
        entry = self.poison.remove(tenant, fingerprint)
        if entry is None:
            return None
        counter_inc("resilience.deadletter_retries", tenant=tenant)
        if self.journal is not None:
            self.journal.append("deadletter", op="drop", entry=entry.to_record())
        args_payload = self.store.read(entry.args_locator)
        return self.submit(
            token,
            entry.client_id,
            entry.func_id,
            endpoint_id,
            args_payload,
            tenant=tenant,
        )

    # -- durability ------------------------------------------------------------
    @staticmethod
    def task_id_index(task_id: str) -> int:
        """The numeric suffix of a task id (``task-s2-00000042`` -> 42)."""
        return int(task_id.rsplit("-", 1)[-1])

    def journal_state(self) -> dict:
        """A full-state snapshot document for journal compaction.

        Everything replay would otherwise reconstruct from the log:
        registered functions, adopted endpoints, and every task record with
        its argument (and, when terminal, result) payload bytes.  Applied
        by :func:`repro.durable.recover_cloud` before the log suffix.
        """
        with self._lock:
            functions = [
                {
                    "func_id": func_id,
                    "tenant": self._function_tenants.get(func_id, DEFAULT_TENANT),
                    "payload": encode_payload(payload),
                }
                for func_id, payload in sorted(self._functions.items())
            ]
            endpoints = [
                {
                    "endpoint_id": endpoint_id,
                    "site": site.name,
                    "failover_group": self._failover_groups.get(endpoint_id),
                }
                for endpoint_id, site in sorted(self._endpoints.items())
            ]
        tasks = []
        next_id = 0
        with self._queue_cond:
            records = sorted(self._tasks.values(), key=lambda r: r.task_id)
        for record in records:
            next_id = max(next_id, self.task_id_index(record.task_id) + 1)
            doc = {
                "task_id": record.task_id,
                "func_id": record.func_id,
                "endpoint_id": record.endpoint_id,
                "client_id": record.client_id,
                "locator": record.args_locator,
                "status": record.status.value,
                "tenant": record.tenant,
                "chaos_key": record.chaos_key,
                "submitted_at": record.submitted_at,
                "fetched_at": record.fetched_at,
                "completed_at": record.completed_at,
                "requeues": record.requeues,
                "previous_endpoints": list(record.previous_endpoints),
                "deadline_at": record.deadline_at,
                "fingerprint": record.fingerprint,
            }
            args = self.store.raw(record.args_locator)
            if args is not None:
                doc["args"] = encode_payload(args.payload)
            if record.result_locator is not None:
                doc["result_locator"] = record.result_locator
                stored = self.store.raw(record.result_locator)
                if stored is not None:
                    doc["result"] = encode_payload(stored.payload)
                    doc["result_exempt"] = stored.chaos_exempt
            tasks.append(doc)
        return {
            "functions": functions,
            "endpoints": endpoints,
            "tasks": tasks,
            "next_id": next_id,
            # A shared tracker may hold entries owned by sibling shards;
            # replaying them is idempotent (keyed by tenant+fingerprint).
            "deadletters": [
                entry.to_record() for entry in self.deadletters()
            ],
        }
