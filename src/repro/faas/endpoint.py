"""The user-deployed half of the FaaS platform (the FuncX endpoint).

An endpoint is a lightweight agent a user starts on a resource they can log
into.  It makes only *outbound* connections: the agent blocks on the cloud
bus's task-available doorbell stream (``repro.bus``) and fetches dispatches
only when notified, falling back to the original long-poll loop whenever its
subscription lapses; workers (provisioned through the local batch scheduler
via a :class:`~repro.resources.worker.WorkerPool`) execute the dispatches,
and an uplink thread reports results back.  Pausing an endpoint models the
network blips §IV-A3 talks about: the cloud keeps queueing tasks and the
endpoint drains them on reconnect — no work is lost.
"""

from __future__ import annotations

import queue
import threading
import traceback
from dataclasses import dataclass
from typing import Callable

from repro.batch.reactor import get_reactor
from repro.bench.recording import emit
from repro.bus import BusConsumer
from repro.chaos.plan import attempt_from_key, chaos_check
from repro.exceptions import (
    LeaseExpiredError,
    SubscriptionLapsedError,
    WorkflowError,
)
from repro.faas.auth import Token
from repro.faas.cloud import FaasCloud, TaskDispatch, task_topic
from repro.net.clock import Clock, get_clock
from repro.net.context import SiteThread
from repro.net.topology import Site
from repro.observe import TraceContext, counter_inc, gauge_set, trace_span
from repro.proxystore.prefetch import apply_prefetch_hints
from repro.resources.worker import WorkerPool
from repro.serialize import (
    Payload,
    deserialize,
    deserialize_cost,
    serialize,
    serialize_cost,
)

__all__ = ["EndpointUtilization", "FaasEndpoint"]


@dataclass(frozen=True)
class EndpointUtilization:
    """One endpoint's worker/queue state at a point in time.

    This is *the* canonical utilization signal: the autoscaler, the CLI,
    and the benchmarks all read this snapshot instead of each recomputing
    it from pool internals.
    """

    workers: int
    active: int
    idle: int
    queue_depth: int


class FaasEndpoint:
    """Endpoint agent + worker pool for one resource.

    Parameters
    ----------
    name:
        Label used in the registered endpoint id.
    cloud / token:
        The cloud service and the credential this endpoint authenticates
        with (endpoints are paired with the platform at deploy time).
    site:
        Where the agent process runs (e.g. a login node).  Workers may run
        on a different site (compute nodes) — the pool's site decides.
    pool:
        Worker lanes executing the function bodies.
    failover_group:
        Endpoints registered under the same group name are interchangeable:
        if this endpoint's heartbeat lease expires, the cloud re-dispatches
        its tasks to a surviving group member.
    heartbeats:
        Run the heartbeat thread that renews this endpoint's lease (on by
        default; disable for rigs that drive the cloud API directly).
    """

    def __init__(
        self,
        name: str,
        cloud: FaasCloud,
        token: Token,
        site: Site,
        pool: WorkerPool,
        *,
        poll_interval: float | None = None,
        max_tasks_per_poll: int = 32,
        clock: Clock | None = None,
        failover_group: str | None = None,
        heartbeats: bool = True,
        use_bus: bool = True,
        uplink_batching: bool = False,
    ) -> None:
        if poll_interval is not None and poll_interval <= 0:
            raise WorkflowError(
                f"poll_interval must be a positive number of seconds, "
                f"got {poll_interval!r} (the endpoint long-polls the cloud "
                "with this timeout; zero or negative would spin)"
            )
        if max_tasks_per_poll <= 0:
            raise WorkflowError(
                f"max_tasks_per_poll must be a positive integer, got "
                f"{max_tasks_per_poll!r} (each poll must be allowed to "
                "fetch at least one task)"
            )
        self.name = name
        self.cloud = cloud
        self.token = token
        self.site = site
        self.pool = pool
        self._poll_interval = (
            poll_interval
            if poll_interval is not None
            else cloud.constants.endpoint_poll_interval
        )
        self._max_tasks = max_tasks_per_poll
        self._clock = clock or get_clock()
        self._heartbeats = heartbeats
        self._heartbeat_timer = None
        # Opportunistic uplink batching: when results pile up in the outbox
        # faster than one API round trip drains them, ship the whole backlog
        # through ``report_results`` in a single call.  Opt-in because the
        # batch composition depends on thread timing — rigs that verify
        # bit-identical chaos ledgers with store-tier-matched faults keep
        # the per-result path.
        self._uplink_batching = uplink_batching
        self.endpoint_id = cloud.register_endpoint(
            token, name, pool.site, failover_group=failover_group
        )
        self._functions: dict[str, Callable] = {}
        self._outbox: queue.Queue[
            tuple[str, bool, Payload, TraceContext | None] | None
        ] = queue.Queue()
        self._running = False
        self._paused = threading.Event()
        self._crashed = threading.Event()
        self._threads: list[SiteThread] = []
        self._uplink_thread: SiteThread | None = None
        # Event-driven task pickup: block on the doorbell stream instead of
        # long-polling the cloud; ``_fallback`` flips on when the
        # subscription lapses and the long-poll path takes over until the
        # resubscribe replays the gap.  ``_fetched_tasks`` remembers ids this
        # agent already pulled so a replayed doorbell for work the fallback
        # poll caught is acked without an empty fetch.
        self._consumer = (
            BusConsumer(
                cloud.bus,
                task_topic(self.endpoint_id),
                self.endpoint_id,
                role="endpoint",
                chaos_label=name,
                clock=self._clock,
                max_batch=max_tasks_per_poll,
            )
            if use_bus
            else None
        )
        self._fallback = False
        # Guarded by ``_fetched_lock``: the poll thread adds/reads, the
        # uplink thread prunes reported ids, and ``resume(reclaim=True)``
        # clears from whichever thread drives the restart.
        self._fetched_lock = threading.Lock()
        self._fetched_tasks: set[str] = set()
        # Gray degradation (``endpoint.slow`` chaos): decided once per agent
        # lifetime at ``start()``, then applied to every task this instance
        # executes.  The endpoint stays alive and heartbeating — the failure
        # the health tracker exists to catch, because the lease never lapses.
        self._gray_delay = 0.0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "FaasEndpoint":
        if self._running:
            return self
        self._running = True
        spec = chaos_check("endpoint.slow", self.name, endpoint=self.name)
        if spec is not None:
            self._gray_delay = spec.delay
            counter_inc("endpoint.gray_degraded", endpoint=self.name)
        self.pool.start()
        self.cloud.set_endpoint_online(self.endpoint_id, True)
        loops = [(self._poll_loop, "poll"), (self._uplink_loop, "uplink")]
        if self._heartbeats:
            # Establish the lease before the first fetch so a crash at any
            # point of the endpoint's life is observable as a lease lapse.
            self.cloud.heartbeat(self.token, self.endpoint_id)
            # Renewals ride the shared process reactor: one scheduler thread
            # multiplexes every endpoint's heartbeat deadline instead of
            # each agent parking a thread in a sleep loop.
            self._heartbeat_timer = get_reactor().call_every(
                self.cloud.constants.endpoint_heartbeat_period,
                self._heartbeat_tick,
            )
        for target, label in loops:
            thread = SiteThread(
                self.site, target=target, name=f"faas-ep-{self.name}-{label}"
            )
            thread.start()
            self._threads.append(thread)
            if label == "uplink":
                self._uplink_thread = thread
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        self._paused.clear()
        wedged = []
        # Order matters for a graceful drain: silence the poll/heartbeat
        # loops first (no new dispatches), then let the pool run its queue
        # dry *while the uplink is still alive* so every drained result is
        # reported, and only then close the outbox.  A crashed endpoint
        # skips the drain: its backlog is the failover group's problem.
        for thread in self._threads:
            if thread is self._uplink_thread:
                continue
            thread.join(timeout=10)
            if thread.is_alive():
                wedged.append(thread.name)
                counter_inc("endpoint.wedged_threads", endpoint=self.name)
        dropped = self.pool.stop(drain=not self._crashed.is_set())
        if dropped:
            counter_inc("endpoint.closures_dropped", len(dropped), endpoint=self.name)
        self._outbox.put(None)
        if self._uplink_thread is not None:
            self._uplink_thread.join(timeout=10)
            if self._uplink_thread.is_alive():
                wedged.append(self._uplink_thread.name)
                counter_inc("endpoint.wedged_threads", endpoint=self.name)
        if not self._crashed.is_set():
            self.cloud.release_lease(self.token, self.endpoint_id)
            self.cloud.set_endpoint_online(self.endpoint_id, False)
            if self._consumer is not None:
                self._consumer.close()
        self._threads.clear()
        if wedged:
            raise WorkflowError(
                f"endpoint {self.name!r} shut down with wedged threads "
                f"{wedged} still alive after a 10 s join; their site clocks "
                "may be blocked on a dead condition variable"
            )

    def simulate_crash(self) -> None:
        """Kill the endpoint process mid-lease (no goodbye to the cloud).

        The agent stops polling, heartbeating, and uploading — exactly what
        the cloud sees when the node is reclaimed or the process dies.  The
        lease lapses after ``endpoint_lease_ttl`` and surviving members of
        the failover group inherit everything this endpoint held.  A crash
        is terminal for this instance; call :meth:`stop` to reap threads.
        """
        self._crashed.set()
        counter_inc("endpoint.crashes", endpoint=self.name)

    def pause(self) -> None:
        """Drop the cloud connection (network outage / restart)."""
        self._paused.set()
        self.cloud.set_endpoint_online(self.endpoint_id, False)

    def resume(self, *, reclaim: bool = False) -> None:
        """Reconnect to the cloud.

        ``reclaim=True`` models a restart after a *crash* (rather than a
        network blip): any task this endpoint had fetched but not finished
        is asked back from the cloud and will be re-dispatched.
        """
        if reclaim:
            self._pay_api_call()
            # Forget what the dead process held *before* the requeue emits
            # fresh doorbells: those ids must not be skipped as stale.
            with self._fetched_lock:
                self._fetched_tasks.clear()
            self.cloud.requeue_dispatched(self.token, self.endpoint_id)
        if self._heartbeats:
            self.cloud.heartbeat(self.token, self.endpoint_id)
        self._paused.clear()
        self.cloud.set_endpoint_online(self.endpoint_id, True)

    def utilization(self) -> EndpointUtilization:
        """Snapshot worker/queue state and export it as the canonical
        ``endpoint.workers{state=}`` / ``endpoint.queue_depth`` gauges."""
        pool = self.pool
        workers = getattr(pool, "online_count", pool.n_workers)
        active = min(pool.active_count, workers)
        idle = max(0, workers - active)
        depth = pool.queue_depth
        gauge_set("endpoint.workers", active, endpoint=self.name, state="active")
        gauge_set("endpoint.workers", idle, endpoint=self.name, state="idle")
        gauge_set("endpoint.queue_depth", depth, endpoint=self.name)
        return EndpointUtilization(
            workers=workers, active=active, idle=idle, queue_depth=depth
        )

    # -- cloud communication helpers ---------------------------------------------
    def _pay_api_call(self) -> None:
        cost = self.cloud.network.rtt(self.site, self.cloud.site)
        cost += self.cloud.network._sample(self.cloud.constants.faas_api_latency)
        self._clock.sleep(cost)

    def _function(self, func_id: str, tenant: str) -> Callable:
        fn = self._functions.get(func_id)
        if fn is None:
            self._pay_api_call()
            payload = self.cloud.get_function(self.token, func_id, tenant)
            self._clock.sleep(deserialize_cost(payload.nominal_size))
            fn = deserialize(payload)
            self._functions[func_id] = fn
        return fn

    # -- loops ----------------------------------------------------------------------
    def _heartbeat_tick(self):
        """One lease renewal, fired by the process reactor.  Returning
        ``False`` cancels the periodic timer (endpoint stopped or crashed —
        a crash must look exactly like a dead process: no more beats)."""
        if not self._running or self._crashed.is_set():
            return False
        if not self._paused.is_set():
            self._pay_api_call()
            self.cloud.heartbeat(self.token, self.endpoint_id)
        return True

    def _poll_loop(self) -> None:
        while self._running:
            if self._crashed.is_set():
                return
            if self._paused.is_set():
                self._clock.sleep(self._poll_interval)
                continue
            dispatches = self._next_dispatches()
            if not dispatches:
                continue
            # Crash *while holding fetched-but-unfinished tasks* — the case
            # the lease/failover machinery exists for.
            if chaos_check("endpoint.crash", self.name, endpoint=self.name):
                self.simulate_crash()
                return
            for dispatch in dispatches:
                try:
                    self._dispatch(dispatch)
                except Exception as exc:  # noqa: BLE001 - report, don't drop
                    counter_inc("endpoint.dispatch_errors", endpoint=self.name)
                    body = {
                        "success": False,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    }
                    self._outbox.put(
                        (dispatch.task_id, False, serialize(body), dispatch.trace_ctx)
                    )

    def _next_dispatches(self) -> list[TaskDispatch]:
        """One delivery round: bus doorbells when subscribed, the long-poll
        otherwise (bus disabled, or the subscription lapsed)."""
        consumer = self._consumer
        if consumer is not None and not self._fallback:
            try:
                envelopes = consumer.receive(timeout=self._poll_interval)
            except SubscriptionLapsedError:
                # Missed heartbeat or chaos-injected disconnect: degrade to
                # the poll path so nothing published during the gap waits on
                # the (now dead) subscription.
                self._fallback = True
                counter_inc(
                    "bus.fallback_engaged", role="endpoint", endpoint=self.name
                )
                return []
            if not envelopes:
                return []  # idle: no cloud poll at all — the bus is quiet
            # A replayed doorbell for work this agent already pulled (via an
            # earlier fetch or a fallback poll) is acked without a fetch.  A
            # coalesced (batch) doorbell carries comma-joined ids and is
            # stale only when *every* member was already pulled.
            with self._fetched_lock:
                stale = [
                    e
                    for e in envelopes
                    if all(
                        task_id in self._fetched_tasks
                        for task_id in e.payload.split(",")
                    )
                ]
            for envelope in stale:
                counter_inc("endpoint.doorbells_stale", endpoint=self.name)
                consumer.done(envelope)
            if len(stale) == len(envelopes):
                return []
            # One receive round can announce more work than one fetch window
            # (`_max_tasks`) holds — several coalesced doorbells, or a burst
            # of singles.  Acking after a single fetch would strand the tail
            # with no wakeup left, so keep pulling until every announced
            # member is in hand.  An empty fetch also ends the loop: the
            # queue is drained, meaning any uncovered member was picked up
            # by another agent and is no longer this doorbell's problem.
            live = [e for e in envelopes if e not in stale]
            dispatches = self._fetch(timeout=0.0, kind="doorbell")
            pulled = dispatches
            while pulled and not self._doorbells_covered(live):
                pulled = self._fetch(timeout=0.0, kind="doorbell")
                dispatches.extend(pulled)
            for envelope in live:
                consumer.done(envelope)
            return dispatches
        in_fallback = consumer is not None and self._fallback
        dispatches = self._fetch(
            timeout=self._poll_interval, kind="fallback" if in_fallback else "poll"
        )
        if in_fallback:
            if dispatches and consumer.trim_gap():
                # Doorbells trimmed by window overflow have no wakeup left,
                # so the backlog they covered must be polled out: stay on
                # the poll path until an empty fetch confirms the drain.
                return dispatches
            # Hand back to the bus: resubscription replays every unacked
            # doorbell, so no notification is lost across the gap (and when
            # a trim gap was crossed, the empty fetch above just confirmed
            # nothing is stranded behind it).
            consumer.resubscribe()
            self._fallback = False
        return dispatches

    def _doorbells_covered(self, envelopes) -> bool:
        """True when every task id the given doorbells announce has been
        pulled by this agent."""
        with self._fetched_lock:
            return all(
                task_id in self._fetched_tasks
                for envelope in envelopes
                for task_id in envelope.payload.split(",")
            )

    def _fetch(self, timeout: float, *, kind: str = "poll") -> list[TaskDispatch]:
        # One-way request; the fetch long-polls server-side.
        self._clock.sleep(self.cloud.network.latency(self.site, self.cloud.site))
        dispatches = self.cloud.fetch_tasks(
            self.token, self.endpoint_id, self._max_tasks, timeout
        )
        self._clock.sleep(self.cloud.network.latency(self.cloud.site, self.site))
        # ``endpoint.polls_empty / endpoint.polls`` is the *idle-spin*
        # fraction, so only the long-poll loop feeds it.  Fetches mandated
        # by the bus protocol (a doorbell's pull, the fallback's gap drain —
        # whose final fetch is empty *by design*, confirming the drain) are
        # counted separately: bounded per gap, they are work, not idling.
        if kind == "fallback":
            counter_inc("endpoint.fallback_polls", endpoint=self.name)
            if not dispatches:
                counter_inc("endpoint.fallback_polls_empty", endpoint=self.name)
        else:
            counter_inc("endpoint.polls", endpoint=self.name)
            if not dispatches:
                if kind == "doorbell":
                    counter_inc("endpoint.doorbell_fetches_empty", endpoint=self.name)
                else:
                    counter_inc("endpoint.polls_empty", endpoint=self.name)
        with self._fetched_lock:
            for dispatch in dispatches:
                self._fetched_tasks.add(dispatch.task_id)
        return dispatches

    def _dispatch(self, dispatch: TaskDispatch) -> None:
        # Fire the advisory cache warm first: the weights transfer toward
        # the *worker* site overlaps the argument download and the pool's
        # queueing delay, so the task's first proxy resolve lands hot.
        if dispatch.prefetch:
            fired = apply_prefetch_hints(
                dispatch.prefetch, self.pool.site, via=f"endpoint:{self.name}"
            )
            if fired:
                counter_inc("endpoint.prefetches", endpoint=self.name)
        # Pull the argument payload down from the cloud store (charged to
        # this thread: the endpoint is the one blocked on the download).
        with trace_span(
            "endpoint.fetch", parent=dispatch.trace_ctx, endpoint=self.name
        ):
            args_payload = self.cloud.store.read(dispatch.args_locator)
            self._clock.sleep(
                self.cloud.network.transfer_time(
                    self.cloud.site, self.site, args_payload.nominal_size
                )
            )
            emit(
                "data_transfer",
                resource=self.site.name,
                bytes=args_payload.nominal_size,
                via="faas-cloud",
            )
            fn = self._function(dispatch.func_id, dispatch.tenant)
        self.pool.submit(
            self._make_work(
                dispatch.task_id,
                fn,
                args_payload,
                dispatch.trace_ctx,
                chaos_key=dispatch.chaos_key,
                deadline_at=dispatch.deadline_at,
            )
        )

    def _make_work(
        self,
        task_id: str,
        fn: Callable,
        args_payload: Payload,
        trace_ctx: TraceContext | None = None,
        *,
        chaos_key: str | None = None,
        deadline_at: float | None = None,
    ) -> Callable[[], None]:
        endpoint_site = self.site
        worker_site = self.pool.site
        network = self.cloud.network
        clock = self._clock

        def work() -> None:
            # Manager -> worker forwarding inside the resource.  The span
            # lives on this worker thread's stack, so the ColmenaTask's
            # ``worker.execute`` span (raised inside ``fn``) nests under it.
            with trace_span("worker.run", parent=trace_ctx, endpoint=self.name):
                clock.sleep(
                    network.transfer_time(
                        endpoint_site, worker_site, args_payload.nominal_size
                    )
                )
                clock.sleep(deserialize_cost(args_payload.nominal_size))
                if deadline_at is not None and clock.now() >= deadline_at:
                    # Deadline propagation's endpoint-side cut: the budget
                    # lapsed while the task sat in the pool queue, so
                    # burning a worker on it helps nobody.  Report the miss
                    # instead of the (now worthless) value.
                    counter_inc("endpoint.deadline_skips", endpoint=self.name)
                    self._outbox.put(
                        (
                            task_id,
                            False,
                            serialize(
                                {
                                    "success": False,
                                    "error": (
                                        f"DeadlineExceededError: task {task_id} "
                                        f"missed its deadline ({deadline_at:.3f}s) "
                                        "before execution"
                                    ),
                                    "traceback": None,
                                }
                            ),
                            trace_ctx,
                        )
                    )
                    return
                counter_inc("endpoint.executions", endpoint=self.name)
                if self._gray_delay:
                    # Gray endpoint: every task pays the degradation, but
                    # the work still completes — only latency betrays it.
                    clock.sleep(self._gray_delay)
                try:
                    spec = chaos_check(
                        "worker.execute",
                        chaos_key or task_id,
                        attempt=attempt_from_key(chaos_key),
                        endpoint=self.name,
                    )
                    if spec is not None:
                        if spec.delay:
                            clock.sleep(spec.delay)
                        raise WorkflowError(
                            f"injected fault {spec.mode!r}: worker raised "
                            f"while executing task {task_id}"
                        )
                    # Poison keys on the attempt- and hedge-stripped content
                    # base: the *same* inputs fail the same way on every
                    # endpoint and every retry — the deterministic failure
                    # shape the quarantine quorum exists to catch.
                    poison = chaos_check(
                        "worker.poison",
                        (chaos_key or task_id).partition("#")[0],
                        attempt=attempt_from_key(chaos_key),
                        endpoint=self.name,
                    )
                    if poison is not None:
                        raise WorkflowError(
                            f"injected fault {poison.mode!r}: task {task_id} "
                            "fails deterministically on every endpoint"
                        )
                    args, kwargs = deserialize(args_payload)
                    value = fn(*args, **kwargs)
                    body = {"success": True, "value": value}
                    success = True
                except Exception as exc:
                    body = {
                        "success": False,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    }
                    success = False
                result_payload = serialize(body)
                clock.sleep(serialize_cost(result_payload.nominal_size))
                clock.sleep(
                    network.transfer_time(
                        worker_site, endpoint_site, result_payload.nominal_size
                    )
                )
            self._outbox.put((task_id, success, result_payload, trace_ctx))

        return work

    def _uplink_loop(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:
                return
            items = [item]
            stopping = False
            if self._uplink_batching:
                # Drain whatever else piled up during the last round trip —
                # the whole backlog ships in one ``report_results`` call.
                while len(items) < self._max_tasks:
                    try:
                        extra = self._outbox.get_nowait()
                    except queue.Empty:
                        break
                    if extra is None:
                        stopping = True
                        break
                    items.append(extra)
            # The tasks are leaving this agent: their ids no longer need to
            # shadow replayed doorbells, and keeping them would grow the
            # stale-set without bound over the endpoint's life.
            with self._fetched_lock:
                for task_id, _success, _payload, _ctx in items:
                    self._fetched_tasks.discard(task_id)
            if self._crashed.is_set():
                # The dead process takes its unsent results with it; the
                # cloud re-dispatches the tasks once the lease lapses.
                counter_inc(
                    "endpoint.results_lost", len(items), endpoint=self.name
                )
                if stopping:
                    return
                continue
            # Results wait here while paused (store-and-forward on our side).
            while self._paused.is_set():
                self._clock.sleep(self._poll_interval)
            if len(items) == 1:
                task_id, success, payload, trace_ctx = items[0]
                with trace_span(
                    "result.uplink", parent=trace_ctx, endpoint=self.name
                ):
                    self._pay_api_call()
                    try:
                        self.cloud.report_result(
                            self.token, self.endpoint_id, task_id, success, payload
                        )
                    except LeaseExpiredError:
                        # Our lease lapsed (long pause / stall) and the task
                        # was handed to a peer; the peer's result is the real
                        # one.
                        counter_inc("endpoint.stale_results", endpoint=self.name)
            else:
                self._uplink_batch(items)
            if stopping:
                return

    def _uplink_batch(
        self, items: list[tuple[str, bool, Payload, TraceContext | None]]
    ) -> None:
        """Report a drained backlog in one API round trip."""
        counter_inc("endpoint.uplink_batches", endpoint=self.name)
        with trace_span("result.uplink", parent=items[0][3], endpoint=self.name):
            self._pay_api_call()
            outcomes = self.cloud.report_results(
                self.token,
                self.endpoint_id,
                [(task_id, success, payload) for task_id, success, payload, _ in items],
            )
        for outcome in outcomes:
            if isinstance(outcome, LeaseExpiredError):
                counter_inc("endpoint.stale_results", endpoint=self.name)
            elif isinstance(outcome, Exception):
                # Anything beyond a stale lease is a protocol violation and
                # must be as loud as the singular path.
                raise outcome

    def __enter__(self) -> "FaasEndpoint":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
