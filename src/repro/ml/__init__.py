"""NumPy surrogate-model substrate (MPNN and SchNet stand-ins)."""

from repro.ml.ensemble import (
    Ensemble,
    bootstrap_indices,
    rank_by_ucb,
    ucb_scores,
)
from repro.ml.mpnn import MpnnSurrogate
from repro.ml.nn import MLP, mse, rmse
from repro.ml.schnet import (
    RbfBasis,
    SchnetSurrogate,
    featurize,
    featurize_with_jacobian,
)

__all__ = [
    "Ensemble",
    "bootstrap_indices",
    "rank_by_ucb",
    "ucb_scores",
    "MpnnSurrogate",
    "MLP",
    "mse",
    "rmse",
    "RbfBasis",
    "SchnetSurrogate",
    "featurize",
    "featurize_with_jacobian",
]
