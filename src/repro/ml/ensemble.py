"""Bootstrap ensembles and UCB ranking.

Both applications use an ensemble of eight surrogates, "each trained on a
different, randomly-selected subset of the training data" (§III-A/B), with
prediction variance driving the active-learning choices:

* molecular design ranks candidates by the Upper Confidence Bound —
  mean + standard deviation of the member predictions;
* fine-tuning fills its *uncertainty pool* with the structures whose
  predicted energies disagree most across the ensemble.

Members are trained independently, so applications can (and do) ship each
member's training off as its own task.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

__all__ = ["Regressor", "Ensemble", "bootstrap_indices", "ucb_scores", "rank_by_ucb"]


class Regressor(Protocol):
    """Anything trainable/predictable the ensemble can hold."""

    def train(self, x: np.ndarray, y: np.ndarray, **kwargs) -> list[float]: ...

    def predict(self, x: np.ndarray) -> np.ndarray: ...


def bootstrap_indices(
    n_samples: int, n_models: int, frac: float = 0.8, seed: int = 0
) -> list[np.ndarray]:
    """Deterministic per-member subsets (without replacement)."""
    if not 0 < frac <= 1:
        raise ValueError("frac must be in (0, 1]")
    rng = np.random.default_rng(seed)
    size = max(1, int(round(frac * n_samples)))
    return [
        rng.choice(n_samples, size=size, replace=False) for _ in range(n_models)
    ]


class Ensemble:
    """A container of independently trained members."""

    def __init__(self, members: Sequence[Regressor]) -> None:
        if not members:
            raise ValueError("an ensemble needs at least one member")
        self.members = list(members)

    @classmethod
    def build(
        cls, factory: Callable[[int], Regressor], n_models: int = 8
    ) -> "Ensemble":
        """Construct ``n_models`` members via ``factory(member_index)``."""
        return cls([factory(i) for i in range(n_models)])

    def __len__(self) -> int:
        return len(self.members)

    def train(
        self, x: np.ndarray, y: np.ndarray, *, frac: float = 0.8, seed: int = 0, **kwargs
    ) -> None:
        """Train every member on its bootstrap subset (serial reference
        implementation; the applications parallelize this as tasks)."""
        subsets = bootstrap_indices(len(x), len(self.members), frac, seed)
        for member, idx in zip(self.members, subsets):
            member.train(x[idx], np.asarray(y)[idx], **kwargs)

    def predict_all(self, x: np.ndarray) -> np.ndarray:
        """Member predictions, shape ``(n_members, n_samples)``."""
        return np.stack([m.predict(x) for m in self.members])

    def predict_mean_std(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        preds = self.predict_all(x)
        return preds.mean(axis=0), preds.std(axis=0)


def ucb_scores(mean: np.ndarray, std: np.ndarray, kappa: float = 1.0) -> np.ndarray:
    """Upper Confidence Bound: mean + kappa * std (paper uses kappa=1)."""
    return np.asarray(mean) + kappa * np.asarray(std)


def rank_by_ucb(
    mean: np.ndarray, std: np.ndarray, kappa: float = 1.0
) -> np.ndarray:
    """Indices sorted best-first by UCB."""
    return np.argsort(-ucb_scores(mean, std, kappa), kind="stable")
