"""The molecular-property surrogate (MPNN stand-in).

The paper's model is an ensemble of message-passing neural networks over
molecular graphs; its role in the workflow is (a) learn IP from completed
simulations, (b) score the full candidate set, (c) move ~10 MB of weights
per model between resources.  :class:`MpnnSurrogate` keeps roles (a) and
(b) with an MLP over precomputed fingerprints, and reproduces (c) with an
explicit ``weight_padding`` — extra nominal bytes attached to the pickled
state so a shipped model weighs what the paper's did without allocating it.
"""

from __future__ import annotations

import numpy as np

from repro.ml.nn import MLP
from repro.serialize import Blob

__all__ = ["MpnnSurrogate"]


class MpnnSurrogate:
    """Fingerprint → ionization-potential regressor."""

    def __init__(
        self,
        n_features: int,
        hidden: tuple[int, ...] = (64, 64),
        seed: int = 0,
        weight_padding: int = 0,
    ) -> None:
        self.n_features = n_features
        self.hidden = tuple(hidden)
        self.seed = seed
        self.weight_padding = int(weight_padding)
        self._mlp = MLP([n_features, *hidden, 1], seed=seed)

    # -- model API ----------------------------------------------------------
    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 60,
        batch_size: int = 32,
        lr: float = 2e-3,
        seed: int | None = None,
    ) -> list[float]:
        return self._mlp.train(
            x,
            y,
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            seed=self.seed if seed is None else seed,
        )

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self._mlp.predict(x)

    # -- transport: real weights + nominal padding ------------------------------
    def __getstate__(self) -> dict:
        return {
            "n_features": self.n_features,
            "hidden": self.hidden,
            "seed": self.seed,
            "weight_padding": self.weight_padding,
            "weights": self._mlp.get_weights(),
            "padding": Blob(self.weight_padding, tag="mpnn-weights"),
        }

    def __setstate__(self, state: dict) -> None:
        self.n_features = state["n_features"]
        self.hidden = tuple(state["hidden"])
        self.seed = state["seed"]
        self.weight_padding = state["weight_padding"]
        self._mlp = MLP([self.n_features, *self.hidden, 1], seed=self.seed)
        self._mlp.set_weights(state["weights"])

    @property
    def n_parameters(self) -> int:
        return self._mlp.n_parameters
