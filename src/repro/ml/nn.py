"""A small, fast, dependency-free neural-network core.

The paper's AI tasks train message-passing and SchNet models in TensorFlow/
PyTorch; here the same roles are filled by fully-connected networks with
hand-written vectorized backprop and Adam.  Everything is float64 NumPy,
batch-first, and deterministic given a seed — which is what the science
experiments need: a *trainable* surrogate whose accuracy improves with data,
with weights of a controllable byte size.

Following the optimization guidance baked into this repo's coding guides:
no Python-level loops over samples, preallocated parameter/optimizer state,
in-place updates where safe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MLP", "AdamState", "mse", "rmse"]


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error over all elements."""
    diff = np.asarray(pred) - np.asarray(target)
    return float(np.mean(diff * diff))


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error over all elements."""
    return float(np.sqrt(mse(pred, target)))


@dataclass
class AdamState:
    """First/second-moment accumulators for one parameter tensor."""

    m: np.ndarray
    v: np.ndarray
    t: int = 0


def _act(x: np.ndarray) -> np.ndarray:
    """softplus-ish smooth activation (tanh): bounded, smooth gradients."""
    return np.tanh(x)


def _act_grad(activated: np.ndarray) -> np.ndarray:
    return 1.0 - activated * activated


class MLP:
    """A fully-connected regression network with Adam training.

    Parameters
    ----------
    layer_sizes:
        ``[d_in, h1, ..., d_out]``.
    seed:
        Initialization seed (Xavier-scaled normal weights).
    """

    def __init__(self, layer_sizes: list[int], seed: int = 0) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if any(s <= 0 for s in layer_sizes):
            raise ValueError("layer sizes must be positive")
        self.layer_sizes = list(layer_sizes)
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._adam: list[AdamState] | None = None
        # Normalization of targets, fit during training for stable losses.
        self._y_mean = 0.0
        self._y_std = 1.0

    # -- inference -----------------------------------------------------------
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return (output, per-layer activations) for backprop reuse."""
        acts = [np.asarray(x, dtype=float)]
        h = acts[0]
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            h = z if i == last else _act(z)
            acts.append(h)
        return h, acts

    def predict(self, x: np.ndarray) -> np.ndarray:
        """De-normalized predictions, shape ``(n, d_out)`` (squeezed to
        ``(n,)`` when the network has one output)."""
        out, _ = self.forward(np.atleast_2d(x))
        out = out * self._y_std + self._y_mean
        return out[:, 0] if out.shape[1] == 1 else out

    def gradient_wrt_input(self, x: np.ndarray) -> np.ndarray:
        """d(output)/d(input) for a single-output network, shape like ``x``.

        Needed for force prediction: F = -dE/dx chains through this.
        """
        if self.layer_sizes[-1] != 1:
            raise ValueError("input gradients only implemented for scalar output")
        x2 = np.atleast_2d(np.asarray(x, dtype=float))
        _, acts = self.forward(x2)
        # Backpropagate a seed of ones through the network to the input.
        grad = np.ones((x2.shape[0], 1))
        last = len(self.weights) - 1
        for i in range(last, -1, -1):
            if i != last:
                grad = grad * _act_grad(acts[i + 1])
            grad = grad @ self.weights[i].T
        grad = grad * self._y_std
        return grad.reshape(np.shape(x))

    # -- training --------------------------------------------------------------
    def _ensure_adam(self) -> list[AdamState]:
        if self._adam is None:
            self._adam = [
                AdamState(np.zeros_like(p), np.zeros_like(p))
                for pair in zip(self.weights, self.biases)
                for p in pair
            ]
        return self._adam

    def _backward(
        self, acts: list[np.ndarray], dloss_dout: np.ndarray
    ) -> list[np.ndarray]:
        """Gradients for [W0, b0, W1, b1, ...]."""
        grads: list[np.ndarray] = []
        delta = dloss_dout
        last = len(self.weights) - 1
        for i in range(last, -1, -1):
            if i != last:
                delta = delta * _act_grad(acts[i + 1])
            grads.append(np.sum(delta, axis=0))  # bias
            grads.append(acts[i].T @ delta)  # weight
            if i > 0:
                delta = delta @ self.weights[i].T
        grads.reverse()  # now [W0, b0, W1, b1, ...]
        return grads

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 30,
        batch_size: int = 32,
        lr: float = 1e-3,
        seed: int = 0,
        l2: float = 1e-6,
    ) -> list[float]:
        """Adam/MSE training; returns the per-epoch training loss curve."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).reshape(x.shape[0], -1)
        if x.shape[0] == 0:
            raise ValueError("cannot train on an empty dataset")
        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y)) or 1.0
        yn = (y - self._y_mean) / self._y_std
        rng = np.random.default_rng(seed)
        states = self._ensure_adam()
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        losses: list[float] = []
        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, yb = x[idx], yn[idx]
                out, acts = self.forward(xb)
                diff = out - yb
                epoch_loss += float(np.sum(diff * diff))
                dloss = 2.0 * diff / xb.shape[0]
                grads = self._backward(acts, dloss)
                params = [
                    p for pair in zip(self.weights, self.biases) for p in pair
                ]
                for param, grad, state in zip(params, grads, states):
                    if param.ndim == 2 and l2 > 0.0:
                        grad = grad + l2 * param
                    state.t += 1
                    state.m = beta1 * state.m + (1 - beta1) * grad
                    state.v = beta2 * state.v + (1 - beta2) * grad * grad
                    m_hat = state.m / (1 - beta1**state.t)
                    v_hat = state.v / (1 - beta2**state.t)
                    param -= lr * m_hat / (np.sqrt(v_hat) + eps)
            losses.append(epoch_loss / n)
        return losses

    # -- weight transport ----------------------------------------------------------
    def get_weights(self) -> list[np.ndarray]:
        """Flat parameter list (copies), for shipping between resources."""
        out: list[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            out.append(w.copy())
            out.append(b.copy())
        out.append(np.array([self._y_mean, self._y_std]))
        return out

    def set_weights(self, params: list[np.ndarray]) -> None:
        expected = 2 * len(self.weights) + 1
        if len(params) != expected:
            raise ValueError(f"expected {expected} tensors, got {len(params)}")
        for i in range(len(self.weights)):
            self.weights[i] = np.array(params[2 * i], dtype=float)
            self.biases[i] = np.array(params[2 * i + 1], dtype=float)
        self._y_mean, self._y_std = (float(params[-1][0]), float(params[-1][1]))
        self._adam = None

    @property
    def n_parameters(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))
