"""The energy/force surrogate (SchNet stand-in).

SchNet's essential contract for the fine-tuning application: predict a
cluster's energy from atomic positions, expose forces as the negative
gradient of that energy, improve with DFT data, and ship ~21 MB per trained
model.  This implementation keeps the contract with a physics-shaped
featurization — per-species-pair radial basis functions (Gaussian smearing
with a cosine cutoff, the same building block SchNet uses) — an MLP energy
head, and **analytic** forces chained through the featurization Jacobian:

    E = MLP(D(x)),    F = -dE/dx = -(dD/dx)^T (dE/dD)

so force quality genuinely tracks energy-model quality, which is what
Fig. 7a measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.nn import MLP
from repro.serialize import Blob

__all__ = ["RbfBasis", "featurize", "featurize_with_jacobian", "SchnetSurrogate"]


@dataclass(frozen=True)
class RbfBasis:
    """Gaussian smearing basis with cosine cutoff, per species pair."""

    n_centers: int = 16
    r_min: float = 0.6
    cutoff: float = 6.0
    n_species: int = 3  # distinct atom type codes expected (e.g. O, H, C)

    def __post_init__(self) -> None:
        if self.n_centers < 2 or self.cutoff <= self.r_min:
            raise ValueError("need n_centers >= 2 and cutoff > r_min")

    @property
    def centers(self) -> np.ndarray:
        return np.linspace(self.r_min, self.cutoff, self.n_centers)

    @property
    def width(self) -> float:
        return (self.cutoff - self.r_min) / (self.n_centers - 1)

    @property
    def n_pair_channels(self) -> int:
        s = self.n_species
        return s * (s + 1) // 2

    @property
    def n_features(self) -> int:
        return self.n_pair_channels * self.n_centers

    def pair_channel(self, type_a: np.ndarray, type_b: np.ndarray) -> np.ndarray:
        """Symmetric (unordered) species-pair channel index."""
        lo = np.minimum(type_a, type_b)
        hi = np.maximum(type_a, type_b)
        # Triangular indexing over unordered pairs.
        return (hi * (hi + 1)) // 2 + lo


def _pairs(positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    n = positions.shape[0]
    return np.triu_indices(n, k=1)


def _smearing(
    r: np.ndarray, basis: RbfBasis
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """phi (P, K), dphi/dr, fc (P,), dfc/dr for pair distances ``r``."""
    mu = basis.centers[None, :]
    w2 = basis.width**2
    diff = r[:, None] - mu
    phi = np.exp(-0.5 * diff * diff / w2)
    dphi = phi * (-diff / w2)
    inside = r < basis.cutoff
    fc = np.where(inside, 0.5 * (np.cos(np.pi * r / basis.cutoff) + 1.0), 0.0)
    dfc = np.where(
        inside,
        -0.5 * np.pi / basis.cutoff * np.sin(np.pi * r / basis.cutoff),
        0.0,
    )
    return phi, dphi, fc, dfc


def featurize(positions: np.ndarray, types: np.ndarray, basis: RbfBasis) -> np.ndarray:
    """Descriptor vector of shape ``(n_pair_channels * n_centers,)``."""
    positions = np.asarray(positions, dtype=float)
    types = np.asarray(types, dtype=int)
    if np.any(types >= basis.n_species) or np.any(types < 0):
        raise ValueError("atom type code outside the basis's species range")
    i_idx, j_idx = _pairs(positions)
    if i_idx.size == 0:
        return np.zeros(basis.n_features)
    vec = positions[i_idx] - positions[j_idx]
    r = np.linalg.norm(vec, axis=1)
    phi, _, fc, _ = _smearing(r, basis)
    contrib = phi * fc[:, None]  # (P, K)
    channel = basis.pair_channel(types[i_idx], types[j_idx])  # (P,)
    features = np.zeros((basis.n_pair_channels, basis.n_centers))
    np.add.at(features, channel, contrib)
    return features.ravel()


def featurize_with_jacobian(
    positions: np.ndarray, types: np.ndarray, basis: RbfBasis
) -> tuple[np.ndarray, np.ndarray]:
    """Descriptors plus the Jacobian dD/dx of shape ``(F, N, 3)``."""
    positions = np.asarray(positions, dtype=float)
    types = np.asarray(types, dtype=int)
    n = positions.shape[0]
    i_idx, j_idx = _pairs(positions)
    jac = np.zeros((basis.n_features, n, 3))
    if i_idx.size == 0:
        return np.zeros(basis.n_features), jac
    vec = positions[i_idx] - positions[j_idx]
    r = np.linalg.norm(vec, axis=1)
    unit = vec / r[:, None]
    phi, dphi, fc, dfc = _smearing(r, basis)
    contrib = phi * fc[:, None]
    dcontrib = dphi * fc[:, None] + phi * dfc[:, None]  # (P, K)
    channel = basis.pair_channel(types[i_idx], types[j_idx])
    features = np.zeros((basis.n_pair_channels, basis.n_centers))
    np.add.at(features, channel, contrib)
    # dD_f/dx_i = sum over pairs containing atom i of dcontrib * (+-unit).
    feat_rows = channel[:, None] * basis.n_centers + np.arange(basis.n_centers)
    # (P, K, 3) per-pair gradients w.r.t. atom i of the pair.
    grad_i = dcontrib[:, :, None] * unit[:, None, :]
    flat_rows = feat_rows.ravel()
    np.add.at(
        jac,
        (flat_rows, np.repeat(i_idx, basis.n_centers)),
        grad_i.reshape(-1, 3),
    )
    np.add.at(
        jac,
        (flat_rows, np.repeat(j_idx, basis.n_centers)),
        -grad_i.reshape(-1, 3),
    )
    return features.ravel(), jac


class SchnetSurrogate:
    """Energy model with analytic forces over RBF descriptors."""

    def __init__(
        self,
        basis: RbfBasis | None = None,
        hidden: tuple[int, ...] = (64, 64),
        seed: int = 0,
        weight_padding: int = 0,
    ) -> None:
        self.basis = basis or RbfBasis()
        self.hidden = tuple(hidden)
        self.seed = seed
        self.weight_padding = int(weight_padding)
        self._mlp = MLP([self.basis.n_features, *hidden, 1], seed=seed)

    # -- features ------------------------------------------------------------
    def _features(self, structures: list) -> np.ndarray:
        return np.stack(
            [featurize(s.positions, s.types, self.basis) for s in structures]
        )

    # -- model API -------------------------------------------------------------
    def train(
        self,
        structures: list,
        energies: np.ndarray,
        *,
        epochs: int = 60,
        batch_size: int = 16,
        lr: float = 2e-3,
        seed: int | None = None,
    ) -> list[float]:
        x = self._features(structures)
        return self._mlp.train(
            x,
            np.asarray(energies, dtype=float),
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            seed=self.seed if seed is None else seed,
        )

    def predict(self, structures: list) -> np.ndarray:
        """Energies for a batch of structures."""
        return np.atleast_1d(self._mlp.predict(self._features(structures)))

    def predict_energy(self, structure) -> float:
        return float(self.predict([structure])[0])

    def predict_forces(self, structure) -> np.ndarray:
        """F = -(dD/dx)^T dE/dD, shape ``(n_atoms, 3)``."""
        features, jac = featurize_with_jacobian(
            structure.positions, structure.types, self.basis
        )
        de_dd = self._mlp.gradient_wrt_input(features)  # (F,)
        return -np.einsum("f,fnd->nd", de_dd, jac)

    # -- transport -----------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "basis": self.basis,
            "hidden": self.hidden,
            "seed": self.seed,
            "weight_padding": self.weight_padding,
            "weights": self._mlp.get_weights(),
            "padding": Blob(self.weight_padding, tag="schnet-weights"),
        }

    def __setstate__(self, state: dict) -> None:
        self.basis = state["basis"]
        self.hidden = tuple(state["hidden"])
        self.seed = state["seed"]
        self.weight_padding = state["weight_padding"]
        self._mlp = MLP([self.basis.n_features, *self.hidden, 1], seed=self.seed)
        self._mlp.set_weights(state["weights"])
