"""Network substrate: virtual clock, placement context, topology, and the
latency-charging primitives (key-value store, file systems) everything else
is built on."""

from repro.net.clock import Clock, Timer, get_clock, reset_clock, scaled_time
from repro.net.context import (
    SiteThread,
    at_site,
    current_site,
    require_current_site,
    set_current_site,
)
from repro.net.defaults import PaperConstants, Testbed, build_paper_testbed
from repro.net.fs import FileSystem, MountTable
from repro.net.kvstore import KVClient, KVServer
from repro.net.topology import (
    FixedLatency,
    LatencyModel,
    Link,
    LogNormalLatency,
    Network,
    Site,
    UniformLatency,
)

__all__ = [
    "Clock",
    "Timer",
    "get_clock",
    "reset_clock",
    "scaled_time",
    "SiteThread",
    "at_site",
    "current_site",
    "require_current_site",
    "set_current_site",
    "PaperConstants",
    "Testbed",
    "build_paper_testbed",
    "FileSystem",
    "MountTable",
    "KVClient",
    "KVServer",
    "FixedLatency",
    "LatencyModel",
    "Link",
    "LogNormalLatency",
    "Network",
    "Site",
    "UniformLatency",
]
