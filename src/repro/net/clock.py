"""Virtual wall clock with uniform time scaling.

The paper's experiments span hours of wall time dominated by injected
latencies (cloud round trips, Globus transfers, 60 s simulations).  To
reproduce latency *shapes* in seconds of real time, every sleep in the
simulator goes through a :class:`Clock` whose ``time_scale`` maps nominal
(paper-scale) seconds to wall seconds:

    wall_seconds = nominal_seconds * time_scale

All timestamps read back through :meth:`Clock.now` are reported in nominal
seconds, so measured medians/percentiles remain directly comparable to the
paper regardless of the scale used to run the experiment.  Uniform scaling
preserves orderings, ratios, and queueing interactions (everything, compute
and communication alike, shrinks by the same factor).

A module-level default clock is used by the whole library; benchmarks call
:func:`reset_clock` with a small scale (e.g. ``0.002``) before a run.
"""

from __future__ import annotations

import threading
import time as _time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Clock", "get_clock", "reset_clock", "scaled_time", "Timer"]

# Sleeps shorter than this (in wall seconds) are skipped entirely: the OS
# cannot schedule them accurately and they only add noise at small scales.
_MIN_WALL_SLEEP = 50e-6


class Clock:
    """A scalable clock.

    Parameters
    ----------
    time_scale:
        Wall seconds per nominal second.  ``1.0`` runs in real time;
        ``0.01`` runs a nominal minute in 600 ms of wall time.
    """

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self._scale = float(time_scale)
        self._epoch = _time.monotonic()
        self._lock = threading.Lock()

    @property
    def time_scale(self) -> float:
        """Wall seconds per nominal second."""
        return self._scale

    def now(self) -> float:
        """Nominal seconds elapsed since this clock was created/reset."""
        return (_time.monotonic() - self._epoch) / self._scale

    def sleep(self, nominal_seconds: float) -> None:
        """Block the calling thread for ``nominal_seconds`` of virtual time."""
        if nominal_seconds <= 0:
            return
        wall = nominal_seconds * self._scale
        if wall >= _MIN_WALL_SLEEP:
            _time.sleep(wall)

    def wall_timeout(self, nominal_seconds: float | None) -> float | None:
        """Convert a nominal timeout into a wall-clock timeout for stdlib
        primitives (``Condition.wait``, ``Queue.get``, ...)."""
        if nominal_seconds is None:
            return None
        return max(nominal_seconds * self._scale, 0.0)

    def reset(self, time_scale: float | None = None) -> None:
        """Re-zero the epoch and optionally change the scale.

        Changing scale mid-measurement would corrupt ``now()`` readings, so
        callers reset between experiments, never during one.
        """
        with self._lock:
            if time_scale is not None:
                if time_scale <= 0:
                    raise ValueError("time_scale must be positive")
                self._scale = float(time_scale)
            self._epoch = _time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(time_scale={self._scale}, now={self.now():.3f})"


_default_clock = Clock()


def get_clock() -> Clock:
    """Return the process-wide default clock."""
    return _default_clock


def reset_clock(time_scale: float | None = None) -> Clock:
    """Re-zero the default clock (optionally changing its scale) and return it."""
    _default_clock.reset(time_scale)
    return _default_clock


@contextmanager
def scaled_time(time_scale: float) -> Iterator[Clock]:
    """Context manager that runs the default clock at ``time_scale`` and
    restores the previous scale (re-zeroing the epoch both ways)."""
    previous = _default_clock.time_scale
    _default_clock.reset(time_scale)
    try:
        yield _default_clock
    finally:
        _default_clock.reset(previous)


class Timer:
    """Measure a nominal-time duration against a clock.

    >>> with Timer() as t:
    ...     get_clock().sleep(0.01)
    >>> t.elapsed >= 0.01
    True
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or get_clock()
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = self._clock.now()
        return self

    def __exit__(self, *exc) -> None:
        assert self.start is not None
        self.elapsed = self._clock.now() - self.start
