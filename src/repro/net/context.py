"""Execution-placement context: *where* is the current thread running?

Every component in the simulator (thinker, task server, endpoint, worker,
cloud service) is pinned to a site in the topology.  Latency for a network
operation is a function of (caller site, callee site), so code that issues
network calls needs to know the site of its calling thread.

``threading.local`` does not inherit across threads and ``contextvars`` only
propagate through explicit copies, so components that spawn threads use
:class:`SiteThread` (or call :func:`set_current_site` first thing in their
``run``) to pin placement explicitly.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Site

__all__ = [
    "current_site",
    "set_current_site",
    "require_current_site",
    "at_site",
    "SiteThread",
]

_tls = threading.local()


def current_site() -> "Site | None":
    """The site the calling thread is pinned to, or ``None`` if unpinned."""
    return getattr(_tls, "site", None)


def set_current_site(site: "Site | None") -> None:
    """Pin the calling thread to ``site`` (or unpin with ``None``)."""
    _tls.site = site


def require_current_site() -> "Site":
    """Like :func:`current_site` but raising if the thread is unpinned."""
    site = current_site()
    if site is None:
        raise RuntimeError(
            "this operation needs a placement: run inside `at_site(...)`, a "
            "SiteThread, or call set_current_site() first"
        )
    return site


@contextmanager
def at_site(site: "Site") -> Iterator["Site"]:
    """Temporarily pin the calling thread to ``site``."""
    previous = current_site()
    set_current_site(site)
    try:
        yield site
    finally:
        set_current_site(previous)


class SiteThread(threading.Thread):
    """A thread pinned to a site for its whole lifetime.

    The target runs with :func:`current_site` returning ``site``, so any
    network client used inside automatically pays the right latencies.
    """

    def __init__(
        self,
        site: "Site",
        target: Callable[..., object] | None = None,
        name: str | None = None,
        args: tuple = (),
        kwargs: dict | None = None,
        daemon: bool = True,
    ) -> None:
        super().__init__(
            target=target, name=name, args=args, kwargs=kwargs or {}, daemon=daemon
        )
        self.site = site

    def run(self) -> None:  # noqa: D102 - inherits Thread.run contract
        set_current_site(self.site)
        super().run()
