"""The paper's testbed, as a reproducible simulated topology.

§V-A of the paper: simulation tasks run on Theta (KNL nodes), AI tasks on
*Venti* (an NVIDIA DGX with 20 T4 GPUs housed in the same building but on a
separate network, with no access to Theta's file systems and different
authentication), the Thinker and Task Server live on a Theta login node, and
the Globus-backend synthetic experiments place the Thinker on a UChicago
Research Computing Center login node.  Cloud-hosted services (the FuncX web
service and Globus Transfer) run in a commercial cloud region.

Latency and bandwidth constants below are *calibration inputs*, chosen so
that the end-to-end medians the simulator produces land near the paper's
reported values (≈100 ms FuncX dispatch, ≈500 ms Globus HTTPS request,
1–5 s Globus transfers, ≈2 ms intra-site Redis ops).  EXPERIMENTS.md records
the calibration checks.  Everything is exposed on :class:`PaperConstants`
so ablation studies can perturb one knob at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.fs import FileSystem, MountTable
from repro.net.topology import (
    LatencyModel,
    LogNormalLatency,
    Network,
    Site,
    UniformLatency,
)

__all__ = [
    "CLIENT_CLOSE_TIMEOUT",
    "CLIENT_POLL_INTERVAL",
    "CLIENT_RECEIVE_INTERVAL",
    "ROUTER_FETCH_POLL",
    "PaperConstants",
    "Testbed",
    "build_paper_testbed",
]

# -- client-side loop intervals (module constants, per-client overridable) --
#: How long a client's notifier blocks on one bus ``receive`` before it
#: re-checks liveness/fallback state (nominal seconds).
CLIENT_RECEIVE_INTERVAL: float = 0.25
#: Long-poll interval for the client's ``next_completed`` fallback loop
#: (nominal seconds).
CLIENT_POLL_INTERVAL: float = 0.25
#: Wall-clock seconds ``FaasClient.close()`` waits for its notifier thread
#: before declaring it wedged.
CLIENT_CLOSE_TIMEOUT: float = 10.0
#: Scatter-gather wait slice used by :class:`repro.tenancy.CloudRouter`
#: when no shard has work yet (nominal seconds).
ROUTER_FETCH_POLL: float = 0.25


@dataclass(frozen=True)
class PaperConstants:
    """Every tunable latency/bandwidth/policy constant in one place."""

    # -- link latencies (one-way, seconds) ---------------------------------
    intra_facility_latency: LatencyModel = LogNormalLatency(0.0002, 0.15)
    building_latency: LatencyModel = LogNormalLatency(0.0030, 0.30)  # Theta<->Venti
    metro_latency: LatencyModel = LogNormalLatency(0.0120, 0.30)  # UChicago<->ANL
    cloud_latency: LatencyModel = LogNormalLatency(0.0280, 0.35, cap=0.25)

    # -- link bandwidths (bytes/second) -------------------------------------
    intra_facility_bandwidth: float = 5.0e9
    building_bandwidth: float = 1.25e9  # 10 Gb/s
    metro_bandwidth: float = 1.25e9
    cloud_bandwidth: float = 0.60e9  # effective per-stream WAN throughput
    #: Effective throughput of a user-maintained SSH tunnel (single TCP
    #: stream, encryption overhead) — well below raw link speed, and the
    #: reason the paper's Globus DTN path wins for multi-GB payloads even
    #: though a tunnel wins on small-message latency.
    tunnel_bandwidth: float = 0.20e9

    # -- shared file systems -------------------------------------------------
    lustre_write_bandwidth: float = 1.2e9
    lustre_read_bandwidth: float = 2.0e9
    #: Lustre metadata operations (open/create/stat) are notoriously slow —
    #: tens of ms on a shared system — which is why the paper's file backend
    #: loses to Redis on small objects while matching it on large ones
    #: (Fig. 4 shows ~10x higher small-object serialize times for file).
    fs_op_latency: float = 25e-3
    #: Node-local scratch (the DGX box, UChicago home) has faster metadata.
    local_fs_op_latency: float = 2e-3

    # -- FuncX-like cloud service ---------------------------------------------
    # Store-tier costs are calibrated to the paper's Fig. 3: tiny payloads
    # (proxy references) ride inline with the task message; mid-size ones go
    # through an ElastiCache hop (~0.25 s/op observed end-to-end, including
    # the service's re-serialization); large ones through S3 (~0.8 s/op plus
    # modest effective throughput).  These are *observed-cost* models of the
    # hosted service's whole payload path, not raw AWS latencies.
    faas_api_latency: LatencyModel = LogNormalLatency(0.012, 0.30, cap=0.20)
    faas_payload_cap: int = 10 * 1024 * 1024  # the 10 MB FuncX limit
    faas_inline_threshold: int = 4 * 1024  # below this: inline in the message
    faas_small_object_threshold: int = 20 * 1024  # ElastiCache vs S3 split
    faas_redis_latency: LatencyModel = LogNormalLatency(0.25, 0.30, cap=1.5)
    faas_s3_latency: LatencyModel = LogNormalLatency(0.80, 0.35, cap=4.0)
    faas_s3_bandwidth: float = 20e6
    endpoint_poll_interval: float = 0.020
    endpoint_heartbeat_period: float = 5.0
    # An endpoint that misses ~3 heartbeats is presumed dead and its lease
    # is reaped (tasks fail over to surviving group members).
    endpoint_lease_ttl: float = 15.0

    # -- sharded control plane (repro.tenancy) ---------------------------------
    # Serialized per-submit admission cost of one shard: the finite capacity
    # of its web tier, which is what makes aggregate admission throughput
    # scale with the shard count.
    faas_shard_service_time: float = 0.008
    # How long a dropped shard stays dark before its durable state comes
    # back; admission throttles (retryable) for the duration.
    shard_outage_window: float = 1.0

    # -- push-notification bus -------------------------------------------------
    # A subscriber that neither receives nor acks for this long is presumed
    # disconnected; its subscription lapses and the poll fallback takes over
    # until it resubscribes (replaying from the last ack).
    bus_lease_ttl: float = 30.0
    bus_redelivery_base: float = 0.5
    bus_redelivery_max: float = 4.0
    # Unacked envelopes retained per subscriber before the bus force-lapses
    # it and trims the overflow (the poll path covers the trimmed gap).
    bus_redelivery_window: int = 256

    # -- Globus-Transfer-like service -----------------------------------------
    globus_request_latency: LatencyModel = LogNormalLatency(0.45, 0.35, cap=2.5)
    globus_transfer_base: LatencyModel = UniformLatency(0.8, 3.2)
    globus_per_file_overhead: float = 0.15
    globus_poll_interval: float = 0.25
    globus_concurrent_transfer_limit: int = 6
    globus_dtn_bandwidth: float = 1.0e9

    # -- paper resource counts -------------------------------------------------
    n_cpu_workers: int = 8  # 8 KNL processors (Fig. 1 caption)
    n_gpu_workers: int = 20  # 20 T4 GPUs


@dataclass
class Testbed:
    """A fully wired topology: sites, links, and mounted volumes."""

    network: Network
    mounts: MountTable
    constants: PaperConstants
    theta_login: Site
    theta_compute: Site
    venti: Site
    uchicago_login: Site
    faas_cloud: Site
    globus_cloud: Site
    extra_sites: dict[str, Site] = field(default_factory=dict)

    @property
    def compute_sites(self) -> tuple[Site, ...]:
        return (self.theta_compute, self.venti)

    def site(self, name: str) -> Site:
        return self.network.site(name)


def build_paper_testbed(
    seed: int = 0, constants: PaperConstants | None = None
) -> Testbed:
    """Construct the §V-A testbed with deterministic latency sampling."""
    c = constants or PaperConstants()
    net = Network(seed=seed)

    theta_login = net.add_site(
        Site(
            "theta-login",
            fs_group="theta-lustre",
            trust_group="alcf",
            tags=frozenset({"login", "cpu"}),
        )
    )
    theta_compute = net.add_site(
        Site(
            "theta-compute",
            fs_group="theta-lustre",
            trust_group="alcf",
            tags=frozenset({"compute", "cpu", "knl"}),
        )
    )
    venti = net.add_site(
        Site(
            "venti",
            fs_group="venti-local",
            trust_group="cels",
            tags=frozenset({"compute", "gpu", "t4"}),
        )
    )
    uchicago = net.add_site(
        Site(
            "uchicago-login",
            fs_group="uchicago-fs",
            trust_group="uchicago",
            tags=frozenset({"login", "cpu"}),
        )
    )
    faas_cloud = net.add_site(
        Site("faas-cloud", allows_inbound=True, tags=frozenset({"cloud"}))
    )
    globus_cloud = net.add_site(
        Site("globus-cloud", allows_inbound=True, tags=frozenset({"cloud"}))
    )

    net.add_link(
        theta_login, theta_compute, c.intra_facility_latency, c.intra_facility_bandwidth
    )
    # The "same building, different network" paths used by the Parsl and
    # Redis baselines between the DGX box and Theta.
    net.add_link(theta_login, venti, c.building_latency, c.building_bandwidth)
    net.add_link(theta_compute, venti, c.building_latency, c.building_bandwidth)
    # Metro-area research network between UChicago and Argonne.
    net.add_link(uchicago, theta_login, c.metro_latency, c.metro_bandwidth)
    net.add_link(uchicago, theta_compute, c.metro_latency, c.metro_bandwidth)
    net.add_link(uchicago, venti, c.metro_latency, c.metro_bandwidth)
    # Everyone reaches the commercial cloud.
    for site in (theta_login, theta_compute, venti, uchicago):
        net.add_link(site, faas_cloud, c.cloud_latency, c.cloud_bandwidth)
        net.add_link(site, globus_cloud, c.cloud_latency, c.cloud_bandwidth)
    net.add_link(faas_cloud, globus_cloud, LogNormalLatency(0.004, 0.2), 2.0e9)

    mounts = MountTable()
    mounts.add_volume(
        FileSystem(
            "theta-lustre",
            write_bandwidth=c.lustre_write_bandwidth,
            read_bandwidth=c.lustre_read_bandwidth,
            op_latency=c.fs_op_latency,
        )
    )
    mounts.add_volume(FileSystem("venti-local", op_latency=c.local_fs_op_latency))
    mounts.add_volume(FileSystem("uchicago-fs", op_latency=c.local_fs_op_latency))

    return Testbed(
        network=net,
        mounts=mounts,
        constants=c,
        theta_login=theta_login,
        theta_compute=theta_compute,
        venti=venti,
        uchicago_login=uchicago,
        faas_cloud=faas_cloud,
        globus_cloud=globus_cloud,
    )
