"""Per-site shared file systems with charged I/O time.

The paper's topology has two relevant volumes: Theta's Lustre file system
(shared by login and compute nodes, used by ProxyStore's *file* backend and
as the staging area for the *Globus* backend) and the UChicago cluster's
file system.  The GPU machine pointedly has access to neither, which is why
cross-resource data movement needs Globus at all.

:class:`FileSystem` is an in-memory blob store that charges metadata latency
plus size/bandwidth for reads and writes — the paper observes that the
serialization time of the file and Globus ProxyStore backends "is a
reflection of the I/O performance of the file system", so that cost must be
modeled.  :class:`MountTable` maps a site's ``fs_group`` to its volume.
"""

from __future__ import annotations

import threading

from repro.exceptions import FileSystemError
from repro.net.clock import Clock, get_clock
from repro.net.context import current_site
from repro.net.topology import Site

__all__ = ["FileSystem", "MountTable"]


class FileSystem:
    """An in-memory POSIX-ish blob store shared by one ``fs_group``."""

    def __init__(
        self,
        name: str,
        *,
        write_bandwidth: float = 1.2e9,
        read_bandwidth: float = 2.0e9,
        op_latency: float = 0.8e-3,
        clock: Clock | None = None,
    ) -> None:
        if write_bandwidth <= 0 or read_bandwidth <= 0 or op_latency < 0:
            raise ValueError("bandwidths must be positive and latency >= 0")
        self.name = name
        self.write_bandwidth = write_bandwidth
        self.read_bandwidth = read_bandwidth
        self.op_latency = op_latency
        self._clock = clock or get_clock()
        # path -> (real bytes, nominal size charged for I/O and transfers)
        self._files: dict[str, tuple[bytes, int]] = {}
        self._lock = threading.Lock()

    def _charge(self, nbytes: int, bandwidth: float) -> None:
        self._clock.sleep(self.op_latency + nbytes / bandwidth)

    def write(self, path: str, data: bytes, nominal_size: int | None = None) -> None:
        """Store ``data`` at ``path``.

        ``nominal_size`` lets callers staging :class:`repro.serialize.Blob`-
        padded payloads charge (and later be charged) for the size the bytes
        *represent* rather than their real in-memory length.
        """
        if not isinstance(data, bytes):
            raise TypeError(f"file data must be bytes, got {type(data).__name__}")
        nominal = len(data) if nominal_size is None else int(nominal_size)
        self._charge(nominal, self.write_bandwidth)
        with self._lock:
            self._files[path] = (data, nominal)

    def append(self, path: str, data: bytes, nominal_size: int | None = None) -> int:
        """Append ``data`` to ``path`` (creating it if absent) and return the
        file's new nominal size.

        Only the appended bytes are charged — this is the journal fsync
        primitive: a write-ahead log grows by one record at a time and must
        not pay for rewriting its whole history on every append.
        """
        if not isinstance(data, bytes):
            raise TypeError(f"file data must be bytes, got {type(data).__name__}")
        nominal = len(data) if nominal_size is None else int(nominal_size)
        self._charge(nominal, self.write_bandwidth)
        with self._lock:
            old, old_nominal = self._files.get(path, (b"", 0))
            new_nominal = old_nominal + nominal
            self._files[path] = (old + data, new_nominal)
            return new_nominal

    def read(self, path: str) -> bytes:
        with self._lock:
            try:
                data, nominal = self._files[path]
            except KeyError:
                raise FileSystemError(f"{self.name}:{path}: no such file") from None
        self._charge(nominal, self.read_bandwidth)
        return data

    def raw(self, path: str) -> tuple[bytes, int]:
        """(data, nominal size) without charging I/O time.

        Used by data-transfer nodes that account their own time budget for
        the whole copy rather than paying per-file I/O twice.
        """
        with self._lock:
            try:
                return self._files[path]
            except KeyError:
                raise FileSystemError(f"{self.name}:{path}: no such file") from None

    def write_raw(self, path: str, data: bytes, nominal_size: int) -> None:
        """Store without charging I/O time (see :meth:`raw`)."""
        with self._lock:
            self._files[path] = (data, int(nominal_size))

    def exists(self, path: str) -> bool:
        self._clock.sleep(self.op_latency)
        with self._lock:
            return path in self._files

    def delete(self, path: str) -> bool:
        self._clock.sleep(self.op_latency)
        with self._lock:
            return self._files.pop(path, None) is not None

    def size(self, path: str) -> int:
        """Nominal size of the file (what transfers/bandwidth should charge)."""
        with self._lock:
            try:
                return self._files[path][1]
            except KeyError:
                raise FileSystemError(f"{self.name}:{path}: no such file") from None

    def listdir(self, prefix: str = "") -> list[str]:
        self._clock.sleep(self.op_latency)
        with self._lock:
            return sorted(p for p in self._files if p.startswith(prefix))

    def total_bytes(self) -> int:
        with self._lock:
            return sum(nominal for _, nominal in self._files.values())

    def clear(self) -> None:
        with self._lock:
            self._files.clear()


class MountTable:
    """Maps ``fs_group`` names to :class:`FileSystem` volumes.

    A site with ``fs_group=None`` mounts nothing; attempts to touch a volume
    from such a site raise :class:`FileSystemError` — the same error a task
    on the GPU cluster would hit trying to open a Lustre path.
    """

    def __init__(self) -> None:
        self._volumes: dict[str, FileSystem] = {}

    def add_volume(self, fs: FileSystem) -> FileSystem:
        if fs.name in self._volumes:
            raise FileSystemError(f"volume {fs.name!r} already mounted")
        self._volumes[fs.name] = fs
        return fs

    def volume(self, fs_group: str) -> FileSystem:
        try:
            return self._volumes[fs_group]
        except KeyError:
            raise FileSystemError(f"no volume named {fs_group!r}") from None

    def for_site(self, site: Site | None = None) -> FileSystem:
        """The volume mounted at ``site`` (default: the calling thread's)."""
        site = site or current_site()
        if site is None:
            raise FileSystemError("no site context: cannot resolve a mount")
        if site.fs_group is None:
            raise FileSystemError(f"site {site.name!r} mounts no shared file system")
        return self.volume(site.fs_group)

    def accessible_from(self, site: Site, fs_group: str) -> bool:
        return site.fs_group == fs_group and fs_group in self._volumes
