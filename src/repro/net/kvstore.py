"""An in-memory Redis-like key-value/queue server with network costs.

Three parts of the paper's stack sit on Redis:

* Colmena's client/task-server queues (``LPUSH``/``BLPOP``),
* the Redis backend of ProxyStore (``SET``/``GET``),
* FuncX's small-result store (Amazon ElastiCache).

:class:`KVServer` implements the data structures; :class:`KVClient` is the
handle components use, paying topology latency (and bandwidth time for the
value payload) on every operation.  A server bound on a site that does not
allow inbound connections refuses remote clients — this is the "requires a
third open port for Redis" deployment cost of the paper's Parsl+Redis
baseline.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

from repro.exceptions import PortPolicyError
from repro.net.clock import Clock, get_clock
from repro.net.context import current_site
from repro.net.topology import Network, Site

__all__ = ["KVServer", "KVClient"]


def _payload_size(value: object) -> int:
    """Approximate wire size of a value (bytes/str are measured exactly)."""
    nominal = getattr(value, "nominal_size", None)
    if isinstance(nominal, int):
        return nominal
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, (int, float)):
        return 8
    if value is None:
        return 1
    # Containers of measurable things; fall back to a small constant so the
    # simulator never charges for Python object overhead it can't know.
    if isinstance(value, (list, tuple)):
        return sum(_payload_size(v) for v in value) + 8
    return 64


class KVServer:
    """The server-side state: string keys to values and named FIFO queues."""

    #: Server-side value copy/protocol throughput: bulk values cost
    #: ``nbytes / processing_bandwidth`` on top of wire time — the cost of a
    #: single-threaded Redis shuffling large values through its protocol.
    DEFAULT_PROCESSING_BANDWIDTH = 400e6

    def __init__(
        self,
        site: Site,
        name: str = "redis",
        processing_bandwidth: float | None = None,
    ) -> None:
        self.site = site
        self.name = name
        self.processing_bandwidth = (
            processing_bandwidth or self.DEFAULT_PROCESSING_BANDWIDTH
        )
        self._data: dict[str, object] = {}
        self._queues: dict[str, deque] = {}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: Concurrent bulk transfers over a tunnel to this server share one
        #: TCP stream; clients serialize their bandwidth time on this lock.
        self.tunnel_lock = threading.Lock()

    # The methods below are *semantic* operations with no latency; latency
    # is the client's job.

    def set(self, key: str, value: object) -> None:
        with self._lock:
            self._data[key] = value

    def get(self, key: str) -> object | None:
        with self._lock:
            return self._data.get(key)

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._data.pop(key, None) is not None

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._data)

    def incr(self, key: str, amount: int = 1) -> int:
        with self._lock:
            value = int(self._data.get(key, 0)) + amount  # type: ignore[arg-type]
            self._data[key] = value
            return value

    def rpush(self, queue: str, value: object) -> int:
        with self._not_empty:
            q = self._queues.setdefault(queue, deque())
            q.append(value)
            self._not_empty.notify_all()
            return len(q)

    def lpush(self, queue: str, value: object) -> int:
        with self._not_empty:
            q = self._queues.setdefault(queue, deque())
            q.appendleft(value)
            self._not_empty.notify_all()
            return len(q)

    def lpop(self, queue: str) -> object | None:
        with self._lock:
            q = self._queues.get(queue)
            return q.popleft() if q else None

    def blpop(
        self,
        queues: Iterable[str],
        wall_timeout: float | None,
    ) -> tuple[str, object] | None:
        """Block until any of ``queues`` has an item; wall-clock timeout."""
        names = list(queues)
        deadline = None
        with self._not_empty:
            while True:
                for name in names:
                    q = self._queues.get(name)
                    if q:
                        return name, q.popleft()
                if wall_timeout is not None:
                    import time as _time

                    if deadline is None:
                        deadline = _time.monotonic() + wall_timeout
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        return None
                    self._not_empty.wait(remaining)
                else:
                    self._not_empty.wait()

    def llen(self, queue: str) -> int:
        with self._lock:
            q = self._queues.get(queue)
            return len(q) if q else 0

    def flush(self) -> None:
        with self._not_empty:
            self._data.clear()
            self._queues.clear()
            self._not_empty.notify_all()


class KVClient:
    """A client connection to a :class:`KVServer` from a particular site.

    Every operation pays one request latency, bandwidth time for the payload
    in the direction it travels, and one response latency.  Connections from
    a different site than the server's require the server's site to allow
    inbound traffic (or the connection to be tunneled).
    """

    #: Default effective throughput of a tunneled connection (bytes/s); a
    #: single encrypted TCP stream is far slower than the raw link.
    DEFAULT_TUNNEL_BANDWIDTH = 0.20e9

    def __init__(
        self,
        server: KVServer,
        network: Network,
        *,
        site: Site | None = None,
        via_tunnel: bool = False,
        tunnel_bandwidth: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._server = server
        self._network = network
        self._site = site
        self._tunnel = via_tunnel
        self._tunnel_bw = tunnel_bandwidth or self.DEFAULT_TUNNEL_BANDWIDTH
        self._clock = clock or get_clock()
        self._check_policy(self._caller_site())

    # -- placement and cost ------------------------------------------------
    def _caller_site(self) -> Site:
        site = self._site or current_site()
        if site is None:
            # Unpinned callers (e.g. unit tests) are treated as local.
            return self._server.site
        return site

    def _check_policy(self, caller: Site) -> None:
        if not self._tunnel and not self._network.can_connect(
            caller, self._server.site
        ):
            raise PortPolicyError(
                f"site {self._server.site.name!r} does not accept inbound "
                f"connections from {caller.name!r}; deploy a tunnel "
                "(via_tunnel=True) or use an outbound-only fabric"
            )

    def _pay_leg(self, a: Site, b: Site, nbytes: int) -> None:
        """Sleep one direction's cost.  Tunneled cross-site legs cap their
        throughput AND serialize the bandwidth portion on the server's
        tunnel lock — concurrent bulk fetches share one TCP stream."""
        processing = nbytes / self._server.processing_bandwidth
        if self._tunnel and a.name != b.name:
            self._clock.sleep(self._network.latency(a, b) + processing)
            bandwidth = min(self._network.bandwidth(a, b), self._tunnel_bw)
            wire = nbytes / bandwidth
            if wire > 0:
                with self._server.tunnel_lock:
                    self._clock.sleep(wire)
        else:
            self._clock.sleep(self._network.transfer_time(a, b, nbytes) + processing)

    def _pay(self, send_bytes: int, recv_bytes: int) -> None:
        caller = self._caller_site()
        self._check_policy(caller)
        self._pay_leg(caller, self._server.site, send_bytes)
        self._pay_leg(self._server.site, caller, recv_bytes)

    # -- operations ----------------------------------------------------------
    def set(self, key: str, value: object) -> None:
        self._pay(_payload_size(value) + len(key), 8)
        self._server.set(key, value)

    def get(self, key: str) -> object | None:
        value = self._server.get(key)
        self._pay(len(key), _payload_size(value))
        return value

    def delete(self, key: str) -> bool:
        self._pay(len(key), 8)
        return self._server.delete(key)

    def exists(self, key: str) -> bool:
        self._pay(len(key), 8)
        return self._server.exists(key)

    def incr(self, key: str, amount: int = 1) -> int:
        self._pay(len(key) + 8, 8)
        return self._server.incr(key, amount)

    def rpush(self, queue: str, value: object) -> int:
        self._pay(_payload_size(value) + len(queue), 8)
        return self._server.rpush(queue, value)

    def lpush(self, queue: str, value: object) -> int:
        self._pay(_payload_size(value) + len(queue), 8)
        return self._server.lpush(queue, value)

    def lpop(self, queue: str) -> object | None:
        value = self._server.lpop(queue)
        self._pay(len(queue), _payload_size(value))
        return value

    def blpop(
        self, queues: Iterable[str] | str, timeout: float | None = None
    ) -> tuple[str, object] | None:
        """Blocking left-pop across queues; ``timeout`` in nominal seconds."""
        if isinstance(queues, str):
            queues = [queues]
        names = list(queues)
        caller = self._caller_site()
        self._check_policy(caller)
        # Request travels to the server, then we block server-side.
        self._clock.sleep(self._network.latency(caller, self._server.site))
        item = self._server.blpop(names, self._clock.wall_timeout(timeout))
        if item is None:
            return None
        name, value = item
        self._pay_leg(self._server.site, caller, _payload_size(value))
        return name, value

    def llen(self, queue: str) -> int:
        self._pay(len(queue), 8)
        return self._server.llen(queue)
