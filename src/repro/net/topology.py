"""Sites, links, and latency/bandwidth models.

The topology is the root of the simulation: every network operation in the
library (a Redis ``GET``, a FuncX HTTPS call, a Globus transfer) asks the
:class:`Network` for the one-way latency and/or transfer time between the
calling thread's site and the destination site, then sleeps that long on the
virtual clock.

Latency models are small sampler objects so links can have realistic jitter
(wide-area hops use a log-normal distribution, matching the long right tail
the paper observes for Globus web-service calls).
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field

from repro.exceptions import TopologyError

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LogNormalLatency",
    "Site",
    "Link",
    "Network",
    "LOCALHOST_LATENCY_S",
]

# One-way latency for two components on the same site (loopback / IPC).
LOCALHOST_LATENCY_S = 50e-6


class LatencyModel:
    """Base class: a distribution over one-way latencies in seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    @property
    def typical(self) -> float:
        """A central value (used for documentation and sanity checks)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Deterministic latency; useful in tests."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("latency must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.value

    @property
    def typical(self) -> float:
        return self.value


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform jitter in ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(f"invalid uniform range [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def typical(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Log-normal latency parameterized by its *median* and shape ``sigma``.

    Wide-area and cloud-service latencies are well described by a log-normal:
    most samples sit near the median with an occasional slow outlier.  An
    optional ``cap`` bounds pathological samples so scaled-down benchmark
    runs stay fast.
    """

    median: float
    sigma: float = 0.25
    cap: float | None = None

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0:
            raise ValueError("median must be >0 and sigma >=0")

    def sample(self, rng: random.Random) -> float:
        value = self.median * math.exp(rng.gauss(0.0, self.sigma))
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    @property
    def typical(self) -> float:
        return self.median


@dataclass(frozen=True)
class Site:
    """A computing location: an HPC login node, a compute fabric, a cloud
    region, or a GPU cluster.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`Network`.
    fs_group:
        Sites with the same (non-``None``) ``fs_group`` mount the same shared
        file system.  Theta's login and compute nodes share one; the GPU
        cluster in the paper deliberately does not.
    allows_inbound:
        Whether services on this site may accept connections initiated from
        *other* sites.  HPC centers in the paper do not, which is exactly why
        the Parsl baseline needs "open ports or a tunnel" and the FuncX stack
        does not (its endpoints only dial out).
    trust_group:
        Sites inside the same administrative facility (same non-``None``
        ``trust_group``) may always connect to each other — e.g. Theta
        compute nodes dialing the interchange on a Theta login node.
    tags:
        Free-form labels ("cpu", "gpu", "cloud") used by resource selection.
    """

    name: str
    fs_group: str | None = None
    allows_inbound: bool = False
    trust_group: str | None = None
    tags: frozenset[str] = frozenset()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Link:
    """A bidirectional network path between two sites."""

    a: str
    b: str
    latency: LatencyModel
    bandwidth: float  # bytes per second

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


@dataclass
class Network:
    """A registry of sites and links with deterministic latency sampling.

    The network owns a seeded RNG so that experiment runs are reproducible;
    sampling is serialized behind a lock because every component thread
    shares the one network instance.
    """

    seed: int = 0
    default_link: Link | None = None
    _sites: dict[str, Site] = field(default_factory=dict)
    _links: dict[frozenset[str], Link] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # -- construction -----------------------------------------------------
    def add_site(self, site: Site) -> Site:
        if site.name in self._sites:
            raise TopologyError(f"site {site.name!r} already exists")
        self._sites[site.name] = site
        return site

    def add_link(
        self, a: Site | str, b: Site | str, latency: LatencyModel, bandwidth: float
    ) -> Link:
        a_name, b_name = self._name(a), self._name(b)
        if a_name == b_name:
            raise TopologyError("cannot link a site to itself")
        for name in (a_name, b_name):
            if name not in self._sites:
                raise TopologyError(f"unknown site {name!r}")
        key = frozenset((a_name, b_name))
        link = Link(a_name, b_name, latency, bandwidth)
        self._links[key] = link
        return link

    # -- queries ----------------------------------------------------------
    @staticmethod
    def _name(site: Site | str) -> str:
        return site.name if isinstance(site, Site) else site

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise TopologyError(f"unknown site {name!r}") from None

    @property
    def sites(self) -> tuple[Site, ...]:
        return tuple(self._sites.values())

    def link_between(self, a: Site | str, b: Site | str) -> Link:
        a_name, b_name = self._name(a), self._name(b)
        key = frozenset((a_name, b_name))
        link = self._links.get(key, self.default_link)
        if link is None:
            raise TopologyError(f"no link between {a_name!r} and {b_name!r}")
        return link

    def _sample(self, model: LatencyModel) -> float:
        with self._lock:
            return model.sample(self._rng)

    def latency(self, a: Site | str, b: Site | str) -> float:
        """Sampled one-way latency in nominal seconds between two sites."""
        if self._name(a) == self._name(b):
            return LOCALHOST_LATENCY_S
        return self._sample(self.link_between(a, b).latency)

    def rtt(self, a: Site | str, b: Site | str) -> float:
        """Sampled round-trip time (two independent one-way samples)."""
        return self.latency(a, b) + self.latency(b, a)

    def bandwidth(self, a: Site | str, b: Site | str) -> float:
        """Bytes/second between two sites (effectively infinite locally)."""
        if self._name(a) == self._name(b):
            return 20e9  # intra-node memory/loopback speed
        return self.link_between(a, b).bandwidth

    def transfer_time(self, a: Site | str, b: Site | str, nbytes: int) -> float:
        """One-way latency plus serialization delay for ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency(a, b) + nbytes / self.bandwidth(a, b)

    def can_connect(self, caller: Site | str, server: Site | str) -> bool:
        """Whether ``caller`` may open a connection *to* ``server``.

        Allowed when the two are the same site, inside the same trust group
        (intra-facility), or when the server's site accepts inbound traffic
        (cloud services).  Everything else needs a tunnel, which is exactly
        the deployment burden the paper's cloud-managed stack avoids.
        """
        sc, ss = self.site(self._name(caller)), self.site(self._name(server))
        if sc.name == ss.name or ss.allows_inbound:
            return True
        return (
            sc.trust_group is not None
            and sc.trust_group == ss.trust_group
        )

    def shares_filesystem(self, a: Site | str, b: Site | str) -> bool:
        sa, sb = self.site(self._name(a)), self.site(self._name(b))
        return (
            sa.fs_group is not None
            and sb.fs_group is not None
            and sa.fs_group == sb.fs_group
        )
