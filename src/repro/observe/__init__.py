"""``repro.observe`` — distributed tracing + metrics across the task fabric.

The Result ledger (Figs. 3–7) sees task-level endpoints only; this
subsystem sees the fabric between them.  Install a :class:`Tracer` and/or
a :class:`MetricsRegistry` before a campaign, run it, then export:

>>> from repro import observe
>>> observe.set_tracer(observe.Tracer())
>>> observe.set_metrics(observe.MetricsRegistry())
>>> # ... run a campaign ...
>>> spans = observe.get_tracer().spans()
>>> observe.write_spans_jsonl(spans, "trace.jsonl")
>>> print(observe.render_span_summary(spans))

Both facilities are off by default and their instrumentation points are
one-global-read no-ops, so an uninstrumented campaign pays nothing.
``python -m repro.cli trace <file>`` reconstructs and prints critical
paths from an exported JSONL trace.
"""

from repro.observe.critical_path import (
    PathEntry,
    critical_path,
    find_orphans,
    group_traces,
    trace_root,
)
from repro.observe.export import (
    load_spans_jsonl,
    metrics_report_table,
    render_critical_path,
    render_span_summary,
    span_summary,
    spans_report_table,
    write_spans_jsonl,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_inc,
    gauge_add,
    gauge_set,
    get_metrics,
    metrics_enabled,
    observe,
    set_metrics,
)
from repro.observe.span import (
    Span,
    TraceContext,
    Tracer,
    current_context,
    current_span,
    get_tracer,
    new_task_trace,
    record_span,
    set_tracer,
    trace_span,
    tracing_enabled,
)

__all__ = [
    # span
    "Span",
    "Tracer",
    "TraceContext",
    "set_tracer",
    "get_tracer",
    "tracing_enabled",
    "trace_span",
    "record_span",
    "new_task_trace",
    "current_span",
    "current_context",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "set_metrics",
    "get_metrics",
    "metrics_enabled",
    "counter_inc",
    "gauge_set",
    "gauge_add",
    "observe",
    # traces
    "PathEntry",
    "group_traces",
    "find_orphans",
    "trace_root",
    "critical_path",
    # export
    "write_spans_jsonl",
    "load_spans_jsonl",
    "span_summary",
    "render_span_summary",
    "render_critical_path",
    "spans_report_table",
    "metrics_report_table",
]
