"""Trace reconstruction: group spans, validate parentage, find the
critical path.

A recorded campaign is a flat list of spans.  This module rebuilds the
per-task structure: :func:`group_traces` buckets spans by trace id,
:func:`find_orphans` flags spans whose parent never arrived (the invariant
the endpoint-outage tests assert), and :func:`critical_path` walks one
trace backwards from the root span's end to produce the chain of intervals
that actually determined the task's lifetime — the span-level analogue of
the paper's Fig. 3 component decomposition.

The backward walk is the standard one for tracing tools: starting at the
root's end, repeatedly pick the child that *finishes last* among those
that *started* before the cursor, recurse into it, then move the cursor
to its start.  Children may overlap slightly (a ``worker.run`` span's
closing transfer extends past the ledger's ``time_worker_ended``, which
starts the ``fabric.collect`` hop); requiring only ``start < cursor``
keeps such spans on the path.  Time inside a path span not covered by its
own children is that component's *self time*; time between consecutive
path spans is attributed to the parent (queueing / untraced work).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.observe.span import Span

__all__ = [
    "PathEntry",
    "group_traces",
    "find_orphans",
    "trace_root",
    "critical_path",
]

_EPS = 1e-9


@dataclass(frozen=True)
class PathEntry:
    """One hop on a critical path."""

    span: Span
    depth: int
    #: Seconds of this span not covered by its own on-path children.
    self_seconds: float


def group_traces(spans: list[Span]) -> dict[str, list[Span]]:
    """Bucket spans by trace id, each bucket sorted by start time."""
    traces: dict[str, list[Span]] = defaultdict(list)
    for span in spans:
        traces[span.trace_id].append(span)
    for bucket in traces.values():
        bucket.sort(key=lambda s: (s.start if s.start is not None else 0.0))
    return dict(traces)


def find_orphans(spans: list[Span]) -> list[Span]:
    """Spans whose ``parent_id`` does not exist within their own trace.

    A non-empty return means context was lost somewhere (e.g. a hop that
    dropped the trace tuple) — the invariant the outage tests protect.
    """
    by_trace: dict[str, set[str]] = defaultdict(set)
    for span in spans:
        by_trace[span.trace_id].add(span.span_id)
    return [
        span
        for span in spans
        if span.parent_id is not None and span.parent_id not in by_trace[span.trace_id]
    ]


def trace_root(spans: list[Span]) -> Span | None:
    """The root span of one trace: parentless, earliest-starting, and the
    longest if several qualify (reconstructed hop spans can be parentless
    in partial traces)."""
    roots = [s for s in spans if s.parent_id is None]
    if not roots:
        return None
    return max(roots, key=lambda s: (s.duration or 0.0))


def critical_path(spans: list[Span]) -> list[PathEntry]:
    """The chain of spans that determined this trace's end-to-end time,
    in chronological order.  Empty if the trace has no usable root."""
    root = trace_root(spans)
    if root is None or root.start is None or root.end is None:
        return []
    children: dict[str, list[Span]] = defaultdict(list)
    for span in spans:
        if span.parent_id is not None and span.start is not None and span.end is not None:
            children[span.parent_id].append(span)

    entries: list[PathEntry] = []

    def walk(span: Span, depth: int) -> None:
        kids = children.get(span.span_id, [])
        # Backward sweep: chain the latest-finishing child started before
        # the cursor (cursor strictly decreases, so this terminates).
        chain: list[Span] = []
        cursor = span.end
        remaining = sorted(kids, key=lambda s: s.end)
        while remaining:
            candidates = [k for k in remaining if k.start < cursor - _EPS]
            if not candidates:
                break
            pick = max(candidates, key=lambda s: s.end)
            chain.append(pick)
            cursor = pick.start
            remaining = [k for k in candidates if k is not pick]
        chain.reverse()
        # Union of the chain's coverage, clipped to this span (overlaps
        # between consecutive picks must not be double-counted).
        covered = 0.0
        prev_end: float | None = None
        for kid in chain:
            lo, hi = kid.start, min(kid.end, span.end)
            if prev_end is not None:
                lo = max(lo, prev_end)
            if hi > lo:
                covered += hi - lo
            prev_end = hi if prev_end is None else max(prev_end, hi)
        entries.append(
            PathEntry(span, depth, max((span.end - span.start) - covered, 0.0))
        )
        for kid in chain:
            walk(kid, depth + 1)

    walk(root, 0)
    # Chronological order, children after parents at the same instant.
    entries.sort(
        key=lambda e: (e.span.start if e.span.start is not None else 0.0, e.depth)
    )
    return entries
