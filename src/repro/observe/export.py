"""Exporters: JSONL trace files, console summaries, benchmark tables.

Three consumers of a recorded campaign:

* **JSONL** — one span per line, the durable artifact ``repro.cli trace``
  reconstructs critical paths from (:func:`write_spans_jsonl` /
  :func:`load_spans_jsonl`);
* **console** — a per-component medians block for quick inspection
  (:func:`render_span_summary`);
* **benchmark reporting** — :func:`spans_report_table` and
  :func:`metrics_report_table` produce
  :class:`~repro.bench.reporting.ReportTable` rows so figure harnesses can
  cite span-level breakdowns next to the paper's numbers.
"""

from __future__ import annotations

import json
import pathlib
import statistics
from typing import Any

from repro.bench.reporting import ReportTable
from repro.observe.critical_path import critical_path, group_traces
from repro.observe.metrics import MetricsRegistry
from repro.observe.span import Span

__all__ = [
    "write_spans_jsonl",
    "load_spans_jsonl",
    "span_summary",
    "render_span_summary",
    "render_critical_path",
    "spans_report_table",
    "metrics_report_table",
]


def write_spans_jsonl(spans: list[Span], path: str | pathlib.Path) -> int:
    """Write one span per line; returns the number written."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict()) + "\n")
    return len(spans)


def load_spans_jsonl(path: str | pathlib.Path) -> list[Span]:
    spans: list[Span] = []
    with pathlib.Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def span_summary(spans: list[Span]) -> dict[str, dict[str, float]]:
    """Per-span-name aggregate durations: count / median / mean / max."""
    by_name: dict[str, list[float]] = {}
    for span in spans:
        if span.duration is not None:
            by_name.setdefault(span.name, []).append(span.duration)
    out: dict[str, dict[str, float]] = {}
    for name, durations in sorted(by_name.items()):
        out[name] = {
            "count": len(durations),
            "median": statistics.median(durations),
            "mean": statistics.fmean(durations),
            "max": max(durations),
        }
    return out


def _fmt_s(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    return f"{seconds:.2f}s"


def render_span_summary(spans: list[Span]) -> str:
    summary = span_summary(spans)
    traces = group_traces(spans)
    width = max((len(name) for name in summary), default=4)
    lines = [
        f"== trace summary: {len(spans)} spans in {len(traces)} traces ==",
        f"{'component':<{width}}  {'count':>5}  {'median':>8}  {'mean':>8}  {'max':>8}",
    ]
    for name, stats in summary.items():
        lines.append(
            f"{name:<{width}}  {stats['count']:>5.0f}  "
            f"{_fmt_s(stats['median']):>8}  {_fmt_s(stats['mean']):>8}  "
            f"{_fmt_s(stats['max']):>8}"
        )
    return "\n".join(lines)


def render_critical_path(spans: list[Span], trace_id: str) -> str:
    """Pretty-print one trace's critical path with offsets and self times."""
    traces = group_traces(spans)
    bucket = traces.get(trace_id)
    if not bucket:
        return f"trace {trace_id!r} not found"
    path = critical_path(bucket)
    if not path:
        return f"trace {trace_id!r} has no complete root span"
    root = path[0].span
    origin = root.start or 0.0
    lines = [
        f"== critical path: trace {trace_id} "
        f"({_fmt_s(root.duration or 0.0)} end to end) =="
    ]
    for entry in path:
        span = entry.span
        indent = "  " * entry.depth
        offset = (span.start or 0.0) - origin
        site = f" @{span.site}" if span.site else ""
        lines.append(
            f"  +{offset:8.3f}s  {indent}{span.name:<24} "
            f"{_fmt_s(span.duration or 0.0):>8}  (self {_fmt_s(entry.self_seconds)})"
            f"{site}"
        )
    return "\n".join(lines)


def spans_report_table(
    spans: list[Span], title: str = "trace component medians"
) -> ReportTable:
    """One informational row per component — the hook figure harnesses use
    to cite span-level breakdowns next to ledger-derived numbers."""
    table = ReportTable(title)
    for name, stats in span_summary(spans).items():
        table.add(
            name,
            "-",
            f"{_fmt_s(stats['median'])} median x{stats['count']:.0f}",
        )
    return table


def metrics_report_table(
    registry: MetricsRegistry, title: str = "campaign metrics"
) -> ReportTable:
    table = ReportTable(title)

    def label_str(labels: dict[str, Any]) -> str:
        if not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"

    for name, labels, counter in registry.counters():
        table.add(f"{name}{label_str(labels)}", "-", f"{counter.value:g}")
    for name, labels, gauge in registry.gauges():
        table.add(
            f"{name}{label_str(labels)}",
            "-",
            f"{gauge.value:g} (peak {gauge.high_water:g})",
        )
    for name, labels, hist in registry.histograms():
        stats = hist.summary()
        table.add(
            f"{name}{label_str(labels)}",
            "-",
            f"n={stats['count']} median={stats['median']:.4g}",
        )
    return table
