"""Process-wide metrics: counters, gauges, histograms with labels.

Service-side telemetry the Result ledger cannot express: queue depths at
the FaaS cloud, the endpoint poll loop's idle fraction, result-store tier
hits, proxy cache hit rates, transfer concurrency-limit stalls.  Components
update metrics through the module-level helpers (:func:`counter_inc`,
:func:`gauge_set`, :func:`observe`), which are one-global-read no-ops when
no :class:`MetricsRegistry` is installed — the same zero-overhead contract
as the tracer.

Instruments are keyed by ``(name, labels)``, Prometheus-style, so one
metric name fans out per endpoint / topic / store / user without the call
sites managing registries themselves.
"""

from __future__ import annotations

import statistics
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "set_metrics",
    "get_metrics",
    "metrics_enabled",
    "counter_inc",
    "gauge_set",
    "gauge_add",
    "observe",
]

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move both ways (queue depth, active transfers)."""

    __slots__ = ("_value", "_max", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._max = max(self._max, value)

    def add(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n
            self._max = max(self._max, self._value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def high_water(self) -> float:
        """The largest value ever set — e.g. peak queue depth."""
        with self._lock:
            return self._max


class Histogram:
    """Distribution of observed values (durations, batch sizes)."""

    __slots__ = ("_values", "_lock")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def sum(self) -> float:
        with self._lock:
            return sum(self._values)

    def summary(self) -> dict[str, float]:
        with self._lock:
            data = sorted(self._values)
        if not data:
            return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}
        idx95 = min(len(data) - 1, int(round(0.95 * (len(data) - 1))))
        return {
            "count": len(data),
            "mean": statistics.fmean(data),
            "median": statistics.median(data),
            "p95": data[idx95],
            "max": data[-1],
        }


class MetricsRegistry:
    """Get-or-create instruments keyed by (name, labels)."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, table: dict, cls, name: str, labels: dict[str, Any]):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = table.get(key)
            if instrument is None:
                instrument = table[key] = cls()
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    # -- read side --------------------------------------------------------------
    def _items(self, table: dict) -> list[tuple[str, dict[str, Any], Any]]:
        with self._lock:
            snapshot = list(table.items())
        return [(name, dict(labels), inst) for (name, labels), inst in snapshot]

    def counters(self) -> list[tuple[str, dict[str, Any], Counter]]:
        return self._items(self._counters)

    def gauges(self) -> list[tuple[str, dict[str, Any], Gauge]]:
        return self._items(self._gauges)

    def histograms(self) -> list[tuple[str, dict[str, Any], Histogram]]:
        return self._items(self._histograms)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets (0.0 if never touched)."""
        return sum(c.value for n, _, c in self.counters() if n == name)

    def snapshot(self) -> dict[str, Any]:
        """A plain-data dump of every instrument (JSON-friendly)."""
        out: dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for name, labels, counter in self.counters():
            out["counters"].append(
                {"name": name, "labels": labels, "value": counter.value}
            )
        for name, labels, gauge in self.gauges():
            out["gauges"].append(
                {
                    "name": name,
                    "labels": labels,
                    "value": gauge.value,
                    "high_water": gauge.high_water,
                }
            )
        for name, labels, hist in self.histograms():
            out["histograms"].append(
                {"name": name, "labels": labels, **hist.summary()}
            )
        return out

    def render(self) -> str:
        """Console summary, grouped by instrument kind."""

        def fmt_labels(labels: dict[str, Any]) -> str:
            if not labels:
                return ""
            inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            return "{" + inner + "}"

        lines = ["== metrics =="]
        for name, labels, counter in sorted(
            self.counters(), key=lambda item: (item[0], _label_key(item[1]))
        ):
            lines.append(f"counter  {name}{fmt_labels(labels)} = {counter.value:g}")
        for name, labels, gauge in sorted(
            self.gauges(), key=lambda item: (item[0], _label_key(item[1]))
        ):
            lines.append(
                f"gauge    {name}{fmt_labels(labels)} = {gauge.value:g} "
                f"(peak {gauge.high_water:g})"
            )
        for name, labels, hist in sorted(
            self.histograms(), key=lambda item: (item[0], _label_key(item[1]))
        ):
            s = hist.summary()
            lines.append(
                f"hist     {name}{fmt_labels(labels)} n={s['count']} "
                f"median={s['median']:.4g} p95={s['p95']:.4g} max={s['max']:.4g}"
            )
        return "\n".join(lines)


# -- module-level API (the zero-overhead surface) ------------------------------

_registry: MetricsRegistry | None = None
_registry_lock = threading.Lock()


def set_metrics(registry: MetricsRegistry | None) -> None:
    """Install (or remove, with ``None``) the process-wide registry."""
    global _registry
    with _registry_lock:
        _registry = registry


def get_metrics() -> MetricsRegistry | None:
    return _registry


def metrics_enabled() -> bool:
    return _registry is not None


def counter_inc(name: str, n: float = 1.0, **labels: Any) -> None:
    registry = _registry
    if registry is not None:
        registry.counter(name, **labels).inc(n)


def gauge_set(name: str, value: float, **labels: Any) -> None:
    registry = _registry
    if registry is not None:
        registry.gauge(name, **labels).set(value)


def gauge_add(name: str, n: float = 1.0, **labels: Any) -> None:
    registry = _registry
    if registry is not None:
        registry.gauge(name, **labels).add(n)


def observe(name: str, value: float, **labels: Any) -> None:
    registry = _registry
    if registry is not None:
        registry.histogram(name, **labels).observe(value)
