"""Virtual-clock-aware distributed tracing: spans, a tracer, propagation.

The :class:`~repro.core.result.Result` ledger sees a task only at its
endpoints; everything in between — queue hops, the FaaS cloud round trip,
the endpoint's long-poll fetch, proxy resolution on a worker, a Globus
transfer — is invisible to it.  A :class:`Span` names one such interval:
it carries a ``trace_id`` (shared by every span of one task), its own
``span_id``, an optional ``parent_id``, nominal start/end timestamps from
:mod:`repro.net.clock`, the site the span was opened at, and free-form
tags.

Two recording styles cover every instrumentation point in the stack:

* **live spans** — ``with trace_span("worker.execute", parent=ctx):`` for
  intervals one thread observes end to end.  Live spans nest: a span opened
  while another is active on the same thread becomes its child, which is
  how a ``proxy.resolve`` deep inside a worker lands under
  ``worker.resolve_proxies`` without any plumbing.
* **reconstructed spans** — :func:`record_span` with explicit start/end,
  for hops whose two ends are stamped by different components (the
  timestamps already live on the Result ledger when the receiving side
  runs).

Trace context travels between components as a plain ``(trace_id,
span_id)`` tuple — small, pickleable, and cheap to thread through task
payloads and cloud dispatch records.

The whole API is **zero-overhead when disabled**: no tracer is installed
by default, ``trace_span`` returns a shared no-op context manager, and
``record_span`` returns ``None`` after one global read.
"""

from __future__ import annotations

import itertools
import threading
import uuid
from typing import Any

from repro.net.clock import Clock, get_clock
from repro.net.context import current_site

__all__ = [
    "Span",
    "Tracer",
    "TraceContext",
    "set_tracer",
    "get_tracer",
    "tracing_enabled",
    "trace_span",
    "record_span",
    "new_task_trace",
    "current_span",
    "current_context",
]

#: ``(trace_id, span_id)`` — the wire form of span parentage.
TraceContext = tuple[str, str]

_span_counter = itertools.count()
_tls = threading.local()


def _new_span_id() -> str:
    return f"s{next(_span_counter):06d}-{uuid.uuid4().hex[:6]}"


class Span:
    """One named, timed interval in a trace.

    A span is also its own context manager: entering pushes it onto the
    calling thread's span stack (so nested spans pick it up as parent) and
    exiting stamps ``end`` and hands the finished record to the tracer.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "site",
        "tags",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        span_id: str | None = None,
        parent_id: str | None = None,
        start: float | None = None,
        end: float | None = None,
        site: str | None = None,
        tags: dict[str, Any] | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id or _new_span_id()
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.site = site
        self.tags = tags or {}
        self._tracer = tracer

    # -- context --------------------------------------------------------------
    @property
    def context(self) -> TraceContext:
        """The ``(trace_id, span_id)`` tuple children parent to."""
        return (self.trace_id, self.span_id)

    @property
    def duration(self) -> float | None:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    # -- live recording -------------------------------------------------------
    def __enter__(self) -> "Span":
        if self.start is None:
            clock = self._tracer.clock if self._tracer else get_clock()
            self.start = clock.now()
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = getattr(_tls, "stack", None)
        if stack and stack[-1] is self:
            stack.pop()
        if self.end is None:
            clock = self._tracer.clock if self._tracer else get_clock()
            self.end = clock.now()
        if exc_type is not None:
            self.tags.setdefault("error", repr(exc))
        if self._tracer is not None:
            self._tracer._store(self)

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "site": self.site,
            "tags": self.tags,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            data["name"],
            trace_id=data["trace_id"],
            span_id=data.get("span_id"),
            parent_id=data.get("parent_id"),
            start=data.get("start"),
            end=data.get("end"),
            site=data.get("site"),
            tags=data.get("tags") or {},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f"{self.duration:.4f}s" if self.duration is not None else "open"
        return f"Span({self.name!r}, trace={self.trace_id}, {dur})"


class _NoopSpan:
    """Shared do-nothing span: what instrumentation gets when tracing is off."""

    __slots__ = ()

    context = None
    trace_id = None
    span_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set_tag(self, key: str, value: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans for one recorded campaign.

    Thread-safe and append-only; exporters read :meth:`spans` after the run.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or get_clock()
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    def _store(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- recording ------------------------------------------------------------
    def span(
        self,
        name: str,
        *,
        parent: "TraceContext | Span | None" = None,
        **tags: Any,
    ) -> Span:
        """Open a live span (use as a context manager).

        ``parent`` may be a ``(trace_id, span_id)`` tuple, another
        :class:`Span`, or ``None`` — in which case the calling thread's
        innermost active span is the parent, or a fresh trace is started.
        """
        trace_id, parent_id = _resolve_parent(parent)
        site = current_site()
        return Span(
            name,
            trace_id=trace_id,
            parent_id=parent_id,
            site=site.name if site is not None else None,
            tags=tags,
            tracer=self,
        )

    def record(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent: "TraceContext | Span | None" = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        **tags: Any,
    ) -> Span:
        """Record a finished span from explicit timestamps (ledger hops)."""
        if trace_id is None:
            trace_id, parent_id = _resolve_parent(parent)
        else:
            parent_id = None
            if parent is not None:
                parent_id = parent[1] if isinstance(parent, tuple) else parent.span_id
        site = current_site()
        span = Span(
            name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start=start,
            end=end,
            site=site.name if site is not None else None,
            tags=tags,
            tracer=self,
        )
        self._store(span)
        return span

    # -- access ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def _resolve_parent(
    parent: "TraceContext | Span | None",
) -> tuple[str, str | None]:
    """Turn a parent hint into (trace_id, parent_id)."""
    if parent is None:
        active = current_span()
        if active is not None:
            return active.trace_id, active.span_id
        return f"tr-{uuid.uuid4().hex[:10]}", None
    if isinstance(parent, Span):
        return parent.trace_id, parent.span_id
    return parent[0], parent[1]


# -- module-level API (the zero-overhead surface) ------------------------------

_tracer: Tracer | None = None
_tracer_lock = threading.Lock()


def set_tracer(tracer: Tracer | None) -> None:
    """Install (or remove, with ``None``) the process-wide tracer."""
    global _tracer
    with _tracer_lock:
        _tracer = tracer


def get_tracer() -> Tracer | None:
    return _tracer


def tracing_enabled() -> bool:
    return _tracer is not None


def trace_span(
    name: str, *, parent: "TraceContext | Span | None" = None, **tags: Any
):
    """Open a live span on the global tracer; no-op singleton when disabled."""
    tracer = _tracer
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, parent=parent, **tags)


def record_span(
    name: str,
    *,
    start: float | None,
    end: float | None,
    parent: "TraceContext | Span | None" = None,
    trace_id: str | None = None,
    span_id: str | None = None,
    **tags: Any,
) -> Span | None:
    """Record a reconstructed span on the global tracer (``None`` when
    disabled or when either timestamp is missing — failure paths may not
    have stamped both ends)."""
    tracer = _tracer
    if tracer is None or start is None or end is None:
        return None
    return tracer.record(
        name,
        start=start,
        end=end,
        parent=parent,
        trace_id=trace_id,
        span_id=span_id,
        **tags,
    )


def new_task_trace(task_id: str) -> TraceContext | None:
    """Allocate the trace context for one task: the trace id is the task id
    (ledger↔trace correlation for free) and the span id is pre-allocated for
    the root ``task`` span, which is recorded when the result returns."""
    if _tracer is None:
        return None
    return (task_id, _new_span_id())


def current_span() -> Span | None:
    """The calling thread's innermost active span, if any."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return None


def current_context() -> TraceContext | None:
    """The innermost active span's context, if any (for cross-thread
    hand-offs that should join the current trace)."""
    span = current_span()
    return span.context if span is not None else None
