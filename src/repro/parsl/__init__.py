"""Conventional pilot-job workflow system (the Parsl baseline)."""

from repro.parsl.channels import Channel, DirectChannel, SSHTunnel
from repro.parsl.dataflow import DataFlowKernel
from repro.parsl.executors import HtexExecutor

__all__ = ["Channel", "DirectChannel", "SSHTunnel", "DataFlowKernel", "HtexExecutor"]
