"""Connectivity channels for the conventional workflow baseline.

A pilot-job executor needs its remote workers to dial back to the
interchange on the controller host.  Whether that connection is even
possible is a deployment question this module makes explicit:

* :class:`DirectChannel` — allowed only when the topology says the worker
  site may connect to the controller site (same facility, or the controller
  site accepts inbound traffic).  This is the "requires two open ports"
  condition of §V-B.
* :class:`SSHTunnel` — always allowed but represents the manual deployment
  step (and a little per-message overhead) the paper argues cloud-managed
  services let you skip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PortPolicyError
from repro.net.topology import Network, Site

__all__ = ["Channel", "DirectChannel", "SSHTunnel"]


@dataclass(frozen=True)
class Channel:
    """Base: a path from a worker site back to the controller site."""

    #: Added one-way latency per message riding the channel.
    extra_latency: float = 0.0
    #: Effective throughput ceiling (bytes/s); ``None`` = raw link speed.
    bandwidth_cap: float | None = None

    def validate(self, network: Network, worker_site: Site, controller_site: Site) -> None:
        raise NotImplementedError

    def transfer_time(self, network: Network, a: Site, b: Site, nbytes: int) -> float:
        latency, wire = self.split_transfer(network, a, b, nbytes)
        return latency + wire

    def split_transfer(
        self, network: Network, a: Site, b: Site, nbytes: int
    ) -> tuple[float, float]:
        """(latency, wire time).  Callers that share the channel across
        threads serialize the wire portion on a lock when the channel has a
        bandwidth cap (one TCP stream)."""
        bandwidth = network.bandwidth(a, b)
        if self.bandwidth_cap is not None and a.name != b.name:
            bandwidth = min(bandwidth, self.bandwidth_cap)
        return network.latency(a, b) + self.extra_latency, nbytes / bandwidth


@dataclass(frozen=True)
class DirectChannel(Channel):
    """Workers connect straight to the interchange's open ports."""

    def validate(
        self, network: Network, worker_site: Site, controller_site: Site
    ) -> None:
        if not network.can_connect(worker_site, controller_site):
            raise PortPolicyError(
                f"workers on {worker_site.name!r} cannot reach an interchange "
                f"on {controller_site.name!r}: no inbound ports there. "
                "Use an SSHTunnel (manual deployment) or a cloud-managed fabric."
            )


@dataclass(frozen=True)
class SSHTunnel(Channel):
    """A user-maintained tunnel; works anywhere, costs deployment effort,
    a touch of latency, single-stream throughput, and is 'fragile to
    maintain' (§II-B)."""

    extra_latency: float = 0.5e-3
    bandwidth_cap: float | None = 0.20e9

    def validate(
        self, network: Network, worker_site: Site, controller_site: Site
    ) -> None:
        return None  # tunnels bypass port policy by construction
