"""A minimal DataFlowKernel: route app invocations to labeled executors.

The fragment of Parsl's programming model the paper's baseline needs: apps
(plain callables) submitted with ``executor=`` routing, futures back, and
optional dependency chaining (a submitted app may receive futures as
arguments; they are awaited before dispatch — the DAG data model of §II-A).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable

from repro.exceptions import WorkflowError
from repro.observe import counter_inc
from repro.parsl.executors import HtexExecutor

__all__ = ["DataFlowKernel"]


class DataFlowKernel:
    """Routes tasks across one or more executors and resolves dependencies."""

    def __init__(self, executors: list[HtexExecutor]) -> None:
        if not executors:
            raise WorkflowError("a DataFlowKernel needs at least one executor")
        self._executors = {ex.label: ex for ex in executors}
        if len(self._executors) != len(executors):
            raise WorkflowError("executor labels must be unique")
        self._default = executors[0].label
        self._started = False
        self._lock = threading.Lock()

    def start(self) -> "DataFlowKernel":
        with self._lock:
            if not self._started:
                for ex in self._executors.values():
                    ex.start()
                self._started = True
        return self

    def shutdown(self) -> None:
        with self._lock:
            if self._started:
                for ex in self._executors.values():
                    ex.shutdown()
                self._started = False

    def executor(self, label: str | None = None) -> HtexExecutor:
        label = label or self._default
        try:
            return self._executors[label]
        except KeyError:
            raise WorkflowError(f"no executor labeled {label!r}") from None

    def submit(
        self,
        fn: Callable,
        /,
        *args: object,
        executor: str | None = None,
        **kwargs: object,
    ) -> Future:
        """Submit ``fn`` to the labeled executor.

        Futures among the arguments are dependencies: dispatch happens on a
        helper thread after they all complete (failures propagate).
        """
        if not self._started:
            raise WorkflowError("DataFlowKernel is not started")
        target = self.executor(executor)
        counter_inc("dfk.submitted", executor=target.label)
        deps = [a for a in args if isinstance(a, Future)]
        deps += [v for v in kwargs.values() if isinstance(v, Future)]
        if not deps:
            return target.submit(fn, *args, **kwargs)

        outer: Future = Future()

        def wait_and_dispatch() -> None:
            try:
                resolved_args = tuple(
                    a.result() if isinstance(a, Future) else a for a in args
                )
                resolved_kwargs = {
                    k: (v.result() if isinstance(v, Future) else v)
                    for k, v in kwargs.items()
                }
            except Exception as exc:
                outer.set_exception(exc)
                return
            inner = target.submit(fn, *resolved_args, **resolved_kwargs)
            inner.add_done_callback(_chain(outer))

        threading.Thread(target=wait_and_dispatch, daemon=True).start()
        return outer

    def __enter__(self) -> "DataFlowKernel":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _chain(outer: Future) -> Callable[[Future], None]:
    def done(inner: Future) -> None:
        error = inner.exception()
        if error is not None:
            outer.set_exception(error)
        else:
            outer.set_result(inner.result())

    return done
