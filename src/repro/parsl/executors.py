"""A HighThroughputExecutor-like pilot-job executor (the Parsl baseline).

Architecture (mirroring Parsl's HTEX): the *interchange* runs beside the
controller (e.g. on the Theta login node) and listens on two ports — one for
task distribution, one for results.  Workers deployed on the resource dial
back over a :class:`~repro.parsl.channels.Channel` and pull serialized
(function, args) messages.  Everything travels **by value** through the
interchange unless the application layers ProxyStore on top, which is
exactly the contrast §V-E draws between the three workflow configurations.
"""

from __future__ import annotations

import queue
import threading
import traceback
from concurrent.futures import Executor, Future
from typing import Callable

from repro.bench.recording import emit
from repro.net.clock import Clock, get_clock
from repro.net.context import SiteThread
from repro.net.topology import Network, Site
from repro.observe import TraceContext, counter_inc, trace_span
from repro.parsl.channels import Channel, DirectChannel
from repro.proxystore.prefetch import apply_prefetch_hints
from repro.resources.worker import WorkerPool
from repro.serialize import (
    Payload,
    deserialize,
    deserialize_cost,
    serialize,
    serialize_cost,
)
from repro.exceptions import TaskError

__all__ = ["HtexExecutor"]


class HtexExecutor(Executor):
    """Tasks from one controller to one resource's worker pool.

    Parameters
    ----------
    label:
        Executor name, used by the dataflow layer for routing.
    controller_site:
        Where the interchange (and the submitting application) runs.
    pool:
        The pilot-job worker pool on the target resource.
    channel:
        How workers reach the interchange; validated at construction, so a
        disallowed direct connection fails at deploy time like the real
        thing would.
    """

    def __init__(
        self,
        label: str,
        controller_site: Site,
        pool: WorkerPool,
        network: Network,
        *,
        channel: Channel | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.label = label
        self.controller_site = controller_site
        self.pool = pool
        self.network = network
        self.channel = channel or DirectChannel()
        self.channel.validate(network, pool.site, controller_site)
        self._clock = clock or get_clock()
        self._tasks: queue.Queue[
            tuple[Future, Payload, Callable, TraceContext | None, tuple] | None
        ] = queue.Queue()
        self._running = False
        self._interchange: SiteThread | None = None
        # Bulk bytes in both directions share one channel stream.
        self._channel_lock = threading.Lock()

    def _pay_transfer(self, a: Site, b: Site, nbytes: int) -> None:
        latency, wire = self.channel.split_transfer(self.network, a, b, nbytes)
        self._clock.sleep(latency)
        if wire <= 0:
            return
        if self.channel.bandwidth_cap is not None:
            with self._channel_lock:
                self._clock.sleep(wire)
        else:
            self._clock.sleep(wire)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "HtexExecutor":
        if self._running:
            return self
        self._running = True
        self.pool.start()
        self._interchange = SiteThread(
            self.controller_site,
            target=self._interchange_loop,
            name=f"htex-{self.label}-interchange",
        )
        self._interchange.start()
        return self

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        if not self._running:
            return
        self._running = False
        self._tasks.put(None)
        if self._interchange is not None:
            self._interchange.join(timeout=10)
        self.pool.stop()

    # -- submission ------------------------------------------------------------
    def submit(
        self,
        fn: Callable,
        /,
        *args: object,
        _trace_ctx: TraceContext | None = None,
        _prefetch_hints: tuple = (),
        **kwargs: object,
    ) -> Future:
        if not self._running:
            raise RuntimeError(f"executor {self.label!r} is not started")
        with trace_span("htex.submit", parent=_trace_ctx, executor=self.label):
            payload = serialize((args, kwargs))
            self._clock.sleep(serialize_cost(payload.nominal_size))
        future: Future = Future()
        self._tasks.put((future, payload, fn, _trace_ctx, tuple(_prefetch_hints)))
        return future

    # -- interchange + worker glue ---------------------------------------------------
    def _interchange_loop(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            future, payload, fn, trace_ctx, prefetch_hints = item
            # Warm the worker site's proxy cache while the argument payload
            # is still crossing the channel, so first resolves land on hot
            # replicas instead of paying the wire per worker.
            if prefetch_hints:
                apply_prefetch_hints(
                    prefetch_hints, self.pool.site, via=f"htex:{self.label}"
                )
            # Interchange -> worker: the whole argument payload rides the
            # channel (tunnels cap throughput and add latency).
            with trace_span("htex.dispatch", parent=trace_ctx, executor=self.label):
                self._pay_transfer(
                    self.controller_site, self.pool.site, payload.nominal_size
                )
            emit(
                "data_transfer",
                resource=self.pool.site.name,
                bytes=payload.nominal_size,
                via=f"htex:{self.label}",
            )
            self.pool.submit(self._make_work(future, payload, fn, trace_ctx))

    def _make_work(
        self,
        future: Future,
        payload: Payload,
        fn: Callable,
        trace_ctx: TraceContext | None = None,
    ) -> Callable[[], None]:
        def work() -> None:
            # Span opens on the worker thread, so spans raised inside ``fn``
            # (the ColmenaTask's ``worker.execute``) nest under it.
            with trace_span("worker.run", parent=trace_ctx, executor=self.label):
                self._clock.sleep(deserialize_cost(payload.nominal_size))
                try:
                    args, kwargs = deserialize(payload)
                    value = fn(*args, **kwargs)
                    body = {"success": True, "value": value}
                except Exception as exc:
                    body = {
                        "success": False,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    }
                result_payload = serialize(body)
                self._clock.sleep(serialize_cost(result_payload.nominal_size))
                # Worker -> interchange -> client, again by value.
                self._pay_transfer(
                    self.pool.site, self.controller_site, result_payload.nominal_size
                )
            emit(
                "data_transfer",
                resource=self.controller_site.name,
                bytes=result_payload.nominal_size,
                via=f"htex:{self.label}",
            )
            self._clock.sleep(deserialize_cost(result_payload.nominal_size))
            if body["success"]:
                future.set_result(body["value"])
            else:
                future.set_exception(
                    TaskError(body["error"], remote_traceback=body["traceback"])
                )

        return work

    def __enter__(self) -> "HtexExecutor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
