"""Pass-by-reference data fabric (the ProxyStore substitute).

Quick use::

    store = Store("demo", RedisConnector(server, network))
    p = store.proxy(big_object)
    # `p` pickles to ~256 bytes; first use anywhere materializes the target.
"""

from repro.proxystore.cache import CacheStats, EvictionPolicy, SiteCache
from repro.proxystore.connectors import (
    Connector,
    FileConnector,
    GlobusConnector,
    RedisConnector,
)
from repro.proxystore.prefetch import (
    PrefetchHint,
    apply_prefetch_hints,
    hints_for_proxies,
)
from repro.proxystore.proxy import (
    Factory,
    Proxy,
    SimpleFactory,
    extract,
    is_proxy,
    is_resolved,
    resolve,
    resolve_seconds,
)
from repro.proxystore.store import (
    PrefetchHandle,
    Store,
    StoreFactory,
    StoreMetrics,
    clear_store_registry,
    get_store,
    register_store,
    unregister_store,
)

__all__ = [
    "CacheStats",
    "EvictionPolicy",
    "SiteCache",
    "PrefetchHint",
    "PrefetchHandle",
    "apply_prefetch_hints",
    "hints_for_proxies",
    "Connector",
    "FileConnector",
    "GlobusConnector",
    "RedisConnector",
    "Factory",
    "Proxy",
    "SimpleFactory",
    "extract",
    "is_proxy",
    "is_resolved",
    "resolve",
    "resolve_seconds",
    "Store",
    "StoreFactory",
    "StoreMetrics",
    "clear_store_registry",
    "get_store",
    "register_store",
    "unregister_store",
]
