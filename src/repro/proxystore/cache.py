"""Byte-budgeted, policy-driven per-site proxy caches.

The seed's per-site ``_LRU`` counted *entries*, so one 2.4 GB model weight
and one 10 kB fingerprint chunk cost the same cache slot — and a site could
hold arbitrarily many bytes.  :class:`SiteCache` charges entries their
nominal payload size against a per-site byte budget and delegates the
victim order to a pluggable :class:`EvictionPolicy`:

* ``lru``  — evict the least-recently-used unpinned entry (default);
* ``lfu``  — evict the least-frequently-used unpinned entry (model weights
  touched by every inference task outlive one-shot inputs);
* ``ttl``  — LRU plus an expiry: entries older than ``ttl`` nominal seconds
  are dropped lazily on the next access or insert.

Pinned entries (ahead-of-time staged model weights) are never chosen as
victims; an insert that cannot free enough unpinned bytes is *rejected*
rather than overflowing, so occupancy never exceeds the budget.

Occupancy and eviction decisions are exported through :mod:`repro.observe`
(``store.cache_bytes`` gauge, ``store.evictions{reason=}`` counter) so a
campaign can reconcile inserts against residents + evictions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.net.clock import get_clock
from repro.observe import counter_inc, gauge_set

__all__ = ["CacheEntry", "EvictionPolicy", "SiteCache", "CACHE_POLICIES"]

CACHE_POLICIES = ("lru", "lfu", "ttl")


@dataclass
class CacheEntry:
    """One resident object plus the metadata the policies rank it by."""

    value: object
    nbytes: int
    inserted_at: float
    last_access: float
    hits: int = 0
    pinned: bool = False


class EvictionPolicy:
    """Victim selection strategy for one :class:`SiteCache`."""

    name = "abstract"

    def victim(self, entries: dict[str, CacheEntry]) -> str | None:
        """Key of the next unpinned entry to evict (None if all pinned)."""
        raise NotImplementedError

    def expired(self, entry: CacheEntry, now: float) -> bool:
        """Whether ``entry`` has outlived its welcome (TTL policies)."""
        return False


class _LruPolicy(EvictionPolicy):
    name = "lru"

    def victim(self, entries: dict[str, CacheEntry]) -> str | None:
        candidates = [(e.last_access, k) for k, e in entries.items() if not e.pinned]
        return min(candidates)[1] if candidates else None


class _LfuPolicy(EvictionPolicy):
    name = "lfu"

    def victim(self, entries: dict[str, CacheEntry]) -> str | None:
        # Ties broken by recency so a cold newcomer outranks a cold elder.
        candidates = [
            (e.hits, e.last_access, k) for k, e in entries.items() if not e.pinned
        ]
        return min(candidates)[2] if candidates else None


class _TtlPolicy(_LruPolicy):
    name = "ttl"

    def __init__(self, ttl: float) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive nominal seconds, got {ttl}")
        self.ttl = ttl

    def expired(self, entry: CacheEntry, now: float) -> bool:
        return now - entry.inserted_at > self.ttl


def make_policy(policy: str, *, ttl: float | None = None) -> EvictionPolicy:
    if policy == "lru":
        return _LruPolicy()
    if policy == "lfu":
        return _LfuPolicy()
    if policy == "ttl":
        if ttl is None:
            raise ValueError("the 'ttl' cache policy needs a cache_ttl")
        return _TtlPolicy(ttl)
    raise ValueError(f"unknown cache policy {policy!r}; pick from {CACHE_POLICIES}")


@dataclass
class CacheStats:
    """Plain-data occupancy snapshot (tests and reports)."""

    entries: int
    bytes_used: int
    bytes_budget: int
    pinned: int
    inserts: int
    evictions: int
    rejected: int
    residents: tuple[str, ...] = field(default_factory=tuple)


class SiteCache:
    """Thread-safe byte-budgeted cache for one (store, site) pair."""

    def __init__(
        self,
        budget_bytes: int,
        *,
        policy: str = "lru",
        max_entries: int | None = None,
        ttl: float | None = None,
        store: str = "",
        site: str = "",
    ) -> None:
        self.budget_bytes = int(budget_bytes)
        self.max_entries = max_entries
        self._policy = make_policy(policy, ttl=ttl)
        self._store = store
        self._site = site
        self._entries: dict[str, CacheEntry] = {}
        self._bytes = 0
        self._inserts = 0
        self._evictions = 0
        self._rejected = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.budget_bytes > 0 and (
            self.max_entries is None or self.max_entries > 0
        )

    # -- internal (all called under self._lock) -----------------------------
    def _drop(self, key: str, reason: str) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes
        self._evictions += 1
        counter_inc(
            "store.evictions", reason=reason, store=self._store, site=self._site
        )

    def _expire(self, now: float) -> None:
        for key in [
            k
            for k, e in self._entries.items()
            if not e.pinned and self._policy.expired(e, now)
        ]:
            self._drop(key, "ttl")

    def _publish_occupancy(self) -> None:
        gauge_set(
            "store.cache_bytes", self._bytes, store=self._store, site=self._site
        )

    # -- cache API ----------------------------------------------------------
    def get(self, key: str) -> tuple[bool, object]:
        now = get_clock().now()
        with self._lock:
            self._expire(now)
            entry = self._entries.get(key)
            if entry is None:
                self._publish_occupancy()
                return False, None
            entry.last_access = now
            entry.hits += 1
            return True, entry.value

    def put(self, key: str, value: object, nbytes: int, *, pin: bool = False) -> bool:
        """Insert ``value`` charging ``nbytes``; returns False when rejected.

        Victims are evicted (reason ``pressure``) until the newcomer fits;
        if the remaining residents are all pinned and the budget still
        cannot absorb it, the insert is rejected and nothing changes.
        """
        if not self.enabled:
            return False
        nbytes = max(int(nbytes), 0)
        now = get_clock().now()
        with self._lock:
            self._expire(now)
            previous = self._entries.get(key)
            if previous is not None:
                # Re-insert: replace in place (budget charged at new size).
                self._bytes -= previous.nbytes
                del self._entries[key]
                pin = pin or previous.pinned
            if nbytes > self.budget_bytes:
                self._rejected += 1
                counter_inc(
                    "store.cache_rejected", store=self._store, site=self._site
                )
                self._publish_occupancy()
                return False
            while self._bytes + nbytes > self.budget_bytes or (
                self.max_entries is not None
                and len(self._entries) >= self.max_entries
            ):
                victim = self._policy.victim(self._entries)
                if victim is None:
                    self._rejected += 1
                    counter_inc(
                        "store.cache_rejected", store=self._store, site=self._site
                    )
                    self._publish_occupancy()
                    return False
                self._drop(victim, "pressure")
            self._entries[key] = CacheEntry(
                value=value,
                nbytes=nbytes,
                inserted_at=now,
                last_access=now,
                pinned=pin,
            )
            self._bytes += nbytes
            self._inserts += 1
            self._publish_occupancy()
            return True

    def evict(self, key: str, reason: str = "explicit") -> bool:
        with self._lock:
            if key not in self._entries:
                return False
            self._drop(key, reason)
            self._publish_occupancy()
            return True

    def pin(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry.pinned = True
            return True

    def unpin(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry.pinned = False
            return True

    def contains(self, key: str) -> bool:
        now = get_clock().now()
        with self._lock:
            self._expire(now)
            return key in self._entries

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                entries=len(self._entries),
                bytes_used=self._bytes,
                bytes_budget=self.budget_bytes,
                pinned=sum(1 for e in self._entries.values() if e.pinned),
                inserts=self._inserts,
                evictions=self._evictions,
                rejected=self._rejected,
                residents=tuple(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteCache(site={self._site!r}, policy={self._policy.name}, "
            f"bytes={self._bytes}/{self.budget_bytes}, entries={len(self)})"
        )
