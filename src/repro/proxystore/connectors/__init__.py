"""ProxyStore backend connectors (redis, shared file system, Globus)."""

from repro.proxystore.connectors.base import Connector
from repro.proxystore.connectors.file import FileConnector
from repro.proxystore.connectors.globus import GlobusConnector
from repro.proxystore.connectors.redis import RedisConnector

__all__ = ["Connector", "FileConnector", "GlobusConnector", "RedisConnector"]
