"""Connector protocol: the pluggable transport under a ProxyStore store.

A connector moves opaque :class:`repro.serialize.Payload` blobs keyed by
string.  Latency/bandwidth charging happens *inside* the connector, on the
calling thread, based on where that thread runs — so a ``get`` from a worker
on the GPU cluster pays different costs than the same ``get`` from the
Thinker's login node, with no cooperation from the caller.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.serialize import Payload

__all__ = ["Connector"]


class Connector(ABC):
    """Abstract payload store."""

    #: Human-readable backend kind ("redis", "file", "globus").
    kind: str = "abstract"

    @abstractmethod
    def put(self, key: str, payload: Payload) -> None:
        """Store ``payload`` under ``key`` (charges the caller's time)."""

    @abstractmethod
    def get(self, key: str, timeout: float | None = None) -> Payload:
        """Fetch the payload for ``key``; may block while data is in flight
        (e.g. a pending wide-area transfer).  Raises
        :class:`repro.exceptions.StoreError` if the key is unknown."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether ``key`` is present (from the caller's vantage point)."""

    @abstractmethod
    def evict(self, key: str) -> None:
        """Best-effort removal of ``key`` everywhere."""

    def put_batch(self, items: dict[str, Payload]) -> None:
        """Store several payloads at once.

        The default is a loop of :meth:`put`; backends with per-operation
        fixed costs (managed transfers, HTTPS submissions) override this to
        *fuse* the batch — the paper's §V-D1 remedy for the per-user
        concurrent-transfer limit.
        """
        for key, payload in items.items():
            self.put(key, payload)

    def get_batch(
        self, keys: "list[str] | tuple[str, ...]", timeout: float | None = None
    ) -> dict[str, Payload]:
        """Fetch several payloads at once (the read-side twin of
        :meth:`put_batch`, used by cache prefetch).

        The default is a loop of :meth:`get`; backends whose reads block on
        per-task waits (managed transfers) override this to wait each
        underlying transfer task once instead of once per key.
        """
        return {key: self.get(key, timeout=timeout) for key in keys}

    def close(self) -> None:
        """Release resources; default no-op."""
