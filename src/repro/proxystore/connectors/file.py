"""Shared-file-system connector.

"The file system backend supports scenarios where separate systems have
access to a shared file system" (§IV-C) — on the paper's testbed that means
the Thinker on a Theta login node exchanging simulation inputs/outputs with
workers on Theta compute nodes via Lustre.  Its signature in Fig. 4: higher
small-object latency than Redis (metadata ops), excellent large-object
throughput (~100 MB), and I/O time that shows up inside "serialization".
"""

from __future__ import annotations

from repro.exceptions import FileSystemError, StoreError
from repro.net.clock import get_clock
from repro.net.context import current_site
from repro.net.fs import FileSystem
from repro.proxystore.connectors.base import Connector
from repro.serialize import Payload

__all__ = ["FileConnector"]


class FileConnector(Connector):
    """Stores payloads as files on one shared volume."""

    kind = "file"

    def __init__(self, volume: FileSystem, directory: str = "proxystore") -> None:
        self._volume = volume
        self._dir = directory.rstrip("/")

    def _check_mounted(self) -> None:
        site = current_site()
        if site is not None and site.fs_group != self._volume.name:
            raise FileSystemError(
                f"site {site.name!r} does not mount volume {self._volume.name!r}; "
                "the file connector only works within one file-system group"
            )

    def _path(self, key: str) -> str:
        return f"{self._dir}/{key}"

    def put(self, key: str, payload: Payload) -> None:
        self._check_mounted()
        self._volume.write(self._path(key), payload.data, payload.nominal_size)

    def get(self, key: str, timeout: float | None = None) -> Payload:
        self._check_mounted()
        clock = get_clock()
        deadline = clock.now() + timeout if timeout is not None else None
        while True:
            try:
                data = self._volume.read(self._path(key))
                nominal = self._volume.size(self._path(key))
                return Payload(data=data, nominal_size=nominal)
            except FileSystemError:
                if deadline is None or clock.now() >= deadline:
                    raise StoreError(
                        f"file connector: no object under key {key!r} on "
                        f"{self._volume.name}"
                    ) from None
                clock.sleep(0.005)

    def exists(self, key: str) -> bool:
        self._check_mounted()
        return self._volume.exists(self._path(key))

    def evict(self, key: str) -> None:
        self._check_mounted()
        self._volume.delete(self._path(key))
