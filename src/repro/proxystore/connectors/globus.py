"""Globus connector: wide-area pass-by-reference with no open ports.

§IV-C / §V-C2: an object ``put`` from site A is written to A's staging
volume and a managed transfer is *immediately* submitted toward every other
configured endpoint — this ahead-of-time movement is what lets later proxy
resolutions overlap transfer latency with computation (the paper's 12 % of
inference proxies resolving in <100 ms).  A ``get`` on site B waits for the
transfer task to complete, then reads the local replica; the wait is the
"time on worker increases with Globus" effect in Fig. 4.
"""

from __future__ import annotations

import threading

from repro.exceptions import FileSystemError, StoreError, TransferError
from repro.net.clock import get_clock
from repro.net.context import current_site
from repro.proxystore.connectors.base import Connector
from repro.serialize import Payload
from repro.transfer.client import TransferClient
from repro.transfer.service import TransferEndpoint

__all__ = ["GlobusConnector"]


class GlobusConnector(Connector):
    """Stores payloads on per-site staging volumes synchronized by the
    managed transfer service.

    Parameters
    ----------
    client:
        Transfer-service SDK handle (carries the user identity that the
        per-user concurrent-transfer limit applies to).
    endpoints:
        ``site name -> TransferEndpoint`` for every site participating in
        the store.  Two entries reproduce the paper's setup (CPU facility +
        GPU facility); more are allowed.
    Use :meth:`put_batch` to fuse many objects into a *single* transfer
    task per destination — the paper's suggested fix for the per-user
    concurrent transfer limit (§V-D1).
    """

    kind = "globus"

    def __init__(
        self,
        client: TransferClient,
        endpoints: dict[str, TransferEndpoint],
        directory: str = "proxystore-globus",
    ) -> None:
        if len(endpoints) < 2:
            raise ValueError("GlobusConnector needs at least two endpoints")
        self._client = client
        self._endpoints = dict(endpoints)
        self._dir = directory.rstrip("/")
        # (key, destination site name) -> transfer task id
        self._pending: dict[tuple[str, str], str] = {}
        self._lock = threading.Lock()

    # -- helpers ------------------------------------------------------------
    def _local_endpoint(self) -> TransferEndpoint:
        site = current_site()
        if site is None:
            # Unpinned callers act from the first configured endpoint.
            return next(iter(self._endpoints.values()))
        try:
            return self._endpoints[site.name]
        except KeyError:
            raise StoreError(
                f"site {site.name!r} has no endpoint in this Globus store"
            ) from None

    def _path(self, key: str) -> str:
        return f"{self._dir}/{key}"

    # -- Connector API ---------------------------------------------------------
    def put(self, key: str, payload: Payload) -> None:
        local = self._local_endpoint()
        path = self._path(key)
        local.volume.write(path, payload.data, payload.nominal_size)
        for site_name, remote in self._endpoints.items():
            if remote.endpoint_id == local.endpoint_id:
                continue
            task_id = self._client.submit(
                local.endpoint_id, remote.endpoint_id, [(path, path)]
            )
            with self._lock:
                self._pending[(key, site_name)] = task_id

    def put_batch(self, items: dict[str, Payload]) -> None:
        """Stage all items, then submit ONE transfer task per destination.

        A batch of N objects costs one HTTPS submission and occupies one
        slot of the per-user concurrent-transfer limit instead of N — the
        §V-D1 fusion optimization.
        """
        if not items:
            return
        local = self._local_endpoint()
        paths = {}
        for key, payload in items.items():
            path = self._path(key)
            local.volume.write(path, payload.data, payload.nominal_size)
            paths[key] = path
        for site_name, remote in self._endpoints.items():
            if remote.endpoint_id == local.endpoint_id:
                continue
            task_id = self._client.submit(
                local.endpoint_id,
                remote.endpoint_id,
                [(path, path) for path in paths.values()],
            )
            with self._lock:
                for key in paths:
                    self._pending[(key, site_name)] = task_id

    def get(self, key: str, timeout: float | None = None) -> Payload:
        local = self._local_endpoint()
        path = self._path(key)
        site_name = local.site.name
        with self._lock:
            task_id = self._pending.get((key, site_name))
        if task_id is not None:
            try:
                self._client.wait(task_id, timeout=timeout)
            except TransferError as exc:
                raise StoreError(f"globus connector: transfer failed: {exc}") from exc
        clock = get_clock()
        deadline = clock.now() + timeout if timeout is not None else None
        while True:
            try:
                data = local.volume.read(path)
                nominal = local.volume.size(path)
                return Payload(data=data, nominal_size=nominal)
            except FileSystemError:
                if deadline is not None and clock.now() >= deadline:
                    raise StoreError(
                        f"globus connector: no object under key {key!r} at "
                        f"{site_name}"
                    ) from None
                if task_id is None and deadline is None:
                    raise StoreError(
                        f"globus connector: no object under key {key!r} at "
                        f"{site_name} and no transfer inbound"
                    ) from None
                clock.sleep(0.01)

    def get_batch(
        self, keys: "list[str] | tuple[str, ...]", timeout: float | None = None
    ) -> dict[str, Payload]:
        """Fetch many keys, waiting each inbound transfer *task* only once.

        Keys staged together by :meth:`put_batch` share one transfer task;
        a prefetch of a whole model-weight batch therefore blocks on one
        managed-transfer wait instead of one per key.
        """
        local = self._local_endpoint()
        site_name = local.site.name
        with self._lock:
            task_ids = {self._pending.get((key, site_name)) for key in keys}
        for task_id in task_ids - {None}:
            try:
                self._client.wait(task_id, timeout=timeout)
            except TransferError as exc:
                raise StoreError(f"globus connector: transfer failed: {exc}") from exc
        return {key: self.get(key, timeout=timeout) for key in keys}

    def exists(self, key: str) -> bool:
        local = self._local_endpoint()
        if local.volume.exists(self._path(key)):
            return True
        with self._lock:
            return any(k == key for k, _ in self._pending)

    def evict(self, key: str) -> None:
        path = self._path(key)
        for endpoint in self._endpoints.values():
            endpoint.volume.delete(path)
        with self._lock:
            for pair in [p for p in self._pending if p[0] == key]:
                del self._pending[pair]

    def transfer_task_ids(self, key: str) -> dict[str, str]:
        """Destination site -> transfer task id for a key (introspection)."""
        with self._lock:
            return {site: tid for (k, site), tid in self._pending.items() if k == key}
