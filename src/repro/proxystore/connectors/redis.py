"""Redis connector: low-latency object store for port-connected resources.

The paper's guidance (§V-F): "If messages are smaller than 100 MB and direct
connection between resources is feasible, Redis is ideal."  The cost of that
feasibility — an extra open port or tunnel per resource pair — is enforced
by :class:`repro.net.kvstore.KVClient`'s connection policy.
"""

from __future__ import annotations

from repro.exceptions import StoreError
from repro.net.clock import get_clock
from repro.net.context import current_site
from repro.net.kvstore import KVClient, KVServer
from repro.net.topology import Network
from repro.proxystore.connectors.base import Connector
from repro.serialize import Payload

__all__ = ["RedisConnector"]


class RedisConnector(Connector):
    """Stores payloads in a (simulated) Redis server.

    Each calling thread gets its own logical client so that latency is
    always computed from the *calling* site; clients are cached per site.
    ``via_tunnel`` mirrors the deployment step the paper's Parsl+Redis
    baseline needed to reach Redis across facility firewalls.
    """

    kind = "redis"

    def __init__(
        self,
        server: KVServer,
        network: Network,
        *,
        via_tunnel: bool = False,
        key_prefix: str = "ps",
    ) -> None:
        self._server = server
        self._network = network
        self._tunnel = via_tunnel
        self._prefix = key_prefix
        self._clients: dict[str, KVClient] = {}

    def _client(self) -> KVClient:
        site = current_site() or self._server.site
        client = self._clients.get(site.name)
        if client is None:
            client = KVClient(
                self._server, self._network, site=site, via_tunnel=self._tunnel
            )
            self._clients[site.name] = client
        return client

    def _key(self, key: str) -> str:
        return f"{self._prefix}:{key}"

    def put(self, key: str, payload: Payload) -> None:
        self._client().set(self._key(key), payload)

    def get(self, key: str, timeout: float | None = None) -> Payload:
        deadline = None
        clock = get_clock()
        if timeout is not None:
            deadline = clock.now() + timeout
        while True:
            value = self._client().get(self._key(key))
            if value is not None:
                assert isinstance(value, Payload)
                return value
            if deadline is None or clock.now() >= deadline:
                raise StoreError(f"redis connector: no object under key {key!r}")
            clock.sleep(0.005)

    def exists(self, key: str) -> bool:
        return self._client().exists(self._key(key))

    def evict(self, key: str) -> None:
        self._client().delete(self._key(key))
