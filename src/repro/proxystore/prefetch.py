"""Ahead-of-time prefetch hints: warm a site's proxy cache before workers land.

The paper's sub-100 ms proxy resolutions come from model weights reaching a
site *once*, ahead of the inference wave that uses them.  A
:class:`PrefetchHint` names the store keys a batch of tasks is about to
touch; it rides the task envelope (``Result.prefetch``) through the task
server and compute fabric, and whichever agent fronts the target resource
(FaaS endpoint, HTEX interchange, local pool) fires
:func:`apply_prefetch_hints` so the site cache is warming while the task is
still in flight.  Hints are advisory: an unknown store or a failed warm
never fails the task — it only shows up in the ``store.prefetch_errors``
counter.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.observe import counter_inc

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Site

__all__ = ["PrefetchHint", "hints_for_proxies", "apply_prefetch_hints"]


@dataclass(frozen=True)
class PrefetchHint:
    """Keys of one store that upcoming tasks will resolve.

    ``pin=True`` marks the objects as pressure-immune once cached (model
    weights shared by a whole inference fan-out); one-shot inputs should
    leave it False so they age out normally.
    """

    store_name: str
    keys: tuple[str, ...]
    pin: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))


def hints_for_proxies(
    proxies: Iterable[object], *, pin: bool = False
) -> tuple[PrefetchHint, ...]:
    """Build hints for every store-backed proxy in ``proxies``.

    Non-proxies and proxies whose factory does not reference a registered
    store (e.g. :class:`~repro.proxystore.proxy.SimpleFactory`) are skipped,
    so callers can pass their raw argument list.
    """
    from repro.proxystore.proxy import is_proxy

    keys_by_store: dict[str, list[str]] = {}
    for obj in proxies:
        if not is_proxy(obj):
            continue
        factory = object.__getattribute__(obj, "__proxy_factory__")
        store_name = getattr(factory, "store_name", None)
        key = getattr(factory, "key", None)
        if store_name is None or key is None:
            continue
        bucket = keys_by_store.setdefault(store_name, [])
        if key not in bucket:
            bucket.append(key)
    return tuple(
        PrefetchHint(store_name, tuple(keys), pin=pin)
        for store_name, keys in keys_by_store.items()
    )


def normalize_hints(
    prefetch: "PrefetchHint | Sequence[PrefetchHint] | None",
) -> tuple[PrefetchHint, ...]:
    """Accept one hint, a sequence, or None; return a tuple."""
    if prefetch is None:
        return ()
    if isinstance(prefetch, PrefetchHint):
        return (prefetch,)
    return tuple(prefetch)


def apply_prefetch_hints(
    hints: Sequence[PrefetchHint] | None,
    site: "Site | str | None",
    *,
    via: str = "unknown",
) -> int:
    """Fire asynchronous cache warms for ``hints`` at ``site``.

    Returns the number of hints dispatched.  Never raises: the warm is an
    optimization layered on a correct cold path, so an unknown store (the
    hint outlived the campaign) or a closed connector only increments
    ``store.prefetch_errors``.
    """
    if not hints:
        return 0
    from repro.proxystore.store import get_store

    fired = 0
    for hint in hints:
        try:
            store = get_store(hint.store_name)
            store.prefetch(hint.keys, site=site, pin=hint.pin)
        except Exception:  # noqa: BLE001 - advisory path, never fatal
            counter_inc("store.prefetch_errors", store=hint.store_name, via=via)
            continue
        fired += 1
        counter_inc("store.prefetch_hints_applied", store=hint.store_name, via=via)
    return fired
