"""Transparent, lazy object proxies.

A :class:`Proxy` wraps a :class:`Factory`.  The first time the proxy is
*used* — any attribute access, operator, call, iteration, ... — it invokes
the factory, caches the returned *target*, and from then on forwards
everything to it.  Because ``__class__`` reports the target's class, code
receiving a proxy cannot tell the difference (``isinstance`` passes), which
is exactly the property the paper relies on: task code needs **zero**
changes to move from pass-by-value to pass-by-reference.

The proxy pickles to its factory alone, so a multi-megabyte array travels
between the Thinker, Task Server, FuncX cloud, endpoint, and worker as a
few-hundred-byte reference, and the data moves exactly once — directly from
the store to the worker that first touches it.

Implementation notes: special methods are looked up on the *type* by the
interpreter, so transparency requires explicitly defining every dunder we
want forwarded; ``__getattr__`` alone only covers ordinary attributes.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from repro.exceptions import ProxyResolutionError
from repro.net.clock import get_clock

__all__ = [
    "Factory",
    "SimpleFactory",
    "Proxy",
    "is_proxy",
    "is_resolved",
    "resolve",
    "extract",
    "resolve_seconds",
]

_SLOTS = (
    "__proxy_factory__",
    "__proxy_target__",
    "__proxy_resolved__",
    "__proxy_resolve_seconds__",
)


class Factory:
    """Callable that produces a proxy's target on demand.

    Subclasses must be pickleable: the factory is the only thing that
    travels with the proxy reference.
    """

    def resolve(self) -> Any:
        raise NotImplementedError

    def __call__(self) -> Any:
        return self.resolve()


class SimpleFactory(Factory):
    """Holds its target directly; useful for tests and local hand-offs."""

    def __init__(self, obj: Any) -> None:
        self.obj = obj

    def resolve(self) -> Any:
        return self.obj


def _resolve(proxy: "Proxy") -> Any:
    """Resolve (once) and return the target of ``proxy``."""
    if object.__getattribute__(proxy, "__proxy_resolved__"):
        return object.__getattribute__(proxy, "__proxy_target__")
    factory = object.__getattribute__(proxy, "__proxy_factory__")
    clock = get_clock()
    start = clock.now()
    try:
        target = factory()
    except Exception as exc:
        raise ProxyResolutionError(
            f"factory {type(factory).__name__} failed to resolve: {exc}"
        ) from exc
    object.__setattr__(proxy, "__proxy_target__", target)
    object.__setattr__(proxy, "__proxy_resolved__", True)
    object.__setattr__(proxy, "__proxy_resolve_seconds__", clock.now() - start)
    return target


def _unwrap(value: Any) -> Any:
    """If ``value`` is a proxy, return its resolved target (for operators)."""
    if type(value) is Proxy:
        return _resolve(value)
    return value


def _binary(op: Callable[[Any, Any], Any]):
    def forward(self: "Proxy", other: Any) -> Any:
        return op(_resolve(self), _unwrap(other))

    return forward


def _rbinary(op: Callable[[Any, Any], Any]):
    def forward(self: "Proxy", other: Any) -> Any:
        return op(_unwrap(other), _resolve(self))

    return forward


def _unary(op: Callable[[Any], Any]):
    def forward(self: "Proxy") -> Any:
        return op(_resolve(self))

    return forward


class Proxy:
    """A transparent lazy reference to a factory-resolvable target."""

    __slots__ = _SLOTS

    # Nominal wire size of a pickled proxy reference; used by the
    # proxy-threshold scan so references never look "large".
    REFERENCE_SIZE = 256

    def __init__(self, factory: Factory) -> None:
        if not callable(factory):
            raise TypeError("Proxy requires a callable factory")
        object.__setattr__(self, "__proxy_factory__", factory)
        object.__setattr__(self, "__proxy_target__", None)
        object.__setattr__(self, "__proxy_resolved__", False)
        object.__setattr__(self, "__proxy_resolve_seconds__", None)

    # -- pickling: the reference travels, never the target -----------------
    def __reduce__(self):
        return (Proxy, (object.__getattribute__(self, "__proxy_factory__"),))

    def __reduce_ex__(self, protocol):
        return self.__reduce__()

    # -- attribute protocol -------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        return getattr(_resolve(self), name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _SLOTS:
            object.__setattr__(self, name, value)
        else:
            setattr(_resolve(self), name, value)

    def __delattr__(self, name: str) -> None:
        delattr(_resolve(self), name)

    def __dir__(self):
        return dir(_resolve(self))

    # Transparency: report the target's class (type(p) still says Proxy).
    @property  # type: ignore[misc]
    def __class__(self):  # noqa: D105
        return type(_resolve(self))

    @__class__.setter
    def __class__(self, value):  # pragma: no cover - symmetry only
        _resolve(self).__class__ = value

    # -- object protocol -----------------------------------------------------
    def __repr__(self) -> str:
        if object.__getattribute__(self, "__proxy_resolved__"):
            return repr(_resolve(self))
        factory = object.__getattribute__(self, "__proxy_factory__")
        return f"<Proxy unresolved factory={type(factory).__name__}>"

    __str__ = _unary(str)
    __bytes__ = _unary(bytes)
    __bool__ = _unary(bool)
    __hash__ = _unary(hash)
    __len__ = _unary(len)
    __iter__ = _unary(iter)
    __reversed__ = _unary(reversed)
    __abs__ = _unary(operator.abs)
    __neg__ = _unary(operator.neg)
    __pos__ = _unary(operator.pos)
    __invert__ = _unary(operator.invert)
    __int__ = _unary(int)
    __float__ = _unary(float)
    __complex__ = _unary(complex)
    __index__ = _unary(operator.index)

    def __next__(self):
        return next(_resolve(self))

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return _resolve(self)(*args, **kwargs)

    def __contains__(self, item: Any) -> bool:
        return _unwrap(item) in _resolve(self)

    def __getitem__(self, key: Any) -> Any:
        return _resolve(self)[_unwrap(key)]

    def __setitem__(self, key: Any, value: Any) -> None:
        _resolve(self)[_unwrap(key)] = value

    def __delitem__(self, key: Any) -> None:
        del _resolve(self)[_unwrap(key)]

    def __enter__(self):
        return _resolve(self).__enter__()

    def __exit__(self, *exc):
        return _resolve(self).__exit__(*exc)

    # -- comparisons --------------------------------------------------------
    __eq__ = _binary(operator.eq)
    __ne__ = _binary(operator.ne)
    __lt__ = _binary(operator.lt)
    __le__ = _binary(operator.le)
    __gt__ = _binary(operator.gt)
    __ge__ = _binary(operator.ge)

    # -- numeric operators -----------------------------------------------------
    __add__ = _binary(operator.add)
    __radd__ = _rbinary(operator.add)
    __sub__ = _binary(operator.sub)
    __rsub__ = _rbinary(operator.sub)
    __mul__ = _binary(operator.mul)
    __rmul__ = _rbinary(operator.mul)
    __truediv__ = _binary(operator.truediv)
    __rtruediv__ = _rbinary(operator.truediv)
    __floordiv__ = _binary(operator.floordiv)
    __rfloordiv__ = _rbinary(operator.floordiv)
    __mod__ = _binary(operator.mod)
    __rmod__ = _rbinary(operator.mod)
    __pow__ = _binary(operator.pow)
    __rpow__ = _rbinary(operator.pow)
    __matmul__ = _binary(operator.matmul)
    __rmatmul__ = _rbinary(operator.matmul)
    __lshift__ = _binary(operator.lshift)
    __rlshift__ = _rbinary(operator.lshift)
    __rshift__ = _binary(operator.rshift)
    __rrshift__ = _rbinary(operator.rshift)
    __and__ = _binary(operator.and_)
    __rand__ = _rbinary(operator.and_)
    __or__ = _binary(operator.or_)
    __ror__ = _rbinary(operator.or_)
    __xor__ = _binary(operator.xor)
    __rxor__ = _rbinary(operator.xor)
    __divmod__ = _binary(divmod)
    __rdivmod__ = _rbinary(divmod)


def is_proxy(obj: Any) -> bool:
    """True when ``obj`` is literally a :class:`Proxy` (not fooled by the
    ``__class__`` masquerade, because it checks ``type``)."""
    return type(obj) is Proxy


def is_resolved(proxy: Proxy) -> bool:
    """Has the proxy already materialized its target?"""
    if not is_proxy(proxy):
        raise TypeError("is_resolved expects a Proxy")
    return object.__getattribute__(proxy, "__proxy_resolved__")


def resolve(proxy: Proxy) -> None:
    """Eagerly resolve a proxy (no-op on non-proxies)."""
    if is_proxy(proxy):
        _resolve(proxy)


def extract(obj: Any) -> Any:
    """Return the target behind ``obj`` if it is a proxy, else ``obj``."""
    if is_proxy(obj):
        return _resolve(obj)
    return obj


def resolve_seconds(proxy: Proxy) -> float | None:
    """Nominal seconds the proxy's resolution took (``None`` if unresolved,
    ``0.0``-ish if resolution was a cache hit)."""
    if not is_proxy(proxy):
        raise TypeError("resolve_seconds expects a Proxy")
    return object.__getattribute__(proxy, "__proxy_resolve_seconds__")
