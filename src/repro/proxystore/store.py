"""The ProxyStore ``Store``: serialize, place, proxy, prefetch, resolve, cache.

``Store.proxy(obj)`` is the one-line pass-by-reference primitive from the
paper: the object is serialized (charged), placed in the backend connector
(charged), and a transparent :class:`~repro.proxystore.proxy.Proxy` wrapping
a :class:`StoreFactory` is returned.  The factory carries only the store
name and key, so it pickles to a couple hundred bytes; on resolution it
looks the store up in the process-global registry — the stand-in for how
real ProxyStore re-instantiates stores from serialized config on remote
workers.

The read path is a real data plane, not just a lazy fetch:

* a byte-budgeted, policy-driven :class:`~repro.proxystore.cache.SiteCache`
  per site (LRU/LFU/TTL, pinned entries for model weights) sits in front of
  the connector;
* :meth:`Store.prefetch` warms a *remote* site's cache ahead of the tasks
  that will resolve there (driven by
  :class:`~repro.proxystore.prefetch.PrefetchHint` riding task envelopes),
  so the first resolve on a hinted site is a cache hit — the mechanism
  behind the paper's sub-100 ms proxy resolutions;
* concurrent misses on one ``(site, key)`` coalesce onto a single connector
  fetch (single-flight), so an N-worker inference fan-out landing on a cold
  site pays one wire transfer instead of N.
"""

from __future__ import annotations

import threading
import uuid
from collections import deque

from repro.bench.recording import emit
from repro.chaos.plan import chaos_check
from repro.chaos.policy import RetryPolicy
from repro.exceptions import RetryExhaustedError, StoreError
from repro.net.clock import get_clock
from repro.net.context import SiteThread, current_site
from repro.net.topology import Site
from repro.observe import counter_inc, observe, trace_span
from repro.proxystore.cache import CacheStats, SiteCache
from repro.proxystore.connectors.base import Connector
from repro.proxystore.proxy import Factory, Proxy
from repro.serialize import (
    Payload,
    deserialize,
    deserialize_cost,
    serialize,
    serialize_cost,
)

__all__ = [
    "Store",
    "StoreFactory",
    "StoreMetrics",
    "PrefetchHandle",
    "register_store",
    "unregister_store",
    "get_store",
    "clear_store_registry",
]

#: Default per-site cache budget (nominal bytes).  Large enough for a few
#: model-weight generations; small enough that a long campaign's one-shot
#: inference inputs are forced through the eviction policy.
DEFAULT_CACHE_BYTES = 256_000_000

_registry: dict[str, "Store"] = {}
_registry_lock = threading.Lock()


def register_store(store: "Store", *, exist_ok: bool = False) -> "Store":
    """Publish a store under its name for factory lookups."""
    with _registry_lock:
        if store.name in _registry and not exist_ok:
            raise StoreError(f"a store named {store.name!r} is already registered")
        _registry[store.name] = store
    return store


def unregister_store(name: str) -> None:
    with _registry_lock:
        _registry.pop(name, None)


def get_store(name: str) -> "Store":
    with _registry_lock:
        try:
            return _registry[name]
        except KeyError:
            raise StoreError(f"no registered store named {name!r}") from None


def clear_store_registry() -> None:
    """Remove every registered store (test isolation)."""
    with _registry_lock:
        _registry.clear()


#: Per-operation timing samples kept for medians; totals are exact counts.
_RESERVOIR_SIZE = 512


class StoreMetrics:
    """Aggregated per-operation timings, in nominal seconds.

    Totals (operation and byte counts, hit/miss/coalesce counters) are
    exact; the per-sample lists backing the medians are bounded reservoirs
    of the most recent :data:`_RESERVOIR_SIZE` operations, so a
    campaign-length run holds a constant amount of memory instead of one
    float per task ever executed.
    """

    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.put_bytes_total = 0
        self.get_bytes_total = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Misses served by another thread's in-flight fetch (single-flight).
        self.coalesced = 0
        self._put_times: deque[float] = deque(maxlen=_RESERVOIR_SIZE)
        self._get_times: deque[float] = deque(maxlen=_RESERVOIR_SIZE)
        self._put_bytes: deque[int] = deque(maxlen=_RESERVOIR_SIZE)
        self._get_bytes: deque[int] = deque(maxlen=_RESERVOIR_SIZE)
        self._lock = threading.Lock()

    # Recent-window views, kept for compatibility with readers that want
    # raw samples (plots, percentile checks).
    @property
    def put_times(self) -> list[float]:
        with self._lock:
            return list(self._put_times)

    @property
    def get_times(self) -> list[float]:
        with self._lock:
            return list(self._get_times)

    @property
    def put_bytes(self) -> list[int]:
        with self._lock:
            return list(self._put_bytes)

    @property
    def get_bytes(self) -> list[int]:
        with self._lock:
            return list(self._get_bytes)

    def record_put(self, seconds: float, nbytes: int) -> None:
        with self._lock:
            self.puts += 1
            self.put_bytes_total += nbytes
            self._put_times.append(seconds)
            self._put_bytes.append(nbytes)

    def record_get(
        self, seconds: float, nbytes: int, cache_hit: bool, *, coalesced: bool = False
    ) -> None:
        with self._lock:
            self.gets += 1
            self.get_bytes_total += nbytes
            self._get_times.append(seconds)
            self._get_bytes.append(nbytes)
            if coalesced:
                self.coalesced += 1
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def summary(self) -> dict[str, float]:
        import statistics

        with self._lock:
            put_times = list(self._put_times)
            get_times = list(self._get_times)
            return {
                "puts": self.puts,
                "gets": self.gets,
                "put_median_s": statistics.median(put_times) if put_times else 0.0,
                "get_median_s": statistics.median(get_times) if get_times else 0.0,
                "cache_hit_rate": (
                    self.cache_hits / (self.cache_hits + self.cache_misses)
                    if (self.cache_hits + self.cache_misses)
                    else 0.0
                ),
                "coalesced": self.coalesced,
            }


class _Flight:
    """One in-flight connector fetch that concurrent misses latch onto."""

    __slots__ = ("event", "value", "nbytes", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.nbytes = 0
        self.error: BaseException | None = None


class PrefetchHandle:
    """Progress/completion handle for one :meth:`Store.prefetch` call."""

    def __init__(self, requested: int) -> None:
        self.requested = requested
        self.fetched = 0
        self.skipped = 0
        self.errors = 0
        self._event = threading.Event()
        if requested == 0:
            self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the warm finishes (``timeout`` in nominal seconds)."""
        return self._event.wait(get_clock().wall_timeout(timeout))


class StoreFactory(Factory):
    """Resolves ``key`` from the registered store named ``store_name``."""

    def __init__(self, store_name: str, key: str, *, evict: bool = False) -> None:
        self.store_name = store_name
        self.key = key
        self.evict = evict

    def resolve(self) -> object:
        store = get_store(self.store_name)
        obj = store.get(self.key)
        if self.evict:
            # Once per campaign: the first resolver drops the backend copy;
            # replicas already cached at resolving sites stay usable.
            store.release(self.key)
        return obj

    def __repr__(self) -> str:
        return f"StoreFactory(store={self.store_name!r}, key={self.key!r})"


class Store:
    """A named object store over a :class:`Connector`.

    Parameters
    ----------
    name:
        Registry name; factories embed it, so it must be stable across the
        whole campaign.
    connector:
        Backend transport.
    cache_size:
        Per-site cache entry limit (0 disables caching entirely).
    cache_bytes:
        Per-site cache byte budget; occupancy never exceeds it (0 disables
        caching entirely).
    cache_policy:
        Victim order under pressure: ``"lru"`` (default), ``"lfu"``, or
        ``"ttl"`` (requires ``cache_ttl``).
    cache_ttl:
        Entry lifetime in nominal seconds for the ``"ttl"`` policy.
    register:
        Register into the global registry immediately (required for
        proxies to be resolvable elsewhere).
    retry_policy:
        When set, reads that raise :class:`StoreError` (evicted key,
        backend blip, injected corruption) are retried with backoff before
        giving up with :class:`RetryExhaustedError`.
    """

    def __init__(
        self,
        name: str,
        connector: Connector,
        *,
        cache_size: int = 16,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        cache_policy: str = "lru",
        cache_ttl: float | None = None,
        register: bool = True,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.name = name
        self.connector = connector
        self.metrics = StoreMetrics()
        self._cache_size = cache_size
        self._cache_bytes = cache_bytes if cache_size > 0 else 0
        self._cache_policy = cache_policy
        self._cache_ttl = cache_ttl
        self._caches: dict[str, SiteCache] = {}
        self._caches_lock = threading.Lock()
        self._retry_policy = retry_policy
        # Single-flight bookkeeping: (site, key) -> in-flight fetch.
        self._inflight: dict[tuple[str, str], _Flight] = {}
        self._inflight_lock = threading.Lock()
        # Keys whose backend copy was dropped by an evict-after-resolve
        # factory; a later backend miss on one of these gets a targeted
        # error instead of a retry storm.
        self._released: set[str] = set()
        self._released_lock = threading.Lock()
        if register:
            register_store(self)

    # -- caching -------------------------------------------------------------
    @staticmethod
    def _site_name(site: Site | str | None) -> str:
        if site is None:
            pinned = current_site()
            return pinned.name if pinned is not None else "__unpinned__"
        if isinstance(site, str):
            return site
        return site.name

    def _cache(self, site: Site | str | None = None) -> SiteCache:
        key = self._site_name(site)
        with self._caches_lock:
            cache = self._caches.get(key)
            if cache is None:
                cache = SiteCache(
                    self._cache_bytes,
                    policy=self._cache_policy,
                    max_entries=self._cache_size if self._cache_size > 0 else 0,
                    ttl=self._cache_ttl,
                    store=self.name,
                    site=key,
                )
                self._caches[key] = cache
            return cache

    def cache_stats(self, site: Site | str | None = None) -> CacheStats:
        """Occupancy snapshot of one site's cache (tests, reports)."""
        return self._cache(site).stats()

    def pin(self, key: str, site: Site | str | None = None) -> bool:
        """Mark a cached entry pressure-immune; False if not resident."""
        return self._cache(site).pin(key)

    def unpin(self, key: str, site: Site | str | None = None) -> bool:
        return self._cache(site).unpin(key)

    # -- core API --------------------------------------------------------------
    def put(self, obj: object, key: str | None = None) -> str:
        """Serialize and store ``obj``; returns the key."""
        clock = get_clock()
        start = clock.now()
        key = key or uuid.uuid4().hex
        site = self._site_name(None)
        with trace_span("proxy.put", store=self.name, site=site):
            payload = serialize(obj)
            clock.sleep(serialize_cost(payload.nominal_size))
            self.connector.put(key, payload)
        took = clock.now() - start
        self.metrics.record_put(took, payload.nominal_size)
        observe("store.put_s", took, store=self.name, site=site)
        counter_inc("store.puts", store=self.name, site=site)
        return key

    def put_batch(self, objs: list[object], keys: list[str] | None = None) -> list[str]:
        """Serialize and store many objects through one fused backend call.

        On backends with per-operation fixed costs (Globus: an HTTPS
        submission and a concurrency-limit slot per transfer task), fusing
        a batch is markedly cheaper than N separate puts (§V-D1).
        """
        clock = get_clock()
        start = clock.now()
        if keys is None:
            keys = [uuid.uuid4().hex for _ in objs]
        if len(keys) != len(objs):
            raise StoreError("put_batch needs one key per object")
        site = self._site_name(None)
        with trace_span("proxy.put", store=self.name, site=site, batch=len(objs)):
            items: dict[str, Payload] = {}
            total = 0
            for key, obj in zip(keys, objs):
                payload = serialize(obj)
                total += payload.nominal_size
                items[key] = payload
            clock.sleep(serialize_cost(total))
            self.connector.put_batch(items)
        took = clock.now() - start
        self.metrics.record_put(took, total)
        observe("store.put_s", took, store=self.name, site=site)
        counter_inc("store.puts", n=max(len(objs), 1), store=self.name, site=site)
        return keys

    def proxy_batch(self, objs: list[object], *, evict: bool = False) -> list[Proxy]:
        """Place many objects at once; returns one lazy reference each."""
        keys = self.put_batch(objs)
        return [Proxy(StoreFactory(self.name, key, evict=evict)) for key in keys]

    def get(self, key: str, timeout: float | None = None) -> object:
        """Fetch and deserialize the object under ``key``.

        Cache-aware and single-flight: a hit returns the site-resident
        replica; concurrent misses on the same ``(site, key)`` share one
        connector fetch, with the waiters charged the leader's wire time
        but the wire itself paid once.
        """
        clock = get_clock()
        start = clock.now()
        site = self._site_name(None)
        cache = self._cache(site)
        while True:
            hit, cached = cache.get(key)
            if hit:
                took = clock.now() - start
                self.metrics.record_get(took, 0, cache_hit=True)
                counter_inc("store.cache_hits", store=self.name, site=site)
                observe("store.get_s", took, store=self.name, site=site)
                return cached
            flight, leader = self._join_flight(site, key)
            if leader:
                break
            try:
                obj = self._await_flight(flight, key)
            except StoreError:
                # The in-flight fetch we latched onto (possibly an advisory
                # prefetch) failed; fall back to our own fetch — it carries
                # the retry policy, so a resolve never inherits a warm-path
                # failure it could have survived alone.
                counter_inc("store.singleflight_fallbacks", store=self.name, site=site)
                continue
            took = clock.now() - start
            self.metrics.record_get(took, 0, cache_hit=True, coalesced=True)
            counter_inc("store.cache_hits", store=self.name, site=site)
            counter_inc("store.singleflight_coalesced", store=self.name, site=site)
            observe("store.get_s", took, store=self.name, site=site)
            return obj
        try:
            with trace_span("proxy.resolve", store=self.name, cache_hit=False):
                obj, payload = self._fetch_remote(key, timeout)
            flight.value = obj
            flight.nbytes = payload.nominal_size
            # Publish to the cache *before* retiring the flight: a miss that
            # lands in between would otherwise find neither the replica nor
            # an in-flight fetch and start a redundant second transfer.
            cache.put(key, obj, payload.nominal_size)
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            self._leave_flight(site, key, flight)
        took = clock.now() - start
        self.metrics.record_get(took, payload.nominal_size, cache_hit=False)
        counter_inc("store.cache_misses", store=self.name, site=site)
        observe("store.get_s", took, store=self.name, site=site)
        emit(
            "data_transfer",
            resource=site,
            bytes=payload.nominal_size,
            via=f"store:{self.connector.kind}",
        )
        return obj

    # -- single-flight plumbing ----------------------------------------------
    def _join_flight(self, site: str, key: str) -> tuple[_Flight, bool]:
        with self._inflight_lock:
            flight = self._inflight.get((site, key))
            if flight is not None:
                return flight, False
            flight = _Flight()
            self._inflight[(site, key)] = flight
            return flight, True

    def _leave_flight(self, site: str, key: str, flight: _Flight) -> None:
        with self._inflight_lock:
            self._inflight.pop((site, key), None)
        flight.event.set()

    def _await_flight(self, flight: _Flight, key: str) -> object:
        # The leader pays the (virtual) wire time on its own thread; this
        # wait spans the same wall interval, so the waiter's measured
        # latency matches without a second transfer being charged.
        flight.event.wait()
        if flight.error is not None:
            raise StoreError(
                f"coalesced read of {key!r} from store {self.name!r} failed "
                f"with the leading fetch: {flight.error}"
            ) from flight.error
        return flight.value

    def _fetch_remote(self, key: str, timeout: float | None) -> tuple[object, Payload]:
        """The connector fetch + retry loop (exactly one caller per site/key
        at a time, thanks to single-flight)."""
        clock = get_clock()
        policy = self._retry_policy
        chaos_key = f"{self.name}:{key}"
        attempt = 0
        while True:
            try:
                payload = self.connector.get(key, timeout=timeout)
                spec = chaos_check("store.get", chaos_key, attempt=attempt)
                if spec is not None:
                    if spec.delay:
                        clock.sleep(spec.delay)
                    raise StoreError(
                        f"injected fault {spec.mode!r}: read of {key!r} "
                        f"from store {self.name!r} returned corrupt bytes"
                    )
                clock.sleep(deserialize_cost(payload.nominal_size))
                return deserialize(payload), payload
            except StoreError as exc:
                with self._released_lock:
                    released = key in self._released
                if released:
                    raise StoreError(
                        f"key {key!r} in store {self.name!r} was released by an "
                        "evict-after-resolve proxy (evict=True); only sites that "
                        "cached it before the release can still resolve it. Use "
                        "evict=False for objects resolved more than once."
                    ) from exc
                if policy is None:
                    raise
                if not policy.retries_left(attempt):
                    raise RetryExhaustedError(
                        f"store {self.name!r} read of {key!r} failed after "
                        f"{attempt + 1} attempts: {exc}",
                        attempts=attempt + 1,
                        last_error=str(exc),
                    ) from exc
                counter_inc("store.retries", store=self.name)
                clock.sleep(policy.delay_for(attempt, key=chaos_key))
                attempt += 1

    # -- prefetch --------------------------------------------------------------
    def prefetch(
        self,
        keys: "list[str] | tuple[str, ...]",
        *,
        site: Site | None = None,
        pin: bool = False,
        wait: bool = False,
        timeout: float | None = None,
    ) -> PrefetchHandle:
        """Warm ``site``'s cache with ``keys`` ahead of the tasks that will
        resolve them there.

        Runs asynchronously on a thread pinned to ``site`` (default: the
        calling thread's site), so the fetch pays that site's network
        costs — exactly what the resolving worker would have paid, but
        overlapped with task dispatch instead of serialized in front of
        compute.  Fetches go through the same single-flight path as
        :meth:`get`: a worker touching the proxy mid-warm latches onto the
        prefetch transfer instead of starting its own.

        ``pin=True`` marks the entries pressure-immune (model weights).
        ``wait=True`` blocks until the warm completes (``timeout`` nominal
        seconds); otherwise use the returned handle.
        """
        target = site if site is not None else current_site()
        site_name = self._site_name(target)
        keys = tuple(keys)
        handle = PrefetchHandle(len(keys))
        if not keys:
            return handle
        cache = self._cache(site_name)

        def warm() -> None:
            try:
                leaders: list[tuple[str, _Flight]] = []
                waiters: list[tuple[str, _Flight]] = []
                for key in keys:
                    if cache.contains(key):
                        if pin:
                            cache.pin(key)
                        handle.skipped += 1
                        counter_inc(
                            "store.prefetch_skipped", store=self.name, site=site_name
                        )
                        continue
                    flight, leader = self._join_flight(site_name, key)
                    (leaders if leader else waiters).append((key, flight))
                if leaders:
                    self._warm_leaders(cache, site_name, leaders, pin, timeout, handle)
                for key, flight in waiters:
                    # A resolve (or another warm) is already pulling this
                    # key; the cache insert is its job.
                    try:
                        self._await_flight(flight, key)
                    except Exception:  # noqa: BLE001 - advisory path
                        handle.errors += 1
                        counter_inc(
                            "store.prefetch_errors", store=self.name, site=site_name
                        )
                        continue
                    if pin:
                        cache.pin(key)
                    handle.skipped += 1
            finally:
                handle._event.set()

        if isinstance(target, Site):
            thread: threading.Thread = SiteThread(
                target, target=warm, name=f"prefetch-{self.name}"
            )
        else:
            thread = threading.Thread(
                target=warm, name=f"prefetch-{self.name}", daemon=True
            )
        thread.start()
        if wait:
            handle.wait(timeout)
        return handle

    def _warm_leaders(
        self,
        cache: SiteCache,
        site: str,
        leaders: list[tuple[str, "_Flight"]],
        pin: bool,
        timeout: float | None,
        handle: PrefetchHandle,
    ) -> None:
        """Fetch every leader key in one fused connector call and publish
        the results to cache + coalesced waiters."""
        clock = get_clock()
        start = clock.now()
        keys = [key for key, _ in leaders]
        try:
            with trace_span(
                "proxy.prefetch", store=self.name, site=site, batch=len(keys)
            ):
                payloads = self.connector.get_batch(keys, timeout=timeout)
                objs: dict[str, tuple[object, int]] = {}
                for key in keys:
                    payload = payloads[key]
                    clock.sleep(deserialize_cost(payload.nominal_size))
                    objs[key] = (deserialize(payload), payload.nominal_size)
        except BaseException as exc:  # noqa: BLE001 - propagate via flights
            for key, flight in leaders:
                flight.error = exc
                self._leave_flight(site, key, flight)
            handle.errors += len(keys)
            counter_inc(
                "store.prefetch_errors", n=len(keys), store=self.name, site=site
            )
            return
        total = 0
        for key, flight in leaders:
            obj, nbytes = objs[key]
            flight.value = obj
            flight.nbytes = nbytes
            # Cache first, then retire the flight (same ordering as
            # :meth:`Store.get`): a resolve racing the warm must find one
            # of the two, or it would pay a redundant transfer.
            cache.put(key, obj, nbytes, pin=pin)
            self._leave_flight(site, key, flight)
            total += nbytes
            handle.fetched += 1
            counter_inc("store.prefetched", store=self.name, site=site)
        observe("store.prefetch_s", clock.now() - start, store=self.name, site=site)
        emit(
            "data_transfer",
            resource=site,
            bytes=total,
            via=f"store:{self.connector.kind}",
        )

    # -- eviction --------------------------------------------------------------
    def exists(self, key: str) -> bool:
        return self.connector.exists(key)

    def evict(self, key: str) -> None:
        """Drop ``key`` everywhere: backend and every site cache."""
        self.connector.evict(key)
        with self._caches_lock:
            caches = list(self._caches.values())
        for cache in caches:
            cache.evict(key, reason="explicit")

    def release(self, key: str) -> bool:
        """Evict-after-resolve: drop the *backend* copy exactly once.

        Site caches keep their replicas, so re-resolves on a site that
        already materialized the object (task retries, duplicate bus
        deliveries) stay cache hits instead of raising.  Subsequent calls
        are no-ops; a backend miss on a released key raises a targeted
        :class:`StoreError` explaining the evict-once semantics.
        """
        with self._released_lock:
            if key in self._released:
                counter_inc("store.release_skipped", store=self.name)
                return False
            self._released.add(key)
        self.connector.evict(key)
        counter_inc("store.released", store=self.name)
        return True

    # -- proxy API ---------------------------------------------------------------
    def proxy(self, obj: object, *, evict: bool = False, key: str | None = None) -> Proxy:
        """Place ``obj`` and return a transparent lazy reference to it."""
        key = self.put(obj, key=key)
        return Proxy(StoreFactory(self.name, key, evict=evict))

    def proxy_from_key(self, key: str, *, evict: bool = False) -> Proxy:
        """Build a proxy for an object that is already stored."""
        return Proxy(StoreFactory(self.name, key, evict=evict))

    def close(self) -> None:
        unregister_store(self.name)
        self.connector.close()

    def __repr__(self) -> str:
        return f"Store(name={self.name!r}, connector={self.connector.kind})"
