"""The ProxyStore ``Store``: serialize, place, proxy, resolve, cache.

``Store.proxy(obj)`` is the one-line pass-by-reference primitive from the
paper: the object is serialized (charged), placed in the backend connector
(charged), and a transparent :class:`~repro.proxystore.proxy.Proxy` wrapping
a :class:`StoreFactory` is returned.  The factory carries only the store
name and key, so it pickles to a couple hundred bytes; on resolution it
looks the store up in the process-global registry — the stand-in for how
real ProxyStore re-instantiates stores from serialized config on remote
workers.

A per-site LRU cache sits in front of the connector: model weights proxied
once and used by many inference tasks on the same resource are fetched over
the wire a single time (the mechanism behind the paper's sub-100 ms proxy
resolutions for 12 % of inference tasks).
"""

from __future__ import annotations

import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.bench.recording import emit
from repro.chaos.plan import chaos_check
from repro.chaos.policy import RetryPolicy
from repro.exceptions import RetryExhaustedError, StoreError
from repro.net.clock import get_clock
from repro.net.context import current_site
from repro.observe import counter_inc, observe, trace_span
from repro.proxystore.connectors.base import Connector
from repro.proxystore.proxy import Factory, Proxy
from repro.serialize import (
    Payload,
    deserialize,
    deserialize_cost,
    serialize,
    serialize_cost,
)

__all__ = [
    "Store",
    "StoreFactory",
    "StoreMetrics",
    "register_store",
    "unregister_store",
    "get_store",
    "clear_store_registry",
]

_registry: dict[str, "Store"] = {}
_registry_lock = threading.Lock()


def register_store(store: "Store", *, exist_ok: bool = False) -> "Store":
    """Publish a store under its name for factory lookups."""
    with _registry_lock:
        if store.name in _registry and not exist_ok:
            raise StoreError(f"a store named {store.name!r} is already registered")
        _registry[store.name] = store
    return store


def unregister_store(name: str) -> None:
    with _registry_lock:
        _registry.pop(name, None)


def get_store(name: str) -> "Store":
    with _registry_lock:
        try:
            return _registry[name]
        except KeyError:
            raise StoreError(f"no registered store named {name!r}") from None


def clear_store_registry() -> None:
    """Remove every registered store (test isolation)."""
    with _registry_lock:
        _registry.clear()


@dataclass
class StoreMetrics:
    """Aggregated per-operation timings, in nominal seconds."""

    put_times: list[float] = field(default_factory=list)
    get_times: list[float] = field(default_factory=list)
    put_bytes: list[int] = field(default_factory=list)
    get_bytes: list[int] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_put(self, seconds: float, nbytes: int) -> None:
        with self._lock:
            self.put_times.append(seconds)
            self.put_bytes.append(nbytes)

    def record_get(self, seconds: float, nbytes: int, cache_hit: bool) -> None:
        with self._lock:
            self.get_times.append(seconds)
            self.get_bytes.append(nbytes)
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def summary(self) -> dict[str, float]:
        import statistics

        with self._lock:
            return {
                "puts": len(self.put_times),
                "gets": len(self.get_times),
                "put_median_s": statistics.median(self.put_times) if self.put_times else 0.0,
                "get_median_s": statistics.median(self.get_times) if self.get_times else 0.0,
                "cache_hit_rate": (
                    self.cache_hits / (self.cache_hits + self.cache_misses)
                    if (self.cache_hits + self.cache_misses)
                    else 0.0
                ),
            }


class _LRU:
    """Tiny thread-safe LRU used per site."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> tuple[bool, object]:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                return True, self._data[key]
            return False, None

    def put(self, key: str, value: object) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def evict(self, key: str) -> None:
        with self._lock:
            self._data.pop(key, None)


class StoreFactory(Factory):
    """Resolves ``key`` from the registered store named ``store_name``."""

    def __init__(self, store_name: str, key: str, *, evict: bool = False) -> None:
        self.store_name = store_name
        self.key = key
        self.evict = evict

    def resolve(self) -> object:
        store = get_store(self.store_name)
        obj = store.get(self.key)
        if self.evict:
            store.evict(self.key)
        return obj

    def __repr__(self) -> str:
        return f"StoreFactory(store={self.store_name!r}, key={self.key!r})"


class Store:
    """A named object store over a :class:`Connector`.

    Parameters
    ----------
    name:
        Registry name; factories embed it, so it must be stable across the
        whole campaign.
    connector:
        Backend transport.
    cache_size:
        Per-site LRU entries (0 disables caching).
    register:
        Register into the global registry immediately (required for
        proxies to be resolvable elsewhere).
    retry_policy:
        When set, reads that raise :class:`StoreError` (evicted key,
        backend blip, injected corruption) are retried with backoff before
        giving up with :class:`RetryExhaustedError`.
    """

    def __init__(
        self,
        name: str,
        connector: Connector,
        *,
        cache_size: int = 16,
        register: bool = True,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.name = name
        self.connector = connector
        self.metrics = StoreMetrics()
        self._cache_size = cache_size
        self._caches: dict[str, _LRU] = {}
        self._caches_lock = threading.Lock()
        self._retry_policy = retry_policy
        if register:
            register_store(self)

    # -- caching -------------------------------------------------------------
    def _cache(self) -> _LRU:
        site = current_site()
        key = site.name if site is not None else "__unpinned__"
        with self._caches_lock:
            cache = self._caches.get(key)
            if cache is None:
                cache = _LRU(self._cache_size)
                self._caches[key] = cache
            return cache

    # -- core API --------------------------------------------------------------
    def put(self, obj: object, key: str | None = None) -> str:
        """Serialize and store ``obj``; returns the key."""
        clock = get_clock()
        start = clock.now()
        key = key or uuid.uuid4().hex
        payload = serialize(obj)
        clock.sleep(serialize_cost(payload.nominal_size))
        self.connector.put(key, payload)
        self.metrics.record_put(clock.now() - start, payload.nominal_size)
        return key

    def put_batch(self, objs: list[object], keys: list[str] | None = None) -> list[str]:
        """Serialize and store many objects through one fused backend call.

        On backends with per-operation fixed costs (Globus: an HTTPS
        submission and a concurrency-limit slot per transfer task), fusing
        a batch is markedly cheaper than N separate puts (§V-D1).
        """
        clock = get_clock()
        start = clock.now()
        if keys is None:
            keys = [uuid.uuid4().hex for _ in objs]
        if len(keys) != len(objs):
            raise StoreError("put_batch needs one key per object")
        items: dict[str, Payload] = {}
        total = 0
        for key, obj in zip(keys, objs):
            payload = serialize(obj)
            total += payload.nominal_size
            items[key] = payload
        clock.sleep(serialize_cost(total))
        self.connector.put_batch(items)
        self.metrics.record_put(clock.now() - start, total)
        return keys

    def proxy_batch(self, objs: list[object], *, evict: bool = False) -> list[Proxy]:
        """Place many objects at once; returns one lazy reference each."""
        keys = self.put_batch(objs)
        return [Proxy(StoreFactory(self.name, key, evict=evict)) for key in keys]

    def get(self, key: str, timeout: float | None = None) -> object:
        """Fetch and deserialize the object under ``key`` (cache-aware)."""
        clock = get_clock()
        start = clock.now()
        cache = self._cache()
        hit, cached = cache.get(key)
        if hit:
            self.metrics.record_get(clock.now() - start, 0, cache_hit=True)
            counter_inc("store.cache_hits", store=self.name)
            observe("store.get_s", clock.now() - start, store=self.name)
            return cached
        policy = self._retry_policy
        chaos_key = f"{self.name}:{key}"
        attempt = 0
        while True:
            try:
                with trace_span("proxy.resolve", store=self.name, cache_hit=False):
                    payload = self.connector.get(key, timeout=timeout)
                    spec = chaos_check("store.get", chaos_key, attempt=attempt)
                    if spec is not None:
                        if spec.delay:
                            clock.sleep(spec.delay)
                        raise StoreError(
                            f"injected fault {spec.mode!r}: read of {key!r} "
                            f"from store {self.name!r} returned corrupt bytes"
                        )
                    clock.sleep(deserialize_cost(payload.nominal_size))
                    obj = deserialize(payload)
                break
            except StoreError as exc:
                if policy is None:
                    raise
                if not policy.retries_left(attempt):
                    raise RetryExhaustedError(
                        f"store {self.name!r} read of {key!r} failed after "
                        f"{attempt + 1} attempts: {exc}",
                        attempts=attempt + 1,
                        last_error=str(exc),
                    ) from exc
                counter_inc("store.retries", store=self.name)
                clock.sleep(policy.delay_for(attempt, key=chaos_key))
                attempt += 1
        cache.put(key, obj)
        self.metrics.record_get(
            clock.now() - start, payload.nominal_size, cache_hit=False
        )
        counter_inc("store.cache_misses", store=self.name)
        observe("store.get_s", clock.now() - start, store=self.name)
        site = current_site()
        emit(
            "data_transfer",
            resource=site.name if site else "unknown",
            bytes=payload.nominal_size,
            via=f"store:{self.connector.kind}",
        )
        return obj

    def exists(self, key: str) -> bool:
        return self.connector.exists(key)

    def evict(self, key: str) -> None:
        self.connector.evict(key)
        with self._caches_lock:
            caches = list(self._caches.values())
        for cache in caches:
            cache.evict(key)

    # -- proxy API ---------------------------------------------------------------
    def proxy(self, obj: object, *, evict: bool = False, key: str | None = None) -> Proxy:
        """Place ``obj`` and return a transparent lazy reference to it."""
        key = self.put(obj, key=key)
        return Proxy(StoreFactory(self.name, key, evict=evict))

    def proxy_from_key(self, key: str, *, evict: bool = False) -> Proxy:
        """Build a proxy for an object that is already stored."""
        return Proxy(StoreFactory(self.name, key, evict=evict))

    def close(self) -> None:
        unregister_store(self.name)
        self.connector.close()

    def __repr__(self) -> str:
        return f"Store(name={self.name!r}, connector={self.connector.kind})"
