"""Gray-failure defense: health scoring, circuit breakers, hedged
execution, and poison-task quarantine.

Crashes are easy — the lease/failover machinery (``repro.faas``) and the
write-ahead journal (``repro.durable``) already survive them.  This package
handles the failures that *don't* announce themselves:

* :mod:`repro.resilience.health` — per-endpoint health scores (latency
  EWMA, consecutive errors, heartbeat jitter) feeding a three-state circuit
  breaker the dispatch path consults, so a slow-but-alive endpoint stops
  winning dispatch long before its lease would expire;
* :mod:`repro.resilience.hedge` — hedged execution policy: speculative
  duplicates on a different endpoint after a p95-derived delay,
  first-result-wins with exactly-once loser reconciliation;
* :mod:`repro.resilience.deadletter` — poison-task quarantine: tasks that
  fail deterministically on a quorum of distinct endpoints move to a
  per-tenant dead-letter queue, journaled so quarantine survives crashes.

See DESIGN.md §11 for the score formula, the breaker state machine, and the
hedge reconciliation invariant.
"""

from repro.resilience.deadletter import (
    DeadLetterEntry,
    PoisonPolicy,
    PoisonTracker,
)
from repro.resilience.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    EndpointHealthTracker,
    HealthPolicy,
)
from repro.resilience.hedge import HedgePolicy, LatencyReservoir

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "DeadLetterEntry",
    "EndpointHealthTracker",
    "HealthPolicy",
    "HedgePolicy",
    "LatencyReservoir",
    "PoisonPolicy",
    "PoisonTracker",
]
