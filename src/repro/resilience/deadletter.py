"""Poison-task detection and the per-tenant dead-letter queue.

A *poison task* fails deterministically — same arguments, same crash — no
matter where it runs, so every retry burns budget and every failover spreads
the damage.  The tracker fingerprints tasks by content (function id plus the
argument-payload digest the chaos layer already derives) and counts
**strikes**: terminal worker failures on *distinct* endpoints.  Reaching
:attr:`PoisonPolicy.quorum` distinct-endpoint strikes quarantines the
fingerprint into its tenant's dead-letter queue; from then on submits of the
same content are refused with
:class:`~repro.exceptions.TaskQuarantinedError` until an operator retries or
drops the entry (``repro.cli deadletter list|retry|drop``).

The quorum requirement is what separates poison from plain bad luck: a
transient worker exception retried *on the same endpoint* accumulates one
distinct-endpoint strike at most, and any success clears the slate.  To
reach quorum quickly the cloud steers retries of striked fingerprints to
endpoints that have not yet voted (see ``FaasCloud.submit``).

Durability: the tracker itself is pure in-memory state; the owning cloud
journals ``deadletter`` records (add on quarantine, drop on retry/drop)
through its :class:`repro.durable.Journal`, and recovery replays them via
:meth:`PoisonTracker.restore`.  Only *quarantined* entries are durable —
pre-quorum strikes die with the process, which is safe: losing strikes can
only delay a quarantine, never lose a task.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["PoisonPolicy", "DeadLetterEntry", "PoisonTracker"]


@dataclass(frozen=True)
class PoisonPolicy:
    """``quorum`` distinct endpoints must see a terminal failure before a
    fingerprint is quarantined; ``max_entries`` bounds each tenant's
    dead-letter queue (oldest entries are never silently evicted — at the
    cap further quarantines are refused and the task keeps failing through
    the ordinary retry path)."""

    quorum: int = 2
    max_entries: int = 1024

    def __post_init__(self) -> None:
        if self.quorum < 1:
            raise ValueError("quorum must be >= 1")
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")


@dataclass(frozen=True)
class DeadLetterEntry:
    """One quarantined fingerprint, with enough context to resubmit it."""

    tenant: str
    fingerprint: str
    func_id: str
    task_id: str
    args_locator: str
    client_id: str
    error: str
    endpoints: tuple[str, ...] = ()
    quarantined_at: float = 0.0

    def to_record(self) -> dict:
        return {
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "func_id": self.func_id,
            "task_id": self.task_id,
            "args_locator": self.args_locator,
            "client_id": self.client_id,
            "error": self.error,
            "endpoints": list(self.endpoints),
            "quarantined_at": self.quarantined_at,
        }

    @classmethod
    def from_record(cls, record: dict) -> "DeadLetterEntry":
        return cls(
            tenant=record["tenant"],
            fingerprint=record["fingerprint"],
            func_id=record["func_id"],
            task_id=record["task_id"],
            args_locator=record["args_locator"],
            client_id=record["client_id"],
            error=record.get("error", ""),
            endpoints=tuple(record.get("endpoints", ())),
            quarantined_at=record.get("quarantined_at", 0.0),
        )


class PoisonTracker:
    """Strike accounting plus the per-tenant dead-letter queues.

    Thread-safe leaf state shared by every shard behind one router, so a
    fingerprint's strikes accumulate across shards and failover targets.
    """

    def __init__(self, policy: PoisonPolicy | None = None) -> None:
        self.policy = policy or PoisonPolicy()
        self._lock = threading.Lock()
        #: fingerprint -> {endpoint_id: last error text}
        self._strikes: dict[str, dict[str, str]] = {}
        #: (tenant, fingerprint) -> entry
        self._entries: dict[tuple[str, str], DeadLetterEntry] = {}

    # -- strike intake ---------------------------------------------------------
    def note_failure(
        self,
        tenant: str,
        fingerprint: str,
        endpoint_id: str,
        *,
        func_id: str,
        task_id: str,
        args_locator: str,
        client_id: str,
        error: str,
        now: float,
    ) -> DeadLetterEntry | None:
        """Record a terminal failure vote from ``endpoint_id``.

        Returns the new :class:`DeadLetterEntry` when this vote reaches
        quorum (the caller journals it and refuses future submits), else
        ``None``."""
        with self._lock:
            if (tenant, fingerprint) in self._entries:
                return None
            strikes = self._strikes.setdefault(fingerprint, {})
            strikes[endpoint_id] = error
            if len(strikes) < self.policy.quorum:
                return None
            tenant_entries = sum(
                1 for key in self._entries if key[0] == tenant
            )
            if tenant_entries >= self.policy.max_entries:
                return None
            entry = DeadLetterEntry(
                tenant=tenant,
                fingerprint=fingerprint,
                func_id=func_id,
                task_id=task_id,
                args_locator=args_locator,
                client_id=client_id,
                error=error,
                endpoints=tuple(sorted(strikes)),
                quarantined_at=now,
            )
            self._entries[(tenant, fingerprint)] = entry
            del self._strikes[fingerprint]
            return entry

    def note_success(self, fingerprint: str) -> None:
        """Any success clears the fingerprint's strike record."""
        with self._lock:
            self._strikes.pop(fingerprint, None)

    def strikes(self, fingerprint: str) -> tuple[str, ...]:
        """The endpoints that have voted against this fingerprint so far."""
        with self._lock:
            return tuple(sorted(self._strikes.get(fingerprint, ())))

    def untried_endpoint(
        self, fingerprint: str, candidates: list[str]
    ) -> str | None:
        """A candidate endpoint that has not yet voted, for retry steering
        (sorted order, so identically-seeded runs steer identically)."""
        with self._lock:
            voted = self._strikes.get(fingerprint, {})
            for endpoint_id in sorted(candidates):
                if endpoint_id not in voted:
                    return endpoint_id
        return None

    # -- quarantine queries ----------------------------------------------------
    def is_quarantined(self, tenant: str, fingerprint: str) -> bool:
        with self._lock:
            return (tenant, fingerprint) in self._entries

    def entry(self, tenant: str, fingerprint: str) -> DeadLetterEntry | None:
        with self._lock:
            return self._entries.get((tenant, fingerprint))

    def entries(self, tenant: str | None = None) -> list[DeadLetterEntry]:
        with self._lock:
            selected = [
                entry
                for (entry_tenant, _), entry in self._entries.items()
                if tenant is None or entry_tenant == tenant
            ]
        return sorted(selected, key=lambda e: (e.tenant, e.fingerprint))

    # -- operator verbs and replay ---------------------------------------------
    def remove(self, tenant: str, fingerprint: str) -> DeadLetterEntry | None:
        """Release a quarantine (operator ``retry`` or ``drop``); strikes
        are cleared too, so a retried task gets a fresh quorum."""
        with self._lock:
            entry = self._entries.pop((tenant, fingerprint), None)
            self._strikes.pop(fingerprint, None)
            return entry

    def restore(self, entry: DeadLetterEntry) -> None:
        """Re-install a quarantine from a journal replay (idempotent)."""
        with self._lock:
            self._entries[(entry.tenant, entry.fingerprint)] = entry
