"""Endpoint health scoring and the three-state circuit breaker.

Gray failures — endpoints that are slow-but-alive — never trip the lease
machinery: the heartbeat thread keeps beating while the worker pool crawls,
so dispatch keeps flowing to a degraded endpoint until a human notices.
:class:`EndpointHealthTracker` closes that gap by folding three per-endpoint
signals into one multiplicative health score in ``[0, 1]``:

``score = latency_factor * error_factor * beat_factor``

* ``latency_factor`` — an EWMA of dispatch→result latency, compared against
  a baseline (explicit via :attr:`HealthPolicy.latency_baseline`, or the
  fleet-minimum EWMA otherwise): ``min(1, threshold * baseline / ewma)``.
  A 10x-slow endpoint against a 3x threshold scores ~0.3.
* ``error_factor`` — consecutive-failure count ``c`` maps to
  ``max(0, 1 - c / error_threshold)``; one success resets it.
* ``beat_factor`` — ``0.5 ** missed`` where ``missed`` is how many whole
  heartbeat periods have elapsed beyond the expected one (lease jitter).

A per-endpoint **circuit breaker** consumes the score:

* ``closed`` — dispatch flows; the score is evaluated on every consult and
  a score below :attr:`HealthPolicy.open_score` (once ``min_samples``
  latencies have been observed) trips the breaker **open**.
* ``open`` — the dequeue path sheds queued and in-flight work to healthy
  failover-group members; after :attr:`HealthPolicy.open_duration` nominal
  seconds the breaker moves to **half-open**.
* ``half-open`` — exactly :attr:`HealthPolicy.half_open_probes` probe tasks
  are admitted (deterministic counter, not a coin flip); a successful probe
  that scores healthy closes the breaker, a failed one re-opens it.

All mutating entry points take an explicit ``now`` (nominal seconds) so the
state machine is unit-testable without a running clock.  The tracker is a
leaf lock: it never calls back into cloud or client code while locked.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.observe import counter_inc

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "HealthPolicy",
    "EndpointHealthTracker",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class HealthPolicy:
    """Tuning for the health score and breaker state machine.

    ``latency_baseline`` is the latency (nominal seconds) considered
    healthy; when ``None`` the fleet-minimum EWMA stands in, so a lone
    endpoint is its own baseline and never trips on latency alone.
    """

    latency_alpha: float = 0.3
    latency_baseline: float | None = None
    latency_threshold: float = 3.0
    error_threshold: int = 3
    min_samples: int = 3
    open_score: float = 0.5
    open_duration: float = 30.0
    half_open_probes: int = 1
    heartbeat_tolerance: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_alpha <= 1.0:
            raise ValueError("latency_alpha must be in (0, 1]")
        if self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive")
        if self.error_threshold < 1:
            raise ValueError("error_threshold must be >= 1")
        if not 0.0 <= self.open_score <= 1.0:
            raise ValueError("open_score must be in [0, 1]")
        if self.open_duration < 0:
            raise ValueError("open_duration must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


@dataclass
class _EndpointHealth:
    """Mutable per-endpoint signal state (guarded by the tracker lock)."""

    ewma: float | None = None
    samples: int = 0
    consecutive_errors: int = 0
    last_beat: float | None = None
    beat_interval: float | None = None
    state: str = BREAKER_CLOSED
    opened_at: float = 0.0
    probes_used: int = 0
    opens: int = 0


class EndpointHealthTracker:
    """Per-endpoint health scores plus one circuit breaker per endpoint."""

    def __init__(self, policy: HealthPolicy | None = None) -> None:
        self.policy = policy or HealthPolicy()
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointHealth] = {}

    def _entry(self, endpoint_id: str) -> _EndpointHealth:
        entry = self._endpoints.get(endpoint_id)
        if entry is None:
            entry = self._endpoints[endpoint_id] = _EndpointHealth()
        return entry

    # -- signal intake ---------------------------------------------------------
    def record_result(
        self, endpoint_id: str, latency: float, success: bool, now: float
    ) -> None:
        """Fold one dispatch→result latency sample and its outcome in."""
        policy = self.policy
        with self._lock:
            entry = self._entry(endpoint_id)
            latency = max(0.0, latency)
            if entry.ewma is None:
                entry.ewma = latency
            else:
                entry.ewma += policy.latency_alpha * (latency - entry.ewma)
            entry.samples += 1
            if success:
                entry.consecutive_errors = 0
            else:
                entry.consecutive_errors += 1
            if entry.state != BREAKER_HALF_OPEN:
                return
            # A probe came back: close on a healthy outcome, re-open otherwise.
            if success and self._score_locked(entry, now) >= policy.open_score:
                entry.state = BREAKER_CLOSED
                entry.probes_used = 0
                closed = True
            else:
                entry.state = BREAKER_OPEN
                entry.opened_at = now
                entry.probes_used = 0
                closed = False
        if closed:
            counter_inc("resilience.breaker_closes", endpoint=endpoint_id)
        else:
            counter_inc("resilience.breaker_opens", endpoint=endpoint_id)

    def record_heartbeat(
        self, endpoint_id: str, now: float, interval: float
    ) -> None:
        """Note a heartbeat arrival; ``interval`` is the expected period."""
        with self._lock:
            entry = self._entry(endpoint_id)
            entry.last_beat = now
            entry.beat_interval = interval

    # -- scoring ---------------------------------------------------------------
    def _baseline_locked(self, entry: _EndpointHealth) -> float | None:
        if self.policy.latency_baseline is not None:
            return self.policy.latency_baseline
        candidates = [
            other.ewma
            for other in self._endpoints.values()
            if other.ewma is not None and other.samples >= self.policy.min_samples
        ]
        return min(candidates) if candidates else None

    def _score_locked(self, entry: _EndpointHealth, now: float) -> float:
        policy = self.policy
        latency_factor = 1.0
        if entry.ewma is not None and entry.samples >= policy.min_samples:
            baseline = self._baseline_locked(entry)
            if baseline is not None and entry.ewma > 0:
                latency_factor = min(
                    1.0, policy.latency_threshold * baseline / entry.ewma
                )
        error_factor = max(
            0.0, 1.0 - entry.consecutive_errors / policy.error_threshold
        )
        beat_factor = 1.0
        if entry.last_beat is not None and entry.beat_interval:
            overdue = (now - entry.last_beat) / entry.beat_interval
            missed = int(max(0.0, overdue - policy.heartbeat_tolerance))
            beat_factor = 0.5 ** missed
        return latency_factor * error_factor * beat_factor

    def score(self, endpoint_id: str, now: float) -> float:
        """The endpoint's current health in ``[0, 1]`` (1 = healthy)."""
        with self._lock:
            entry = self._endpoints.get(endpoint_id)
            if entry is None:
                return 1.0
            return self._score_locked(entry, now)

    # -- breaker state machine -------------------------------------------------
    def _evaluate_locked(self, endpoint_id: str, now: float) -> tuple[str, bool]:
        """Run passive transitions; returns ``(state, opened_now)``."""
        entry = self._entry(endpoint_id)
        opened = False
        if entry.state == BREAKER_CLOSED:
            if (
                entry.samples >= self.policy.min_samples
                and self._score_locked(entry, now) < self.policy.open_score
            ):
                entry.state = BREAKER_OPEN
                entry.opened_at = now
                entry.probes_used = 0
                entry.opens += 1
                opened = True
        elif entry.state == BREAKER_OPEN:
            if now - entry.opened_at >= self.policy.open_duration:
                entry.state = BREAKER_HALF_OPEN
                entry.probes_used = 0
        return entry.state, opened

    def evaluate(self, endpoint_id: str, now: float) -> str:
        """Advance passive transitions (trip / cool down) and return the
        breaker state.  Never consumes half-open probe budget."""
        with self._lock:
            state, opened = self._evaluate_locked(endpoint_id, now)
        if opened:
            counter_inc("resilience.breaker_opens", endpoint=endpoint_id)
        return state

    def admit(self, endpoint_id: str, now: float) -> bool:
        """Should a dispatch be handed to this endpoint right now?

        ``closed`` admits everything, ``open`` admits nothing, ``half-open``
        admits up to ``half_open_probes`` probes — a deterministic counter,
        so two identically-seeded runs admit identical probe sets."""
        probe = False
        with self._lock:
            state, opened = self._evaluate_locked(endpoint_id, now)
            entry = self._endpoints[endpoint_id]
            if state == BREAKER_HALF_OPEN:
                if entry.probes_used < self.policy.half_open_probes:
                    entry.probes_used += 1
                    probe = True
                admitted = probe
            else:
                admitted = state == BREAKER_CLOSED
        if opened:
            counter_inc("resilience.breaker_opens", endpoint=endpoint_id)
        if probe:
            counter_inc("resilience.probes", endpoint=endpoint_id)
        return admitted

    def state(self, endpoint_id: str) -> str:
        with self._lock:
            entry = self._endpoints.get(endpoint_id)
            return entry.state if entry is not None else BREAKER_CLOSED

    def snapshot(self) -> dict[str, dict]:
        """Per-endpoint signal dump for tables and debugging."""
        with self._lock:
            return {
                endpoint_id: {
                    "ewma": entry.ewma,
                    "samples": entry.samples,
                    "consecutive_errors": entry.consecutive_errors,
                    "state": entry.state,
                    "opens": entry.opens,
                }
                for endpoint_id, entry in sorted(self._endpoints.items())
            }
