"""Hedged execution policy and the client-side latency reservoir.

A *hedge* is a speculative duplicate of a task launched on a **different**
endpoint once the primary has been in flight longer than the hedge delay —
the classic tail-at-scale defense: the p95 straggler pays one duplicate
execution instead of stalling the whole batch.

The delay is either fixed (:attr:`HedgePolicy.delay`) or derived from
observed latencies: ``quantile(q) * multiplier`` over a bounded reservoir of
recent completion latencies, available once ``min_samples`` have been seen.
Until then no hedges launch — guessing a delay from nothing produces either
useless hedges (too short) or no protection (too long).

First result wins.  The losing leg is cancelled against the cloud ledger
exactly once; :class:`repro.faas.client.FaasClient` accounts every launched
hedge under ``client.hedges{outcome=}``:

* ``won``    — the hedge finished first and resolved the future;
* ``lost``   — the primary finished first and the hedge was cancelled
  while still queued (no duplicate execution);
* ``wasted`` — the primary finished first but the hedge had already been
  dispatched, so its execution was pure duplicate work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["HedgePolicy", "LatencyReservoir"]


@dataclass(frozen=True)
class HedgePolicy:
    """When and where to launch a speculative duplicate.

    ``endpoints`` are the candidate hedge targets, tried in order; the one
    the primary is already on is skipped.  ``delay`` fixes the hedge delay
    in nominal seconds; when ``None`` it is ``quantile(q) * multiplier``
    over the client's latency reservoir (p95-derived by default).
    """

    endpoints: tuple[str, ...]
    delay: float | None = None
    quantile: float = 0.95
    multiplier: float = 1.5
    min_samples: int = 8
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if not self.endpoints:
            raise ValueError("a hedge policy needs at least one endpoint")
        if self.delay is not None and self.delay < 0:
            raise ValueError("delay must be non-negative")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")

    def hedge_target(self, exclude: set[str]) -> str | None:
        """First candidate endpoint not in ``exclude`` (policy order)."""
        for endpoint_id in self.endpoints:
            if endpoint_id not in exclude:
                return endpoint_id
        return None

    def hedge_delay(self, reservoir: "LatencyReservoir") -> float | None:
        """The in-flight age beyond which a task should be hedged, or
        ``None`` while the reservoir is too shallow to estimate one."""
        if self.delay is not None:
            return self.delay
        quantile = reservoir.quantile(self.quantile, min_samples=self.min_samples)
        return None if quantile is None else quantile * self.multiplier


class LatencyReservoir:
    """A bounded ring of recent completion latencies (nominal seconds)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._samples: list[float] = []
        self._cursor = 0
        self._lock = threading.Lock()

    def add(self, latency: float) -> None:
        latency = max(0.0, latency)
        with self._lock:
            if len(self._samples) < self._capacity:
                self._samples.append(latency)
            else:
                self._samples[self._cursor] = latency
                self._cursor = (self._cursor + 1) % self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def quantile(self, q: float, *, min_samples: int = 1) -> float | None:
        """Nearest-rank quantile, or ``None`` below ``min_samples``."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        with self._lock:
            if len(self._samples) < max(1, min_samples):
                return None
            ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]
