"""Simulated compute resources: batch schedulers and worker pools."""

from repro.resources.scheduler import BatchJob, BatchScheduler, JobState
from repro.resources.worker import WorkerPool

__all__ = ["BatchJob", "BatchScheduler", "JobState", "WorkerPool"]
