"""Batch scheduler simulation (Slurm/Cobalt stand-in).

FuncX endpoints and Parsl pilots do not own nodes: they submit a batch job
and wait in the queue before their workers exist.  That queue wait is why
"adding each new task to a global queue ... can result in significant
delays" (§II-A) and why multi-level scheduling (pilot jobs + local task
dispatch) wins for dynamic workloads.  The model here: a site has a fixed
node count; a job asks for ``n`` nodes, waits for free nodes plus a sampled
queue delay, holds them for its walltime or until released.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from enum import Enum

from repro.exceptions import SchedulerError
from repro.net.clock import Clock, get_clock
from repro.net.topology import LatencyModel, LogNormalLatency, Network, Site

__all__ = ["JobState", "BatchJob", "BatchScheduler"]


class JobState(str, Enum):
    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    CANCELLED = "CANCELLED"


@dataclass
class BatchJob:
    job_id: str
    n_nodes: int
    walltime: float | None
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    ended_at: float | None = None


class BatchScheduler:
    """A per-site FIFO batch scheduler with sampled queue delays."""

    def __init__(
        self,
        site: Site,
        total_nodes: int,
        *,
        queue_delay: LatencyModel | None = None,
        network: Network | None = None,
        clock: Clock | None = None,
    ) -> None:
        if total_nodes <= 0:
            raise SchedulerError("a scheduler needs at least one node")
        self.site = site
        self.total_nodes = total_nodes
        self._queue_delay = queue_delay or LogNormalLatency(2.0, 0.5, cap=30.0)
        self._network = network
        self._clock = clock or get_clock()
        self._free = total_nodes
        self._lock = threading.Lock()
        self._nodes_freed = threading.Condition(self._lock)
        self._jobs: dict[str, BatchJob] = {}
        self._ids = itertools.count()

    def _sample_queue_delay(self) -> float:
        if self._network is not None:
            return self._network._sample(self._queue_delay)
        import random

        return self._queue_delay.sample(random.Random())

    def submit(
        self, n_nodes: int, walltime: float | None = None, timeout: float | None = None
    ) -> BatchJob:
        """Submit and *block* until the job starts (pilot-job style).

        Raises :class:`SchedulerError` if the request can never be satisfied
        or the wait exceeds ``timeout`` (nominal seconds).
        """
        if n_nodes <= 0:
            raise SchedulerError("n_nodes must be positive")
        if n_nodes > self.total_nodes:
            raise SchedulerError(
                f"requested {n_nodes} nodes but {self.site.name} has only "
                f"{self.total_nodes}"
            )
        job = BatchJob(
            job_id=f"{self.site.name}-{next(self._ids)}",
            n_nodes=n_nodes,
            walltime=walltime,
            submitted_at=self._clock.now(),
        )
        with self._lock:
            self._jobs[job.job_id] = job
        # Scheduler cycle + queue position.
        self._clock.sleep(self._sample_queue_delay())
        deadline_wall = self._clock.wall_timeout(timeout)
        with self._nodes_freed:
            while self._free < n_nodes:
                if not self._nodes_freed.wait(deadline_wall):
                    job.state = JobState.CANCELLED
                    raise SchedulerError(
                        f"timed out waiting for {n_nodes} nodes on {self.site.name}"
                    )
            self._free -= n_nodes
            job.state = JobState.RUNNING
            job.started_at = self._clock.now()
        return job

    def resize(
        self, job: BatchJob, delta: int, *, timeout: float | None = None
    ) -> BatchJob:
        """Grow or shrink a RUNNING job by ``delta`` nodes in place.

        Growing models submitting an expansion request for an existing pilot
        allocation: it pays a freshly sampled queue delay and then blocks
        until the extra nodes are free (or ``timeout`` nominal seconds pass,
        raising :class:`SchedulerError` with the job left at its old size).
        Shrinking returns nodes immediately and wakes queued growers;
        shrinking to zero completes the job, exactly like :meth:`release`.
        Deltas are applied under the scheduler lock, so concurrent resizes
        of one job from many workers never lose an update.
        """
        if delta == 0:
            return job
        if delta < 0:
            with self._nodes_freed:
                if job.state is not JobState.RUNNING:
                    raise SchedulerError(
                        f"cannot resize job {job.job_id!r} in state {job.state}"
                    )
                if job.n_nodes + delta < 0:
                    raise SchedulerError(
                        f"cannot shrink job {job.job_id!r} below zero nodes"
                    )
                job.n_nodes += delta
                self._free -= delta
                if job.n_nodes == 0:
                    job.state = JobState.COMPLETED
                    job.ended_at = self._clock.now()
                self._nodes_freed.notify_all()
            return job
        with self._lock:
            if job.state is not JobState.RUNNING:
                raise SchedulerError(
                    f"cannot resize job {job.job_id!r} in state {job.state}"
                )
            if job.n_nodes + delta > self.total_nodes:
                raise SchedulerError(
                    f"growing {job.job_id!r} by {delta} nodes exceeds the "
                    f"{self.total_nodes} nodes on {self.site.name}"
                )
        # Growth request: another trip through the batch queue.
        self._clock.sleep(self._sample_queue_delay())
        deadline_wall = self._clock.wall_timeout(timeout)
        with self._nodes_freed:
            while self._free < delta:
                if not self._nodes_freed.wait(deadline_wall):
                    raise SchedulerError(
                        f"timed out growing {job.job_id!r} by {delta} nodes "
                        f"on {self.site.name}"
                    )
                if job.state is not JobState.RUNNING:
                    raise SchedulerError(
                        f"job {job.job_id!r} completed while a resize waited"
                    )
            self._free -= delta
            job.n_nodes += delta
        return job

    def release(self, job: BatchJob) -> None:
        """Return a running job's nodes to the pool."""
        with self._nodes_freed:
            if job.state is not JobState.RUNNING:
                return
            job.state = JobState.COMPLETED
            job.ended_at = self._clock.now()
            self._free += job.n_nodes
            self._nodes_freed.notify_all()

    @property
    def free_nodes(self) -> int:
        with self._lock:
            return self._free

    def job(self, job_id: str) -> BatchJob:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise SchedulerError(f"unknown job {job_id!r}") from None
