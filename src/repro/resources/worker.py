"""Worker pools: the per-resource execution lanes under every fabric.

A :class:`WorkerPool` models the workers a FuncX endpoint or Parsl pilot
deploys on compute nodes: N threads pinned to the resource's site, pulling
closures off a local queue.  The pool measures what §V-E1 plots in Fig. 6b —
the *idle gap* each worker sees between finishing one task and starting the
next, which is exactly the (notify Thinker) + (decide) + (dispatch) latency
the steering system must keep small to hold CPU utilization above 99 %.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

from repro.bench.recording import emit
from repro.net.clock import Clock, get_clock
from repro.net.context import SiteThread
from repro.net.topology import Site
from repro.observe import gauge_set, observe
from repro.resources.scheduler import BatchJob, BatchScheduler

__all__ = ["WorkerPool"]


class WorkerPool:
    """N worker threads on one site, executing submitted closures in FIFO
    order.  Exceptions inside a closure are the closure author's problem
    (fabrics wrap user functions); the pool only guards its own liveness."""

    def __init__(
        self,
        site: Site,
        n_workers: int,
        *,
        name: str = "pool",
        scheduler: BatchScheduler | None = None,
        nodes_per_worker: int = 1,
        clock: Clock | None = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.site = site
        self.n_workers = n_workers
        self.name = name
        self._scheduler = scheduler
        self._nodes_per_worker = nodes_per_worker
        self._clock = clock or get_clock()
        self._queue: queue.Queue[Callable[[], None] | None] = queue.Queue()
        self._threads: list[SiteThread] = []
        self._job: BatchJob | None = None
        self._running = False
        self._lock = threading.Lock()
        self._active = 0
        self._last_end: dict[int, float] = {}
        #: Gaps (nominal seconds) between consecutive tasks on each worker.
        self.idle_gaps: list[float] = []
        self.tasks_completed = 0
        #: Cumulative nominal seconds workers spent executing closures.
        self.busy_seconds = 0.0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "WorkerPool":
        if self._running:
            return self
        if self._scheduler is not None:
            # Pilot-job provisioning: wait in the batch queue for our nodes.
            self._job = self._scheduler.submit(
                self.n_workers * self._nodes_per_worker
            )
        self._running = True
        for idx in range(self.n_workers):
            thread = SiteThread(
                self.site,
                target=self._worker_loop,
                args=(idx,),
                name=f"{self.name}-worker-{idx}",
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, *, drain: bool = True) -> list[Callable[[], None]]:
        """Stop the pool and return any closures that did not run.

        ``drain=True`` (the default) lets workers run the queue dry before
        exiting: the stop sentinels sit behind the backlog in FIFO order, so
        every queued closure executes and the return value is empty.

        ``drain=False`` is a prompt stop: queued-but-unstarted closures are
        pulled off the queue and *returned* to the caller (in submission
        order) instead of executing; only in-flight work finishes.  Callers
        that own a durable queue upstream (the FaaS cloud requeues on lease
        expiry) use this on crash paths where running the backlog would
        produce results nobody can report.
        """
        if not self._running:
            return []
        self._running = False
        pending: list[Callable[[], None]] = []
        if not drain:
            while True:
                try:
                    work = self._queue.get_nowait()
                except queue.Empty:
                    break
                if work is not None:
                    pending.append(work)
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=10)
        if self._scheduler is not None and self._job is not None:
            self._scheduler.release(self._job)
        self._threads.clear()
        return pending

    # -- work -------------------------------------------------------------------
    def submit(self, work: Callable[[], None]) -> None:
        if not self._running:
            raise RuntimeError(f"worker pool {self.name!r} is not running")
        self._queue.put(work)
        gauge_set("pool.queue_depth", self._queue.qsize(), pool=self.name)

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def active_count(self) -> int:
        with self._lock:
            return self._active

    @property
    def idle_count(self) -> int:
        return self.n_workers - self.active_count

    def _worker_loop(self, idx: int) -> None:
        while True:
            work = self._queue.get()
            if work is None:
                return
            self._execute(idx, work)

    def _execute(self, idx: int, work: Callable[[], None]) -> None:
        """Run one closure with idle-gap/utilization instrumentation."""
        start = self._clock.now()
        with self._lock:
            last_end = self._last_end.get(idx)
            if last_end is not None:
                self.idle_gaps.append(start - last_end)
                observe("pool.idle_gap_s", start - last_end, pool=self.name)
            self._active += 1
            gauge_set("pool.active", self._active, pool=self.name)
        emit("worker_task_start", pool=self.name, resource=self.site.name)
        try:
            work()
        except Exception as exc:  # closure bug: record, keep the lane alive
            emit(
                "worker_task_error",
                pool=self.name,
                resource=self.site.name,
                error=repr(exc),
            )
        finally:
            end = self._clock.now()
            with self._lock:
                self._active -= 1
                self._last_end[idx] = end
                self.tasks_completed += 1
                self.busy_seconds += end - start
            emit("worker_task_end", pool=self.name, resource=self.site.name)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
