"""Serialization with *nominal* payload sizes.

Everything that crosses a simulated wire is pickled here.  Two things make
this more than ``pickle.dumps``:

``Blob``
    The paper's experiments move payloads from 10 kB to 2.4 GB.  Allocating
    real gigabytes would make the harness memory-bound and would distort the
    virtual clock (un-scaled CPU time shows up magnified in nominal time).
    A :class:`Blob` *claims* a byte size: it pickles to a few dozen real
    bytes but contributes its full nominal size to the payload accounting,
    so every latency/bandwidth charge sees the paper-scale object.

``Payload``
    ``serialize`` returns the pickled bytes together with the accumulated
    nominal size, and :func:`serialize_cost` models the CPU cost of the
    (de)serialization itself — the "serialization time" component of
    Figs. 3 and 4 — as ``base + size / bandwidth``.

Only module-level functions and pickleable objects may cross the wire, the
same practical constraint FuncX imposes.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SerializationError

__all__ = [
    "Blob",
    "Payload",
    "serialize",
    "deserialize",
    "borrow",
    "nominal_size",
    "serialize_cost",
    "deserialize_cost",
    "SERIALIZE_BASE_S",
    "SERIALIZE_BANDWIDTH",
]

# Pickle throughput model: a base per-call cost plus throughput limit.
SERIALIZE_BASE_S = 0.2e-3
SERIALIZE_BANDWIDTH = 0.8e9  # bytes/second

_accumulator = threading.local()


class Blob:
    """A stand-in for ``nbytes`` of data.

    The payload content is never materialized; equality and hashing use the
    (size, tag) identity so tests can assert round-trips.
    """

    __slots__ = ("nbytes", "tag")

    def __init__(self, nbytes: int, tag: str = "") -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.nbytes = int(nbytes)
        self.tag = tag

    def __repr__(self) -> str:
        return f"Blob({self.nbytes}, tag={self.tag!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Blob)
            and other.nbytes == self.nbytes
            and other.tag == self.tag
        )

    def __hash__(self) -> int:
        return hash((self.nbytes, self.tag))

    def __getstate__(self) -> tuple[int, str]:
        sizes = getattr(_accumulator, "sizes", None)
        if sizes is not None:
            sizes.append(self.nbytes)
        return (self.nbytes, self.tag)

    def __setstate__(self, state: tuple[int, str]) -> None:
        self.nbytes, self.tag = state


@dataclass(frozen=True)
class Payload:
    """Pickled bytes plus the nominal wire size they represent.

    A *borrowed* payload rides the submit/result message inline instead of
    taking the second serialize/deserialize hop through the payload store
    (the paper's 20 kB redis/s3 split marks where that stops paying off).
    The bytes are the same object — borrow-don't-copy — so the cost model
    charges nothing for the hop that no longer happens.
    """

    data: bytes
    nominal_size: int
    borrowed: bool = False

    def __len__(self) -> int:
        return self.nominal_size


def borrow(payload: Payload) -> Payload:
    """Mark ``payload`` as riding the carrying message inline (zero-copy)."""
    if payload.borrowed:
        return payload
    return Payload(data=payload.data, nominal_size=payload.nominal_size, borrowed=True)


def serialize(obj: object) -> Payload:
    """Pickle ``obj``, accounting embedded :class:`Blob` sizes."""
    had = getattr(_accumulator, "sizes", None)
    _accumulator.sizes = []
    try:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pickle raises many distinct types
        raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
    finally:
        blob_bytes = sum(getattr(_accumulator, "sizes", []) or [])
        _accumulator.sizes = had
    return Payload(data=data, nominal_size=len(data) + blob_bytes)


def deserialize(payload: Payload | bytes) -> object:
    data = payload.data if isinstance(payload, Payload) else payload
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise SerializationError(f"cannot deserialize payload: {exc}") from exc


def nominal_size(obj: object) -> int:
    """Estimate the wire size of ``obj`` *without* resolving lazy proxies.

    Used by Colmena's proxy-threshold scan: inputs above a threshold are
    replaced by proxies, so the scan itself must be cheap and must treat an
    already-proxied argument as its (tiny) reference size.
    """
    # Import here to avoid a cycle (proxystore depends on this module).
    from repro.proxystore.proxy import Proxy, is_proxy

    if is_proxy(obj):
        return Proxy.REFERENCE_SIZE
    if isinstance(obj, Blob):
        return obj.nbytes
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, bool) or obj is None:
        return 1
    if isinstance(obj, (int, float, complex)):
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(nominal_size(v) for v in obj)
    if isinstance(obj, dict):
        return 8 + sum(nominal_size(k) + nominal_size(v) for k, v in obj.items())
    return serialize(obj).nominal_size


def serialize_cost(size: int, *, borrowed: bool = False) -> float:
    """Nominal CPU seconds to serialize ``size`` bytes.

    ``borrowed=True`` models the zero-copy fast path: the bytes already
    exist and ride the carrying message, so the hop costs nothing.
    """
    if borrowed:
        return 0.0
    return SERIALIZE_BASE_S + size / SERIALIZE_BANDWIDTH


def deserialize_cost(size: int, *, borrowed: bool = False) -> float:
    """Nominal CPU seconds to deserialize ``size`` bytes (same model)."""
    if borrowed:
        return 0.0
    return SERIALIZE_BASE_S + size / SERIALIZE_BANDWIDTH
