"""Simulated science substrates: chemistry oracle, water clusters, datasets."""

from repro.sim.chemistry import (
    MoleculeLibrary,
    SimulationRecord,
    TightBindingSimulator,
)
from repro.sim.datasets import (
    DftRecord,
    DftSimulator,
    hydronet_like_dataset,
    moses_like_library,
)
from repro.sim.water import (
    ATOM_C,
    ATOM_H,
    ATOM_O,
    PairPotential,
    Structure,
    make_test_set,
    make_water_cluster,
    maxwell_boltzmann_velocities,
    reference_potential,
    run_md,
    ttm_potential,
)

__all__ = [
    "MoleculeLibrary",
    "SimulationRecord",
    "TightBindingSimulator",
    "DftRecord",
    "DftSimulator",
    "hydronet_like_dataset",
    "moses_like_library",
    "ATOM_C",
    "ATOM_H",
    "ATOM_O",
    "PairPotential",
    "Structure",
    "make_test_set",
    "make_water_cluster",
    "maxwell_boltzmann_velocities",
    "reference_potential",
    "run_md",
    "ttm_potential",
]
