"""Molecule library + quantum-chemistry oracle for molecular design.

The paper screens 1 115 321 MOSES molecules for high ionization potential
(IP), with a ~60 s tight-binding pipeline (RDKit → geomeTRIC → xTB) as the
oracle.  The stand-ins:

* :class:`MoleculeLibrary` — a deterministic synthetic candidate set: each
  molecule is a fingerprint vector, and the hidden ground-truth IP surface
  is a random smooth function of it (a fixed random MLP "teacher") scaled to
  an IP-like distribution.  Learnable structure is the only property active
  learning needs from the real chemistry.
* :class:`TightBindingSimulator` — the expensive oracle: sleeps the task's
  simulated duration on the virtual clock, returns the ground-truth IP with
  a little method noise plus the ~1 MB of ancillary records the real
  pipeline produces (as a nominal-size blob).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.nn import MLP
from repro.net.clock import get_clock
from repro.serialize import Blob

__all__ = ["MoleculeLibrary", "SimulationRecord", "TightBindingSimulator"]


class MoleculeLibrary:
    """A synthetic MOSES-like candidate set.

    Parameters
    ----------
    n_molecules:
        Library size (the paper's is ~1.1 M; benchmarks use thousands).
    n_features:
        Fingerprint dimensionality.
    seed:
        Controls both fingerprints and the hidden IP surface.
    ip_mean / ip_std:
        Target distribution of true IPs (eV); the paper's success metric
        counts molecules above 14 eV, a high quantile of this distribution.
    """

    def __init__(
        self,
        n_molecules: int,
        n_features: int = 32,
        seed: int = 0,
        ip_mean: float = 11.0,
        ip_std: float = 1.6,
    ) -> None:
        if n_molecules <= 0:
            raise ValueError("n_molecules must be positive")
        self.n_molecules = n_molecules
        self.n_features = n_features
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._fingerprints = rng.normal(size=(n_molecules, n_features))
        # A fixed random network defines a smooth, learnable IP surface.
        teacher = MLP([n_features, 48, 48, 1], seed=seed + 1)
        raw = teacher.predict(self._fingerprints)
        raw_std = float(np.std(raw)) or 1.0
        self._true_ip = ip_mean + ip_std * (raw - float(np.mean(raw))) / raw_std

    def fingerprints(self, indices: np.ndarray | list[int] | None = None) -> np.ndarray:
        if indices is None:
            return self._fingerprints
        return self._fingerprints[np.asarray(indices, dtype=int)]

    def true_ip(self, index: int) -> float:
        """Ground truth — for oracles and final scoring only, never shown
        to the surrogate directly."""
        return float(self._true_ip[index])

    def true_ips(self, indices: np.ndarray | list[int] | None = None) -> np.ndarray:
        if indices is None:
            return self._true_ip.copy()
        return self._true_ip[np.asarray(indices, dtype=int)]

    def count_above(self, threshold: float) -> int:
        """How many library molecules truly exceed ``threshold`` eV."""
        return int(np.sum(self._true_ip > threshold))

    def top_quantile_threshold(self, quantile: float) -> float:
        """IP value at the given upper quantile (e.g. 0.02 -> 'top 2%')."""
        if not 0 < quantile < 1:
            raise ValueError("quantile must be in (0, 1)")
        return float(np.quantile(self._true_ip, 1.0 - quantile))

    def __len__(self) -> int:
        return self.n_molecules


@dataclass(frozen=True)
class SimulationRecord:
    """One oracle evaluation: the IP plus the pipeline's bulky artifacts."""

    molecule_index: int
    ip: float
    wall_time: float
    artifacts: Blob


class TightBindingSimulator:
    """The expensive simulation task (RDKit → geomeTRIC → xTB stand-in)."""

    def __init__(
        self,
        library: MoleculeLibrary,
        *,
        duration_mean: float = 60.0,
        duration_jitter: float = 0.15,
        method_noise: float = 0.05,
        artifact_bytes: int = 1_000_000,
        seed: int = 0,
    ) -> None:
        self.library = library
        self.duration_mean = duration_mean
        self.duration_jitter = duration_jitter
        self.method_noise = method_noise
        self.artifact_bytes = artifact_bytes
        self._seed = seed

    def compute_ip(self, molecule_index: int) -> SimulationRecord:
        """Run the oracle for one molecule (sleeps its simulated duration)."""
        rng = np.random.default_rng(self._seed + molecule_index)
        duration = self.duration_mean * float(
            np.exp(rng.normal(0.0, self.duration_jitter))
        )
        get_clock().sleep(duration)
        ip = self.library.true_ip(molecule_index) + float(
            rng.normal(0.0, self.method_noise)
        )
        return SimulationRecord(
            molecule_index=molecule_index,
            ip=ip,
            wall_time=duration,
            artifacts=Blob(self.artifact_bytes, tag="xtb-records"),
        )
