"""Dataset builders standing in for the paper's external data.

* MOSES / nCov-Group candidate set → :func:`moses_like_library`;
* HydroNet (TTM-computed water-cluster energies) → :func:`hydronet_like_dataset`,
  the 1720-structure pre-training corpus of §III-B;
* Psi4 DFT oracle → :class:`DftSimulator`, which evaluates the *reference*
  potential with method noise and a ~360 s simulated duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.clock import get_clock
from repro.serialize import Blob
from repro.sim.chemistry import MoleculeLibrary
from repro.sim.water import (
    PairPotential,
    Structure,
    make_water_cluster,
    reference_potential,
    run_md,
    ttm_potential,
)

__all__ = [
    "moses_like_library",
    "hydronet_like_dataset",
    "DftRecord",
    "DftSimulator",
]


def moses_like_library(
    n_molecules: int = 4000, seed: int = 0, n_features: int = 32
) -> MoleculeLibrary:
    """The synthetic stand-in for the 1.1 M-molecule MOSES candidate set."""
    return MoleculeLibrary(n_molecules, n_features=n_features, seed=seed)


def hydronet_like_dataset(
    n_structures: int = 1720,
    *,
    n_waters: int = 6,
    seed: int = 7,
    jitter: float = 0.08,
    potential: PairPotential | None = None,
) -> tuple[list[Structure], np.ndarray]:
    """Pre-training corpus: diverse water/methane clusters with energies
    from the approximate (TTM-like) method.

    Diversity comes from short ground-truth MD bursts at mixed temperatures
    from many random starts plus Gaussian position jitter, mimicking how
    HydroNet's minima+perturbations cover configuration space.
    """
    potential = potential or ttm_potential()
    reference = reference_potential()
    structures: list[Structure] = []
    rng = np.random.default_rng(seed)
    start_index = 0
    while len(structures) < n_structures:
        start = make_water_cluster(n_waters, seed=seed + start_index)
        temperature = float(rng.choice([100.0, 300.0, 600.0]))
        frames = run_md(
            start,
            reference.forces,
            n_steps=8,
            temperature=temperature,
            seed=seed + 31 * start_index,
            sample_every=2,
        )
        for frame in frames:
            if jitter > 0:
                frame.positions = frame.positions + rng.normal(
                    0.0, jitter, size=frame.positions.shape
                )
            structures.append(frame)
        start_index += 1
    structures = structures[:n_structures]
    energies = np.array([potential.energy(s) for s in structures])
    return structures, energies


@dataclass(frozen=True)
class DftRecord:
    """One DFT evaluation: energy, forces, and the small output artifact
    (§III-B: each task produces ~20 kB)."""

    energy: float
    forces: np.ndarray
    wall_time: float
    artifacts: Blob


class DftSimulator:
    """The Psi4 stand-in: reference potential + noise + ~360 s duration."""

    def __init__(
        self,
        *,
        duration_mean: float = 360.0,
        duration_jitter: float = 0.2,
        energy_noise: float = 0.01,
        force_noise: float = 0.005,
        artifact_bytes: int = 20_000,
        seed: int = 0,
    ) -> None:
        self.potential = reference_potential()
        self.duration_mean = duration_mean
        self.duration_jitter = duration_jitter
        self.energy_noise = energy_noise
        self.force_noise = force_noise
        self.artifact_bytes = artifact_bytes
        self._seed = seed
        self._counter = 0

    def compute(self, structure: Structure, seed: int | None = None) -> DftRecord:
        """Evaluate one structure (sleeps the simulated DFT duration)."""
        if seed is None:
            self._counter += 1
            seed = self._seed + self._counter
        rng = np.random.default_rng(seed)
        duration = self.duration_mean * float(
            np.exp(rng.normal(0.0, self.duration_jitter))
        )
        get_clock().sleep(duration)
        energy, forces = self.potential.energy_and_forces(structure)
        energy += float(rng.normal(0.0, self.energy_noise))
        forces = forces + rng.normal(0.0, self.force_noise, size=forces.shape)
        return DftRecord(
            energy=energy,
            forces=forces,
            wall_time=duration,
            artifacts=Blob(self.artifact_bytes, tag="psi4-output"),
        )
