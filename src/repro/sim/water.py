"""Water-cluster physics for the surrogate fine-tuning application.

The paper fine-tunes a SchNet model from approximate TTM energies to DFT
(Psi4, PBE0/aug-cc-pvdz) energies+forces of methane solvated in water.  The
stand-ins here are two parameterizations of one analytic cluster potential
(harmonic intramolecular bonds + soft-core Lennard-Jones + screened Coulomb,
all with closed-form forces):

* :func:`reference_potential` — the "DFT" ground truth;
* :func:`ttm_potential` — the cheap-but-biased pre-training oracle, with
  perturbed well depths/charges so models trained on it carry a systematic
  error that fine-tuning on reference data genuinely removes (the Fig. 7a
  before/after effect).

Also here: cluster generation, the molecular-dynamics sampler the *sampling*
tasks run (velocity Verlet with Maxwell-Boltzmann initialization and a weak
velocity-rescale thermostat), and the ground-truth test-set recipe (§III-B:
10 trajectories × {100, 300, 900} K × 32 steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "ATOM_O",
    "ATOM_H",
    "ATOM_C",
    "Structure",
    "PairPotential",
    "reference_potential",
    "ttm_potential",
    "make_water_cluster",
    "maxwell_boltzmann_velocities",
    "run_md",
    "make_test_set",
]

ATOM_O, ATOM_H, ATOM_C = 0, 1, 2
_MASSES = np.array([16.0, 1.0, 12.0])  # per type code, amu-ish
_SOFT_CORE = 0.15  # Å; keeps r -> 0 finite while staying differentiable


@dataclass
class Structure:
    """An atomic cluster: positions (N, 3), per-atom type codes, bonds."""

    positions: np.ndarray
    types: np.ndarray
    bonds: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        self.types = np.asarray(self.types, dtype=int)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must have shape (n_atoms, 3)")
        if self.types.shape != (self.positions.shape[0],):
            raise ValueError("types must have shape (n_atoms,)")

    @property
    def n_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def masses(self) -> np.ndarray:
        return _MASSES[self.types]

    def copy(self) -> "Structure":
        return Structure(self.positions.copy(), self.types.copy(), self.bonds)


def _soft_r(r2: np.ndarray) -> np.ndarray:
    return np.sqrt(r2 + _SOFT_CORE * _SOFT_CORE)


@dataclass(frozen=True)
class PairPotential:
    """Harmonic bonds + soft-core LJ + screened Coulomb, analytic forces.

    Per-species parameters index by type code (O=0, H=1, C=2).  Non-bonded
    terms apply to every non-bonded pair; LJ parameters combine by
    Lorentz-Berthelot rules.
    """

    bond_k: float = 22.0  # eV / Å^2
    bond_r0: tuple[float, ...] = (0.96, 0.96, 1.09)  # keyed by heavy-atom type
    lj_epsilon: tuple[float, ...] = (0.012, 0.003, 0.010)  # per type, eV
    lj_sigma: tuple[float, ...] = (3.15, 1.80, 3.40)  # per type, Å
    charges: tuple[float, ...] = (-0.82, 0.41, -0.40)  # per type, e
    coulomb_k: float = 2.2  # screened eV·Å/e^2
    #: Added to every pair energy channel; lets variants shift the surface.
    offset_per_atom: float = 0.0

    def _bond_r0(self, ti: int, tj: int) -> float:
        heavy = ti if ti != ATOM_H else tj
        return self.bond_r0[heavy]

    def energy_and_forces(self, structure: Structure) -> tuple[float, np.ndarray]:
        x = structure.positions
        t = structure.types
        n = structure.n_atoms
        forces = np.zeros_like(x)
        energy = self.offset_per_atom * n

        bonded = np.zeros((n, n), dtype=bool)
        for i, j in structure.bonds:
            bonded[i, j] = bonded[j, i] = True

        i_idx, j_idx = np.triu_indices(n, k=1)
        vec = x[i_idx] - x[j_idx]
        r2 = np.sum(vec * vec, axis=1)
        s = _soft_r(r2)
        r = np.sqrt(np.maximum(r2, 1e-12))
        # dV/dx_i = (dV/ds)(ds/dr)(dr/dx_i); ds/dr = r/s, dr/dx_i = vec/r,
        # so the chain collapses to (dV/ds) * vec / s.
        dv_ds = np.zeros_like(s)
        pair_bonded = bonded[i_idx, j_idx]

        # Harmonic bonds, on the softened distance for consistency.
        if pair_bonded.any():
            r0 = np.array(
                [
                    self._bond_r0(int(t[i]), int(t[j]))
                    for i, j in zip(i_idx[pair_bonded], j_idx[pair_bonded])
                ]
            )
            delta = s[pair_bonded] - r0
            energy += float(np.sum(self.bond_k * delta * delta))
            dv_ds[pair_bonded] += 2.0 * self.bond_k * delta

        nb = ~pair_bonded
        if nb.any():
            eps_i = np.asarray(self.lj_epsilon)[t[i_idx[nb]]]
            eps_j = np.asarray(self.lj_epsilon)[t[j_idx[nb]]]
            sig_i = np.asarray(self.lj_sigma)[t[i_idx[nb]]]
            sig_j = np.asarray(self.lj_sigma)[t[j_idx[nb]]]
            eps = np.sqrt(eps_i * eps_j)
            sig = 0.5 * (sig_i + sig_j)
            sn = s[nb]
            # Soft-core LJ: u = sigma^6 / (s^6 + alpha*sigma^6) bounds the
            # repulsive wall (u <= 1/alpha), keeping energies finite and
            # learnable even for the occasional overlapping geometry.
            alpha = 0.5
            sig6 = sig**6
            denom = sn**6 + alpha * sig6
            u = sig6 / denom
            energy += float(np.sum(4.0 * eps * (u * u - u)))
            du_ds = -6.0 * sn**5 * u * u / sig6
            dv_ds[nb] += 4.0 * eps * (2.0 * u - 1.0) * du_ds

            q = np.asarray(self.charges)
            qq = q[t[i_idx[nb]]] * q[t[j_idx[nb]]]
            energy += float(np.sum(self.coulomb_k * qq / sn))
            dv_ds[nb] += -self.coulomb_k * qq / (sn * sn)

        pair_force = -(dv_ds / s)[:, None] * vec  # force on atom i of the pair
        np.add.at(forces, i_idx, pair_force)
        np.add.at(forces, j_idx, -pair_force)
        return energy, forces

    def energy(self, structure: Structure) -> float:
        return self.energy_and_forces(structure)[0]

    def forces(self, structure: Structure) -> np.ndarray:
        return self.energy_and_forces(structure)[1]


def reference_potential() -> PairPotential:
    """The 'DFT' ground truth."""
    return PairPotential()


def ttm_potential() -> PairPotential:
    """The cheap pre-training oracle: systematically biased parameters."""
    return PairPotential(
        bond_k=18.0,
        bond_r0=(1.00, 1.00, 1.13),
        lj_epsilon=(0.017, 0.0045, 0.014),
        lj_sigma=(2.95, 1.65, 3.20),
        charges=(-0.58, 0.29, -0.26),
        coulomb_k=1.5,
        offset_per_atom=0.02,
    )


def make_water_cluster(
    n_waters: int = 6, *, with_methane: bool = True, seed: int = 0
) -> Structure:
    """A plausible (not minimized) cluster: waters around an optional
    methane solute, molecules placed on a jittered shell."""
    rng = np.random.default_rng(seed)
    positions: list[np.ndarray] = []
    types: list[int] = []
    bonds: list[tuple[int, int]] = []

    def add_molecule(center: np.ndarray, kind: str) -> None:
        base = len(types)
        if kind == "water":
            positions.append(center)
            types.append(ATOM_O)
            # Two O-H arms at ~104.5 degrees, randomly oriented.
            axis = rng.normal(size=3)
            axis /= np.linalg.norm(axis)
            perp = np.cross(axis, rng.normal(size=3))
            perp /= np.linalg.norm(perp)
            half = np.deg2rad(104.5 / 2)
            for sign in (+1.0, -1.0):
                direction = np.cos(half) * axis + sign * np.sin(half) * perp
                positions.append(center + 0.96 * direction)
                types.append(ATOM_H)
                bonds.append((base, len(types) - 1))
        else:  # methane
            positions.append(center)
            types.append(ATOM_C)
            tet = np.array(
                [[1, 1, 1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1]], dtype=float
            )
            tet /= np.linalg.norm(tet[0])
            for row in tet:
                positions.append(center + 1.09 * row)
                types.append(ATOM_H)
                bonds.append((base, len(types) - 1))

    centers: list[np.ndarray] = []
    if with_methane:
        add_molecule(np.zeros(3), "methane")
        centers.append(np.zeros(3))
    for k in range(n_waters):
        # Rejection-sample a center at least ~3 Å from every placed molecule
        # so generated clusters start outside the repulsive walls.
        for _ in range(200):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            radius = 3.4 + 1.2 * rng.random() + 0.8 * k ** (1 / 2)
            center = radius * direction
            if all(np.linalg.norm(center - c) >= 3.0 for c in centers):
                break
        add_molecule(center, "water")
        centers.append(center)
    return Structure(np.array(positions), np.array(types), tuple(bonds))


def maxwell_boltzmann_velocities(
    structure: Structure, temperature: float, seed: int = 0
) -> np.ndarray:
    """Velocities at ``temperature`` (K), in the potential's natural units.

    kB is folded into an effective constant chosen so the simulation's
    energy scale behaves sensibly; absolute temperature calibration is not
    needed for the reproduction (only relative 100/300/900 K diversity).
    """
    rng = np.random.default_rng(seed)
    kb = 8.617e-5  # eV/K
    sigma = np.sqrt(kb * max(temperature, 1e-9) / structure.masses)
    velocities = rng.normal(size=structure.positions.shape) * sigma[:, None]
    velocities -= velocities.mean(axis=0)  # zero net momentum
    return velocities


def run_md(
    structure: Structure,
    force_fn: Callable[[Structure], np.ndarray],
    n_steps: int,
    *,
    dt: float = 0.5e-2,
    temperature: float = 100.0,
    seed: int = 0,
    sample_every: int = 1,
    rescale_every: int = 20,
) -> list[Structure]:
    """Velocity-Verlet MD driven by ``force_fn``; returns sampled frames.

    This is what a *sampling* task runs, with the trained surrogate
    providing ``force_fn`` — so few steps give little diversity and many
    steps accumulate model error, the §III-B trade-off.
    """
    if n_steps <= 0:
        raise ValueError("n_steps must be positive")
    current = structure.copy()
    velocities = maxwell_boltzmann_velocities(current, temperature, seed)
    masses = current.masses[:, None]
    forces = np.clip(force_fn(current), -50.0, 50.0)
    kb = 8.617e-5
    frames: list[Structure] = []
    for step in range(1, n_steps + 1):
        velocities = velocities + 0.5 * dt * forces / masses
        current.positions = current.positions + dt * velocities
        forces = np.clip(force_fn(current), -50.0, 50.0)
        velocities = velocities + 0.5 * dt * forces / masses
        if rescale_every and step % rescale_every == 0 and temperature > 0:
            kinetic = 0.5 * np.sum(masses * velocities * velocities)
            dof = max(3 * current.n_atoms - 3, 1)
            current_t = 2.0 * kinetic / (dof * kb)
            if current_t > 1e-12:
                velocities *= np.sqrt(temperature / current_t)
        if step % sample_every == 0:
            frames.append(current.copy())
    return frames


def make_test_set(
    potential: PairPotential | None = None,
    *,
    n_trajectories: int = 10,
    temperatures: tuple[float, ...] = (100.0, 300.0, 900.0),
    n_steps: int = 32,
    n_waters: int = 6,
    seed: int = 1234,
) -> list[tuple[Structure, float, np.ndarray]]:
    """§III-B's held-out test set: ground-truth MD frames with energies and
    forces, unseen by any training run."""
    potential = potential or reference_potential()
    out: list[tuple[Structure, float, np.ndarray]] = []
    for traj in range(n_trajectories):
        start = make_water_cluster(n_waters, seed=seed + traj)
        for temperature in temperatures:
            frames = run_md(
                start,
                potential.forces,
                n_steps,
                temperature=temperature,
                seed=seed + 17 * traj + int(temperature),
                sample_every=max(n_steps // 4, 1),
            )
            for frame in frames:
                energy, forces = potential.energy_and_forces(frame)
                out.append((frame, energy, forces))
    return out
