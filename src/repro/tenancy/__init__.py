"""repro.tenancy — the sharded, multi-tenant cloud control plane.

The funcX web service is one hosted deployment serving many research
campaigns.  This package reproduces that multi-tenancy on top of
:mod:`repro.faas`:

* :class:`CloudRouter` — the client/endpoint-facing front door.  It speaks
  the full :class:`repro.faas.cloud.FaasCloud` API, so ``FaasClient`` and
  ``FaasEndpoint`` work against a router or a bare cloud interchangeably.
* :class:`CloudShard` — one partition of control-plane state (function
  registry, task queues, payload store), a thin specialization of
  ``FaasCloud`` wired into the shared bus/completed-feed fabric.
* :class:`HashRing` / :func:`partition_key` — consistent hashing over
  ``(tenant, function)`` that assigns every partition to exactly one shard.
* :class:`TenantRegistry` and friends — tenant directory, quotas,
  token-bucket rate limits, and fair-share weights.

Import note: :mod:`repro.faas.cloud` imports :mod:`repro.tenancy.tenant`
(validation + the default tenant name), so the router/shard — which import
``repro.faas.cloud`` — are exposed lazily here to keep the package cycle-free.
"""

from __future__ import annotations

from repro.tenancy.hashring import HashRing, partition_key
from repro.tenancy.tenant import (
    DEFAULT_TENANT,
    Tenant,
    TenantQuota,
    TenantRegistry,
    TenantUsage,
    TokenBucket,
    render_tenant_table,
    tenant_scope,
    validate_function_name,
    validate_tenant_name,
)

__all__ = [
    "CloudRouter",
    "CloudShard",
    "HashRing",
    "partition_key",
    "DEFAULT_TENANT",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TenantUsage",
    "TokenBucket",
    "render_tenant_table",
    "tenant_scope",
    "validate_function_name",
    "validate_tenant_name",
]


def __getattr__(name: str):
    # Lazy: router/shard import repro.faas.cloud, which imports
    # repro.tenancy.tenant — eager imports here would close a cycle.
    if name == "CloudRouter":
        from repro.tenancy.router import CloudRouter

        return CloudRouter
    if name == "CloudShard":
        from repro.tenancy.shard import CloudShard

        return CloudShard
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
