"""Consistent hashing for the sharded control plane.

State at the cloud — function registry entries, task queues, result-store
objects — is partitioned across shards by the key ``"<tenant>/<function>"``,
so one submit touches exactly one shard (registry check, payload write, and
queue append all live together) and the shard set can grow without a global
re-shuffle: a ring with ``replicas`` virtual nodes per shard moves only
about ``1/(N+1)`` of the keyspace when an (N+1)-th shard joins, which the
Function-Delivery-Network-style router relies on to scale horizontally.

Hashing is SHA-256-based (:mod:`hashlib`), never the salted builtin
``hash``, so placement is identical across processes and runs — a property
the chaos campaign's ledger-digest determinism check depends on.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.exceptions import WorkflowError

__all__ = ["HashRing", "partition_key"]


def partition_key(tenant: str, func_id: str) -> str:
    """The ring key for one (tenant, function) partition."""
    return f"{tenant}/{func_id}"


def _point(text: str) -> int:
    """Map ``text`` to a stable position on the 64-bit ring."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring of named nodes with virtual replicas.

    Not thread-safe by itself; the router mutates it only at construction
    and under its own lock when shards join or leave.
    """

    def __init__(self, nodes: list[str] | None = None, *, replicas: int = 64) -> None:
        if replicas <= 0:
            raise WorkflowError(f"replicas must be positive, got {replicas}")
        self._replicas = replicas
        self._points: list[int] = []  # sorted ring positions
        self._owners: dict[int, str] = {}  # position -> node name
        self._nodes: set[str] = set()
        for node in nodes or ():
            self.add_node(node)

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise WorkflowError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for replica in range(self._replicas):
            point = _point(f"{node}#{replica}")
            # A 64-bit collision between distinct (node, replica) labels is
            # vanishingly unlikely; first writer keeps the point.
            if point not in self._owners:
                self._owners[point] = node
                bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise WorkflowError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        for point, owner in list(self._owners.items()):
            if owner == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def node_for(self, key: str) -> str:
        """The node owning ``key``: the first ring point at or clockwise
        after the key's own position (wrapping at the top)."""
        if not self._points:
            raise WorkflowError("hash ring has no nodes")
        point = _point(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]
