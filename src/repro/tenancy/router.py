"""The front door of the sharded control plane.

:class:`CloudRouter` speaks the same API as
:class:`repro.faas.cloud.FaasCloud`, so existing clients and endpoints work
against it unchanged, but behind it state is partitioned across N
:class:`~repro.tenancy.shard.CloudShard` services by consistent hashing
over ``(tenant, function)`` — the Function-Delivery-Network shape: one
submit touches exactly one shard (registry check, payload write, queue
append all live together), and aggregate admission throughput scales with
the shard count because each shard's serialized admission cost is paid
independently.

The router is also where multi-tenancy is *enforced*:

* every submit passes the tenant's token-bucket rate limit and quotas
  (:meth:`TenantRegistry.admit_submit`) before touching a shard, raising
  HTTP-429-shaped retryable :class:`~repro.exceptions.ThrottledError`
  subclasses the client SDK backs off on;
* the ``cloud.shard.drop`` chaos hook fires here — at admission, on the
  content-derived submit key — opening a bounded outage window during
  which that shard's partitions throttle while its durable state
  (queues, payload store, task records) survives untouched.

Routing back is prefix-based, no lookup tables: shard ``s2`` mints task
ids ``task-s2-...`` and payload locators ``s2/redis:...``, so any id
resolves to its owner by parsing alone.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import uuid
from typing import TYPE_CHECKING

from repro.bus import NotificationBus
from repro.chaos.plan import chaos_check
from repro.chaos.policy import RetryPolicy
from repro.exceptions import ReproError, ShardUnavailableError, WorkflowError
from repro.faas.auth import SCOPE_COMPUTE, AuthServer, Token
from repro.faas.cloud import (
    TaskDispatch,
    TaskRecord,
    TaskStatus,
    TaskSubmission,
    _CompletedFeed,
    task_topic,
)
from repro.net.clock import Clock, get_clock
from repro.net.defaults import ROUTER_FETCH_POLL, PaperConstants
from repro.net.topology import Network, Site
from repro.observe import TraceContext, counter_inc
from repro.serialize import Payload
from repro.tenancy.hashring import HashRing, partition_key
from repro.tenancy.shard import CloudShard
from repro.tenancy.tenant import (
    DEFAULT_TENANT,
    Tenant,
    TenantQuota,
    TenantRegistry,
    tenant_scope,
    validate_function_name,
    validate_tenant_name,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.durable import RecoveryReport

__all__ = ["CloudRouter"]

#: Nominal seconds between re-polls of the shard set while a fetch
#: long-poll waits for work (a doorbell via ``_wake`` cuts this short).
#: Named in ``repro.net.defaults`` alongside the client-loop intervals.
_FETCH_POLL = ROUTER_FETCH_POLL


class _RoutedStore:
    """Locator-prefix routing facade over the shards' payload stores.

    Endpoints read argument payloads through ``cloud.store`` directly; with
    shards, the locator's ``<shard>/`` prefix says which store owns the
    bytes.  Writes happen inside shard code paths only, never through the
    facade."""

    def __init__(self, router: "CloudRouter") -> None:
        self._router = router

    def _shard_store(self, locator: str):
        shard_id, sep, _ = locator.partition("/")
        if not sep:
            raise WorkflowError(
                f"locator {locator!r} carries no shard prefix; it was not "
                "minted by this router"
            )
        return self._router.shard(shard_id).store

    def read(self, locator: str) -> Payload:
        return self._shard_store(locator).read(locator)

    def delete(self, locator: str) -> None:
        self._shard_store(locator).delete(locator)

    def write(self, payload: Payload, *, chaos_exempt: bool = False) -> str:
        raise WorkflowError(
            "the routed store is read-only; payloads are written by the "
            "owning shard during submit/report"
        )


class CloudRouter:
    """N shards behind one ``FaasCloud``-shaped API."""

    def __init__(
        self,
        site: Site,
        network: Network,
        auth: AuthServer,
        constants: PaperConstants | None = None,
        clock: Clock | None = None,
        *,
        n_shards: int = 2,
        registry: TenantRegistry | None = None,
        journal_factory: object | None = None,
        health_policy: object | None = None,
        poison_policy: object | None = None,
    ) -> None:
        """``journal_factory`` (shard_id -> :class:`repro.durable.Journal`)
        gives every shard a write-ahead journal; with one attached,
        :meth:`crash_shard` can discard a shard's entire in-memory state and
        rebuild it from snapshot + log replay with zero lost tasks.

        ``health_policy`` / ``poison_policy`` (a
        :class:`repro.resilience.HealthPolicy` /
        :class:`repro.resilience.PoisonPolicy`) turn on circuit breaking and
        poison-task quarantine: the router builds ONE tracker per kind and
        hands it to every shard, so health signals and poison strikes
        accumulate fleet-wide no matter which shard observes them."""
        if n_shards < 1:
            raise WorkflowError(f"n_shards must be >= 1, got {n_shards}")
        self.site = site
        self.network = network
        self.auth = auth
        self.constants = constants or PaperConstants()
        self.clock = clock or get_clock()
        self.registry = registry if registry is not None else TenantRegistry(self.clock)
        # One delivery fabric for every shard: a single bus (doorbells,
        # result notifications) and a single completed feed (client polls).
        self.bus = NotificationBus(
            clock=self.clock,
            redelivery=RetryPolicy(
                max_attempts=6,
                base_delay=self.constants.bus_redelivery_base,
                max_delay=self.constants.bus_redelivery_max,
            ),
            lease_ttl=self.constants.bus_lease_ttl,
            window=self.constants.bus_redelivery_window,
        )
        self._completed = _CompletedFeed(self.clock)
        self.store = _RoutedStore(self)
        self._lock = threading.Lock()
        # Doorbell for fetch long-polls: bumped whenever any shard enqueues.
        self._wake = threading.Condition()
        self._wake_seq = 0
        self._fetch_rotation = itertools.count()
        self._ring = HashRing()
        self._shards: dict[str, CloudShard] = {}
        #: func_id -> (tenant, payload); kept so registrations can follow
        #: their partition when the ring changes (see :meth:`add_shard`).
        self._registrations: dict[str, tuple[str, Payload]] = {}
        self._endpoints: dict[str, tuple[Site, str | None]] = {}
        #: shard id -> nominal time its outage window ends.
        self._outages: dict[str, float] = {}
        self._journal_factory = journal_factory
        if health_policy is not None:
            from repro.resilience import EndpointHealthTracker

            self.health = EndpointHealthTracker(health_policy)
        else:
            self.health = None
        if poison_policy is not None:
            from repro.resilience import PoisonTracker

            self.poison = PoisonTracker(poison_policy)
        else:
            self.poison = None
        for _ in range(n_shards):
            self._add_shard_locked()

    # -- shard set ------------------------------------------------------------
    def _build_shard(self, shard_id: str, journal: object | None) -> CloudShard:
        return CloudShard(
            shard_id,
            self.site,
            self.network,
            self.auth,
            self.constants,
            self.clock,
            bus=self.bus,
            completed=self._completed,
            registry=self.registry,
            on_enqueue=self._notify_enqueue,
            journal=journal,
            health=self.health,
            poison=self.poison,
        )

    def _add_shard_locked(self) -> str:
        shard_id = f"s{len(self._shards)}"
        journal = (
            self._journal_factory(shard_id) if self._journal_factory is not None else None
        )
        shard = self._build_shard(shard_id, journal)
        self._shards[shard_id] = shard
        self._ring.add_node(shard_id)
        return shard_id

    def crash_shard(self, shard_id: str) -> "RecoveryReport":
        """Hard-crash one shard: discard its entire in-memory state and
        rebuild a replacement from its journal (snapshot + log replay).

        Unlike an outage window — where the old instance's state survives
        untouched — nothing of the old object is reused except the journal
        itself and the shared fabric (bus, completed feed, usage registry).
        Returns the replay's :class:`~repro.durable.RecoveryReport`.
        """
        from repro.durable import recover_cloud

        with self._lock:
            old = self._shards.get(shard_id)
        if old is None:
            raise WorkflowError(f"unknown shard {shard_id!r}")
        if old.journal is None:
            raise WorkflowError(
                f"shard {shard_id} has no journal; its state is unrecoverable "
                "(construct the router with journal_factory=...)"
            )
        fresh = self._build_shard(shard_id, old.journal)
        report = recover_cloud(fresh)
        with self._lock:
            self._shards[shard_id] = fresh
        # Re-leased doorbells were published during replay; wake any fetch
        # long-polls so they notice the rebuilt queues immediately.
        self._notify_enqueue()
        return report

    def add_shard(self) -> str:
        """Grow the shard set by one; registrations whose partition moved
        follow their key to the new owner (about ``1/(N+1)`` of them, the
        consistent-hashing guarantee).  Outstanding tasks stay where they
        are — task ids route by prefix, not by ring."""
        with self._lock:
            before = {
                func_id: self._ring.node_for(partition_key(tenant, func_id))
                for func_id, (tenant, _) in self._registrations.items()
            }
            shard_id = self._add_shard_locked()
            moved = 0
            for func_id, (tenant, payload) in self._registrations.items():
                owner = self._ring.node_for(partition_key(tenant, func_id))
                if owner != before[func_id]:
                    self._shards[owner].adopt_function(func_id, tenant, payload)
                    moved += 1
            for endpoint_id, (site, group) in self._endpoints.items():
                self._shards[shard_id].adopt_endpoint(
                    endpoint_id, site, failover_group=group
                )
        counter_inc("cloud.shards_added", shard=shard_id, moved=moved)
        return shard_id

    @property
    def shard_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    def shard(self, shard_id: str) -> CloudShard:
        with self._lock:
            try:
                return self._shards[shard_id]
            except KeyError:
                raise WorkflowError(f"unknown shard {shard_id!r}") from None

    def _shard_for_partition(self, tenant: str, func_id: str) -> str:
        with self._lock:
            return self._ring.node_for(partition_key(tenant, func_id))

    def _shard_for_task(self, task_id: str) -> CloudShard:
        # task ids look like ``task-s3-00000042``.
        parts = task_id.split("-")
        if len(parts) >= 3:
            with self._lock:
                shard = self._shards.get(parts[1])
            if shard is not None:
                return shard
        raise WorkflowError(f"unknown task {task_id!r}")

    def _notify_enqueue(self) -> None:
        with self._wake:
            self._wake_seq += 1
            self._wake.notify_all()

    # -- tenants --------------------------------------------------------------
    def create_tenant(
        self,
        name: str,
        *,
        weight: int = 1,
        quota: TenantQuota | None = None,
        rate: float | None = None,
        burst: float | None = None,
    ) -> Tenant:
        return self.registry.create(
            name, weight=weight, quota=quota, rate=rate, burst=burst
        )

    # -- outages --------------------------------------------------------------
    def _begin_outage(self, shard_id: str) -> float:
        window = self.constants.shard_outage_window
        with self._lock:
            self._outages[shard_id] = self.clock.now() + window
        return window

    def _recover_outages(self) -> None:
        """Clear elapsed outage windows; a recovering shard re-rings the
        doorbells for its queued backlog (the originals were acked against
        empty fetches while the router skipped the dark shard)."""
        now = self.clock.now()
        with self._lock:
            recovered = [
                shard_id
                for shard_id, until in self._outages.items()
                if until <= now
            ]
            for shard_id in recovered:
                del self._outages[shard_id]
        for shard_id in recovered:
            counter_inc("cloud.shard_recoveries", shard=shard_id)
            self.shard(shard_id).republish_doorbells()

    def _check_available(self, shard_id: str) -> None:
        with self._lock:
            until = self._outages.get(shard_id)
        if until is None:
            return
        remaining = until - self.clock.now()
        if remaining <= 0:
            self._recover_outages()
            return
        raise ShardUnavailableError(
            f"shard {shard_id} is restarting; retry in {remaining:.3f}s",
            retry_after=remaining,
        )

    def _dark_shards(self) -> set[str]:
        now = self.clock.now()
        with self._lock:
            return {sid for sid, until in self._outages.items() if until > now}

    # -- registry -------------------------------------------------------------
    def register_function(
        self,
        token: Token,
        payload: Payload,
        *,
        tenant: str = DEFAULT_TENANT,
        name: str | None = None,
        func_id: str | None = None,
    ) -> str:
        """Register a function for ``tenant`` on the shard owning its
        partition.  The id is minted *here* — it must exist before the
        ring can place the registration."""
        self.auth.validate(token, SCOPE_COMPUTE)
        validate_tenant_name(tenant)
        if tenant != DEFAULT_TENANT:
            self.auth.validate(token, tenant_scope(tenant))
        if name is not None:
            validate_function_name(name)
        if func_id is None:
            stem = f"fn-{name}-" if name else "fn-"
            func_id = f"{stem}{uuid.uuid4().hex[:12]}"
        shard_id = self._shard_for_partition(tenant, func_id)
        self._check_available(shard_id)
        result = self.shard(shard_id).register_function(
            token, payload, tenant=tenant, name=name, func_id=func_id
        )
        with self._lock:
            self._registrations[func_id] = (tenant, payload)
        return result

    def get_function(
        self, token: Token, func_id: str, tenant: str = DEFAULT_TENANT
    ) -> Payload:
        shard_id = self._shard_for_partition(tenant, func_id)
        return self.shard(shard_id).get_function(token, func_id, tenant)

    # -- endpoints ------------------------------------------------------------
    def register_endpoint(
        self,
        token: Token,
        name: str,
        site: Site,
        *,
        failover_group: str | None = None,
    ) -> str:
        """Adopt the endpoint into *every* shard (any partition may
        dispatch to any endpoint) with one shared bus subscription."""
        self.auth.validate(token, SCOPE_COMPUTE)
        endpoint_id = f"ep-{name}-{uuid.uuid4().hex[:8]}"
        with self._lock:
            self._endpoints[endpoint_id] = (site, failover_group)
            shards = list(self._shards.values())
        for shard in shards:
            shard.adopt_endpoint(endpoint_id, site, failover_group=failover_group)
        self.bus.register_subscriber(
            task_topic(endpoint_id), endpoint_id, chaos_label=name
        )
        return endpoint_id

    def _any_shard(self) -> CloudShard:
        with self._lock:
            return next(iter(self._shards.values()))

    def _all_shards(self) -> list[CloudShard]:
        with self._lock:
            return list(self._shards.values())

    def endpoint_site(self, endpoint_id: str) -> Site:
        return self._any_shard().endpoint_site(endpoint_id)

    def set_endpoint_online(self, endpoint_id: str, online: bool) -> None:
        for shard in self._all_shards():
            shard.set_endpoint_online(endpoint_id, online)

    def endpoint_online(self, endpoint_id: str) -> bool:
        return self._any_shard().endpoint_online(endpoint_id)

    def heartbeat(self, token: Token, endpoint_id: str) -> float:
        expiry = 0.0
        for shard in self._all_shards():
            expiry = max(expiry, shard.heartbeat(token, endpoint_id))
        return expiry

    def lease_valid(self, endpoint_id: str) -> bool:
        return self._any_shard().lease_valid(endpoint_id)

    def release_lease(self, token: Token, endpoint_id: str) -> None:
        for shard in self._all_shards():
            shard.release_lease(token, endpoint_id)

    def expire_leases(self) -> list[str]:
        reaped: list[str] = []
        for shard in self._all_shards():
            reaped.extend(shard.expire_leases())
        return sorted(set(reaped))

    # -- client side ----------------------------------------------------------
    def submit(
        self,
        token: Token,
        client_id: str,
        func_id: str,
        endpoint_id: str,
        args_payload: Payload,
        *,
        tenant: str = DEFAULT_TENANT,
        trace_ctx: TraceContext | None = None,
        chaos_key: str | None = None,
        prefetch: tuple = (),
        deadline_at: float | None = None,
    ) -> str:
        """Admission: tenant auth → shard health → rate/quota → shard.

        The reservation (:meth:`TenantRegistry.admit_submit`) is released
        if the shard rejects the submit downstream, so a payload-cap
        rejection does not leak in-flight headroom."""
        self.auth.validate(token, SCOPE_COMPUTE)
        validate_tenant_name(tenant)
        if tenant != DEFAULT_TENANT:
            self.auth.validate(token, tenant_scope(tenant))
        self._recover_outages()
        shard_id = self._shard_for_partition(tenant, func_id)
        # Content-derived key, attempt suffix stripped: every resubmission
        # of the same task is the *same* drop event, so a throttle-retry
        # loop cannot re-fire the fault and the ledger stays deterministic.
        base_key = chaos_key or f"{client_id}|{func_id}"
        base_key = base_key.split("#a", 1)[0]
        spec = chaos_check("cloud.shard.drop", base_key, shard=shard_id, tenant=tenant)
        if spec is not None:
            window = self._begin_outage(shard_id)
            counter_inc("cloud.shard_outages", shard=shard_id)
            raise ShardUnavailableError(
                f"injected fault {spec.mode!r}: shard {shard_id} dropped at "
                f"admission; retry in {window:.3f}s",
                retry_after=window,
            )
        # Harder than a drop: the shard process dies and its in-memory state
        # is *discarded*.  The replacement is rebuilt synchronously from the
        # shard's write-ahead journal; the submit itself throttles (it was
        # never admitted) and the client's backoff retries it against the
        # recovered shard.  Same attempt-stripped key: one crash per task.
        spec = chaos_check("cloud.shard.crash", base_key, shard=shard_id, tenant=tenant)
        if spec is not None:
            counter_inc("cloud.shard_crashes", shard=shard_id)
            report = self.crash_shard(shard_id)
            raise ShardUnavailableError(
                f"injected fault {spec.mode!r}: shard {shard_id} crashed at "
                f"admission and was rebuilt from its journal "
                f"({report.replayed} records, {report.recovery_s:.3f}s); "
                "retry now",
                retry_after=max(spec.delay, 0.05),
            )
        self._check_available(shard_id)
        self.registry.admit_submit(tenant, args_payload.nominal_size)
        try:
            return self.shard(shard_id).submit(
                token,
                client_id,
                func_id,
                endpoint_id,
                args_payload,
                tenant=tenant,
                trace_ctx=trace_ctx,
                chaos_key=chaos_key,
                prefetch=prefetch,
                deadline_at=deadline_at,
            )
        except BaseException:
            self.registry.release_submit(tenant, args_payload.nominal_size)
            raise

    def submit_batch(
        self,
        token: Token,
        client_id: str,
        items: list[TaskSubmission],
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> list:
        """Route a coalesced batch: one auth, one quota reservation and one
        shard call per shard group (functions hash to shards, so a mixed
        batch scatters into per-shard sub-batches).  Returns task ids or
        per-task errors aligned with ``items``, like
        :meth:`FaasCloud.submit_batch`.
        """
        self.auth.validate(token, SCOPE_COMPUTE)
        validate_tenant_name(tenant)
        if tenant != DEFAULT_TENANT:
            self.auth.validate(token, tenant_scope(tenant))
        self._recover_outages()
        results: list = [None] * len(items)
        groups: dict[str, list[int]] = {}
        for i, item in enumerate(items):
            shard_id = self._shard_for_partition(tenant, item.func_id)
            groups.setdefault(shard_id, []).append(i)
        for shard_id in sorted(groups):
            indexes = groups[shard_id]
            group_items = [items[i] for i in indexes]
            total_bytes = sum(it.args_payload.nominal_size for it in group_items)
            try:
                self._check_available(shard_id)
                # One reservation covers the whole sub-batch (one rate
                # token; all members' in-flight slots, atomically).
                self.registry.admit_batch(tenant, len(indexes), total_bytes)
            except ReproError as exc:
                for i in indexes:
                    results[i] = exc
                continue
            try:
                shard_results = self.shard(shard_id).submit_batch(
                    token, client_id, group_items, tenant=tenant
                )
            except BaseException:
                self.registry.release_batch(tenant, len(indexes), total_bytes)
                raise
            rejected = rejected_bytes = 0
            for i, res in zip(indexes, shard_results):
                results[i] = res
                if isinstance(res, Exception):
                    rejected += 1
                    rejected_bytes += items[i].args_payload.nominal_size
            if rejected:
                self.registry.release_batch(tenant, rejected, rejected_bytes)
            # The mid-batch crash window: the shard has fsync'd ONE WAL
            # record for the whole batch and populated its queues, but no
            # caller has seen a task id yet.  Key the fault on a digest of
            # the batch's attempt-stripped member keys so identical runs
            # crash on the identical batch.
            member_keys = sorted(
                (it.chaos_key or f"{client_id}|{it.func_id}").split("#a", 1)[0]
                for it in group_items
            )
            digest = hashlib.sha256("|".join(member_keys).encode()).hexdigest()[:16]
            spec = chaos_check(
                "cloud.batch.flush", digest, shard=shard_id, tenant=tenant
            )
            if spec is not None:
                counter_inc("cloud.batch_crashes", shard=shard_id)
                # The rebuilt shard replays the batch record per task —
                # the ids already in ``results`` stay valid.
                self.crash_shard(shard_id)
        return results

    def task(self, task_id: str) -> TaskRecord:
        return self._shard_for_task(task_id).task(task_id)

    def task_records(self) -> list[TaskRecord]:
        records: list[TaskRecord] = []
        for shard in self._all_shards():
            records.extend(shard.task_records())
        return records

    def queue_depth(self, endpoint_id: str) -> int:
        """Waiting tasks for ``endpoint_id`` summed over every shard."""
        return sum(shard.queue_depth(endpoint_id) for shard in self._all_shards())

    def tenant_backlog(self, endpoint_id: str) -> dict[str, int]:
        """Per-tenant waiting-task counts for ``endpoint_id`` merged across
        shards — the flattened demand signal autoscalers subscribe to."""
        merged: dict[str, int] = {}
        for shard in self._all_shards():
            for tenant, depth in shard.tenant_backlog(endpoint_id).items():
                merged[tenant] = merged.get(tenant, 0) + depth
        return merged

    def get_result_payload(self, token: Token, task_id: str) -> tuple[TaskStatus, Payload]:
        # Never gated on outages: results live in durable shard state — the
        # write-ahead journal holds every result's bytes, so even a
        # state-destroying crash rebuilds them (see ``crash_shard``) — and
        # the data plane stays up while the admission tier restarts.
        return self._shard_for_task(task_id).get_result_payload(token, task_id)

    def next_completed(self, client_id: str, timeout: float | None) -> str | None:
        """One wait covers completions from every shard (shared feed)."""
        return self._completed.next_completed(client_id, timeout)

    def next_completed_batch(
        self, client_id: str, max_n: int = 32, timeout: float | None = None
    ) -> list[str]:
        """Batched drain of the shared completed feed (one wait, many ids)."""
        return self._completed.next_completed_batch(client_id, max_n, timeout)

    # -- endpoint side --------------------------------------------------------
    def fetch_tasks(
        self,
        token: Token,
        endpoint_id: str,
        max_tasks: int,
        timeout: float | None,
    ) -> list[TaskDispatch]:
        """Scatter-gather long-poll across the shard set.

        Each round drains shards non-blockingly, starting from a rotating
        offset so no shard's queues get systematic priority; shards inside
        an outage window are skipped (their backlog is re-announced on
        recovery).  Between rounds the call waits on the router doorbell,
        bumped by any shard's enqueue."""
        deadline = None if timeout is None else self.clock.now() + timeout
        out: list[TaskDispatch] = []
        while True:
            with self._wake:
                seq = self._wake_seq
            self._recover_outages()
            dark = self._dark_shards()
            with self._lock:
                order = sorted(self._shards)
            live = [sid for sid in order if sid not in dark]
            if live:
                offset = next(self._fetch_rotation) % len(live)
                for shard_id in live[offset:] + live[:offset]:
                    got = self.shard(shard_id).fetch_tasks(
                        token, endpoint_id, max_tasks - len(out), 0.0
                    )
                    out.extend(got)
                    if len(out) >= max_tasks:
                        break
            if out:
                return out
            remaining = None
            if deadline is not None:
                remaining = deadline - self.clock.now()
                if remaining <= 0:
                    return out
            interval = _FETCH_POLL if remaining is None else min(remaining, _FETCH_POLL)
            with self._wake:
                if self._wake_seq == seq:
                    self._wake.wait(self.clock.wall_timeout(interval))

    def requeue_dispatched(self, token: Token, endpoint_id: str) -> list[str]:
        requeued: list[str] = []
        for shard in self._all_shards():
            requeued.extend(shard.requeue_dispatched(token, endpoint_id))
        return requeued

    def report_result(
        self,
        token: Token,
        endpoint_id: str,
        task_id: str,
        success: bool,
        result_payload: Payload,
    ) -> None:
        # Like the result read, reporting is never outage-gated: the
        # endpoint uplink must keep draining even while admission throttles.
        self._shard_for_task(task_id).report_result(
            token, endpoint_id, task_id, success, result_payload
        )

    def report_results(
        self,
        token: Token,
        endpoint_id: str,
        results: list[tuple[str, bool, Payload]],
    ) -> list:
        """Batched uplink: scatter the drained results to their owning
        shards (one shard call per group), merging the per-task outcomes
        back into a list aligned with ``results``."""
        outcomes: list = [None] * len(results)
        groups: dict[str, list[int]] = {}
        for i, (task_id, _success, _payload) in enumerate(results):
            shard = self._shard_for_task(task_id)
            groups.setdefault(shard.shard_id, []).append(i)
        for shard_id in sorted(groups):
            indexes = groups[shard_id]
            shard_outcomes = self.shard(shard_id).report_results(
                token, endpoint_id, [results[i] for i in indexes]
            )
            for i, outcome in zip(indexes, shard_outcomes):
                outcomes[i] = outcome
        return outcomes

    def cancel_task(self, token: Token, task_id: str) -> bool:
        """Cancel a still-queued task on its owning shard (hedge losers)."""
        return self._shard_for_task(task_id).cancel_task(token, task_id)

    # -- dead-letter queue -----------------------------------------------------
    def deadletters(self, tenant: str | None = None) -> list:
        """Quarantined entries — one shared tracker, so any shard's view is
        the fleet view."""
        if self.poison is None:
            return []
        return self.poison.entries(tenant)

    def deadletter_drop(self, token: Token, tenant: str, fingerprint: str):
        """Route the drop to the entry's owning shard so the release lands
        in the same journal that recorded the quarantine."""
        if self.poison is None:
            return None
        entry = self.poison.entry(tenant, fingerprint)
        if entry is None:
            return None
        shard_id = self._shard_for_partition(tenant, entry.func_id)
        return self.shard(shard_id).deadletter_drop(token, tenant, fingerprint)

    def deadletter_retry(
        self, token: Token, tenant: str, fingerprint: str, endpoint_id: str
    ) -> str | None:
        """Release + resubmit through the entry's owning shard so the fresh
        task id routes back correctly."""
        if self.poison is None:
            return None
        entry = self.poison.entry(tenant, fingerprint)
        if entry is None:
            return None
        shard_id = self._shard_for_partition(tenant, entry.func_id)
        return self.shard(shard_id).deadletter_retry(
            token, tenant, fingerprint, endpoint_id
        )
