"""One partition of the sharded control plane.

A :class:`CloudShard` *is* a :class:`repro.faas.cloud.FaasCloud` — the whole
single-node engine (registry, queues, payload store, leases, exactly-once
result reporting) — wired into the fabric the router shares across shards:

* the common :class:`~repro.bus.NotificationBus`, so doorbells and result
  notifications from every shard reach the same subscribers;
* the common ``_CompletedFeed``, so one client long-poll observes
  completions from all shards;
* the router's :class:`~repro.tenancy.TenantRegistry`, so dispatches and
  terminal transitions inside the shard release the usage the router
  reserved at admission;
* a shard-local task-id namespace (``task-s2-00000042``) and payload-store
  locator prefix (``s2/redis:...``), which is how the router routes any id
  back to its owning shard without a lookup table.

The shard also charges a *serialized* per-submit admission cost
(``faas_shard_service_time``): each shard is a service with finite
control-plane capacity, so aggregate admission throughput grows with the
shard count — the scaling property the tenancy benchmark measures.
"""

from __future__ import annotations

from repro.bus import NotificationBus
from repro.faas.auth import AuthServer
from repro.faas.cloud import FaasCloud, _CompletedFeed
from repro.net.clock import Clock
from repro.net.defaults import PaperConstants
from repro.net.topology import Network, Site
from repro.observe import gauge_set
from repro.tenancy.tenant import TenantRegistry

__all__ = ["CloudShard"]


class CloudShard(FaasCloud):
    """One shard: a ``FaasCloud`` scoped to a partition of the keyspace."""

    def __init__(
        self,
        shard_id: str,
        site: Site,
        network: Network,
        auth: AuthServer,
        constants: PaperConstants,
        clock: Clock,
        *,
        bus: NotificationBus,
        completed: _CompletedFeed,
        registry: TenantRegistry,
        on_enqueue: object | None = None,
        journal: object | None = None,
        health: object | None = None,
        poison: object | None = None,
    ) -> None:
        super().__init__(
            site,
            network,
            auth,
            constants,
            clock,
            bus=bus,
            completed=completed,
            usage=registry,
            shard_id=shard_id,
            service_time=constants.faas_shard_service_time,
            store_prefix=f"{shard_id}/",
            task_namespace=f"{shard_id}-",
            on_enqueue=on_enqueue,
            journal=journal,
            health=health,
            poison=poison,
        )

    def tenant_backlog(self, endpoint_id: str) -> dict[str, int]:
        """Per-tenant backlog on *this shard's* queues, exported with the
        shard label so autoscalers (and dashboards) can see which partition
        the demand lives on before the router flattens the signal."""
        backlog = super().tenant_backlog(endpoint_id)
        for tenant, depth in backlog.items():
            gauge_set(
                "cloud.shard_backlog",
                depth,
                tenant=tenant,
                endpoint=endpoint_id,
                shard=self.shard_id,
            )
        return backlog
