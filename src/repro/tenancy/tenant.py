"""Tenants: identity scopes, quotas, rate limits, and usage accounting.

The funcX web service the paper builds on is one AWS-hosted deployment
serving *many* research campaigns at once.  This module gives the simulated
control plane the same first-class notion of a tenant:

* an **auth scope** per tenant, layered on :mod:`repro.faas.auth` — a token
  must carry ``tenant_scope(name)`` to act as that tenant;
* **quotas** — in-flight tasks, registered functions, queued argument
  bytes — checked at admission, so one campaign cannot exhaust the cloud;
* a **token-bucket rate limit** on submissions, producing HTTP-429-shaped
  :class:`~repro.exceptions.ThrottledError` responses with a
  ``retry_after`` hint the client SDK honors with backoff;
* a **weight** used by the endpoints' weighted-round-robin fair dequeue.

Validation happens at registration (charset/length), raising the targeted
:class:`~repro.exceptions.InvalidTenantError` /
:class:`~repro.exceptions.InvalidFunctionError` instead of surfacing later
as a ``KeyError`` deep inside a shard.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

from repro.exceptions import (
    InvalidFunctionError,
    InvalidTenantError,
    TenantQuotaExceededError,
)
from repro.net.clock import Clock, get_clock
from repro.observe import counter_inc, gauge_set

__all__ = [
    "DEFAULT_TENANT",
    "tenant_scope",
    "validate_tenant_name",
    "validate_function_name",
    "TenantQuota",
    "TokenBucket",
    "Tenant",
    "TenantUsage",
    "TenantRegistry",
    "render_tenant_table",
]

DEFAULT_TENANT = "default"

#: Lowercase DNS-label-ish names: funcX tenant/group handles travel in URLs
#: and metric labels, so the charset is deliberately conservative.
_TENANT_NAME = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")
#: Function names follow Python identifier rules (they name callables).
_FUNCTION_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]{0,127}$")


def tenant_scope(name: str) -> str:
    """The OAuth-style scope a token must carry to act as tenant ``name``."""
    return f"urn:repro:scopes:tenant.{name}"


def validate_tenant_name(name: object) -> str:
    """Return ``name`` if it is a legal tenant name, else raise."""
    if not isinstance(name, str) or not _TENANT_NAME.match(name):
        raise InvalidTenantError(
            f"invalid tenant name {name!r}: must be 1-64 chars of "
            "[a-z0-9._-] starting with an alphanumeric"
        )
    return name


def validate_function_name(name: object) -> str:
    """Return ``name`` if it is a legal function name, else raise."""
    if not isinstance(name, str) or not _FUNCTION_NAME.match(name):
        raise InvalidFunctionError(
            f"invalid function name {name!r}: must be 1-128 chars of "
            "[A-Za-z0-9_.] starting with a letter or underscore"
        )
    return name


@dataclass(frozen=True)
class TenantQuota:
    """Hard per-tenant ceilings; ``None`` means unlimited."""

    max_in_flight: int | None = None  # submitted but not yet terminal
    max_functions: int | None = None  # registered function bodies
    max_queued_bytes: int | None = None  # argument bytes waiting in queues

    def __post_init__(self) -> None:
        for label, value in (
            ("max_in_flight", self.max_in_flight),
            ("max_functions", self.max_functions),
            ("max_queued_bytes", self.max_queued_bytes),
        ):
            if value is not None and value < 0:
                raise InvalidTenantError(f"{label} must be >= 0, got {value}")


class TokenBucket:
    """A clock-driven token bucket: ``rate`` tokens/nominal-second, holding
    at most ``burst``.  :meth:`acquire` is non-blocking — it either takes a
    token (returns 0.0) or returns the nominal seconds until one exists,
    which becomes the throttle response's ``retry_after`` hint."""

    def __init__(self, rate: float, burst: float, clock: Clock | None = None) -> None:
        if rate <= 0 or burst <= 0:
            raise InvalidTenantError(
                f"rate and burst must be positive, got rate={rate} burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock or get_clock()
        self._tokens = float(burst)
        self._stamp = self._clock.now()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock.now()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available (returns 0.0) or return the nominal
        seconds until they will be."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    def available(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass
class TenantUsage:
    """Live accounting for one tenant (guarded by the registry's lock)."""

    in_flight: int = 0
    queued_bytes: int = 0
    functions: int = 0
    submits: int = 0
    throttled: int = 0


@dataclass
class Tenant:
    """One tenant: fair-share weight, quotas, and its rate limiter."""

    name: str
    weight: int = 1
    quota: TenantQuota = field(default_factory=TenantQuota)
    bucket: TokenBucket | None = None
    usage: TenantUsage = field(default_factory=TenantUsage)


class TenantRegistry:
    """Thread-safe tenant directory + admission control.

    The router owns one registry; every shard holds a reference so that
    terminal transitions and dispatches (which happen inside shards) release
    the right usage immediately, without a round trip through the router.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or get_clock()
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()
        # The default tenant always exists, unlimited and weight-1, so
        # single-tenant rigs (every pre-tenancy caller) work unchanged.
        self.create(DEFAULT_TENANT)

    # -- directory -----------------------------------------------------------
    def create(
        self,
        name: str,
        *,
        weight: int = 1,
        quota: TenantQuota | None = None,
        rate: float | None = None,
        burst: float | None = None,
    ) -> Tenant:
        """Register a tenant; ``rate`` (submits/nominal-second) enables the
        token bucket, with ``burst`` defaulting to 2 s worth of tokens."""
        validate_tenant_name(name)
        if weight < 1:
            raise InvalidTenantError(f"weight must be >= 1, got {weight}")
        bucket = None
        if rate is not None:
            bucket = TokenBucket(
                rate, burst if burst is not None else max(2.0 * rate, 1.0), self._clock
            )
        elif burst is not None:
            raise InvalidTenantError("burst requires a rate")
        tenant = Tenant(name=name, weight=weight, quota=quota or TenantQuota(), bucket=bucket)
        with self._lock:
            if name in self._tenants:
                raise InvalidTenantError(f"tenant {name!r} already exists")
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise InvalidTenantError(
                    f"unknown tenant {name!r}; create it on the router first"
                ) from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def weight(self, name: str) -> int:
        with self._lock:
            tenant = self._tenants.get(name)
            return tenant.weight if tenant is not None else 1

    # -- admission -----------------------------------------------------------
    def admit_function(self, name: str) -> None:
        """Count a function registration against the tenant's quota."""
        tenant = self.get(name)
        with self._lock:
            quota = tenant.quota.max_functions
            if quota is not None and tenant.usage.functions >= quota:
                tenant.usage.throttled += 1
                counter_inc("cloud.throttled", tenant=name, reason="functions")
                raise TenantQuotaExceededError(
                    f"tenant {name!r} is at its registered-function quota "
                    f"({quota}); delete or reuse an existing function",
                    retry_after=0.0,
                )
            tenant.usage.functions += 1

    def admit_submit(self, name: str, nbytes: int) -> None:
        """Admission control for one submit: rate limit, then quotas.
        Raises a retryable throttle error; on success the tenant's
        in-flight/queued-bytes usage is already reserved."""
        tenant = self.get(name)
        if tenant.bucket is not None:
            wait = tenant.bucket.acquire()
            if wait > 0.0:
                with self._lock:
                    tenant.usage.throttled += 1
                counter_inc("cloud.throttled", tenant=name, reason="rate")
                raise TenantQuotaExceededError(
                    f"tenant {name!r} exceeded its submit rate "
                    f"({tenant.bucket.rate:.1f}/s); retry in {wait:.3f}s",
                    retry_after=wait,
                )
        with self._lock:
            usage, quota = tenant.usage, tenant.quota
            if quota.max_in_flight is not None and usage.in_flight >= quota.max_in_flight:
                usage.throttled += 1
                counter_inc("cloud.throttled", tenant=name, reason="in_flight")
                raise TenantQuotaExceededError(
                    f"tenant {name!r} has {usage.in_flight} tasks in flight "
                    f"(quota {quota.max_in_flight}); retry as they complete",
                    retry_after=0.0,
                )
            if (
                quota.max_queued_bytes is not None
                and usage.queued_bytes + nbytes > quota.max_queued_bytes
            ):
                usage.throttled += 1
                counter_inc("cloud.throttled", tenant=name, reason="queued_bytes")
                raise TenantQuotaExceededError(
                    f"tenant {name!r} would have {usage.queued_bytes + nbytes} "
                    f"queued bytes (quota {quota.max_queued_bytes}); retry as "
                    "queued work drains",
                    retry_after=0.0,
                )
            usage.in_flight += 1
            usage.queued_bytes += nbytes
            usage.submits += 1
            gauge_set("cloud.tenant_in_flight", usage.in_flight, tenant=name)

    def release_submit(self, name: str, nbytes: int) -> None:
        """Undo a reservation whose submit was rejected downstream."""
        self.release_batch(name, 1, nbytes)

    def admit_batch(self, name: str, n_tasks: int, total_bytes: int) -> None:
        """Admission control for one *batched* submit: the batch is a single
        API call, so it draws a single rate-bucket token, but it reserves
        every member's in-flight slot and queued bytes atomically — the
        whole batch is admitted or none of it is."""
        tenant = self.get(name)
        if tenant.bucket is not None:
            wait = tenant.bucket.acquire()
            if wait > 0.0:
                with self._lock:
                    tenant.usage.throttled += 1
                counter_inc("cloud.throttled", tenant=name, reason="rate")
                raise TenantQuotaExceededError(
                    f"tenant {name!r} exceeded its submit rate "
                    f"({tenant.bucket.rate:.1f}/s); retry in {wait:.3f}s",
                    retry_after=wait,
                )
        with self._lock:
            usage, quota = tenant.usage, tenant.quota
            if (
                quota.max_in_flight is not None
                and usage.in_flight + n_tasks > quota.max_in_flight
            ):
                usage.throttled += 1
                counter_inc("cloud.throttled", tenant=name, reason="in_flight")
                raise TenantQuotaExceededError(
                    f"tenant {name!r} has {usage.in_flight} tasks in flight; a "
                    f"batch of {n_tasks} would exceed the quota "
                    f"({quota.max_in_flight}); retry as they complete",
                    retry_after=0.0,
                )
            if (
                quota.max_queued_bytes is not None
                and usage.queued_bytes + total_bytes > quota.max_queued_bytes
            ):
                usage.throttled += 1
                counter_inc("cloud.throttled", tenant=name, reason="queued_bytes")
                raise TenantQuotaExceededError(
                    f"tenant {name!r} would have "
                    f"{usage.queued_bytes + total_bytes} queued bytes (quota "
                    f"{quota.max_queued_bytes}); retry as queued work drains",
                    retry_after=0.0,
                )
            usage.in_flight += n_tasks
            usage.queued_bytes += total_bytes
            usage.submits += n_tasks
            gauge_set("cloud.tenant_in_flight", usage.in_flight, tenant=name)

    def release_batch(self, name: str, n_tasks: int, total_bytes: int) -> None:
        """Undo (part of) a batch reservation rejected downstream."""
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                return
            tenant.usage.in_flight = max(0, tenant.usage.in_flight - n_tasks)
            tenant.usage.queued_bytes = max(
                0, tenant.usage.queued_bytes - total_bytes
            )
            tenant.usage.submits = max(0, tenant.usage.submits - n_tasks)

    # -- lifecycle notifications (called by shards) ---------------------------
    def task_dispatched(self, name: str, nbytes: int) -> None:
        """Arguments left a queue for an endpoint: queued bytes drop."""
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is not None:
                tenant.usage.queued_bytes = max(0, tenant.usage.queued_bytes - nbytes)

    def task_requeued(self, name: str, nbytes: int) -> None:
        """A dispatched task went back to WAITING (crash/failover)."""
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is not None:
                tenant.usage.queued_bytes += nbytes

    def task_finished(self, name: str) -> None:
        """A task reached a terminal state: in-flight headroom returns."""
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is not None:
                tenant.usage.in_flight = max(0, tenant.usage.in_flight - 1)
                gauge_set("cloud.tenant_in_flight", tenant.usage.in_flight, tenant=name)

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> list[Tenant]:
        with self._lock:
            return [self._tenants[name] for name in sorted(self._tenants)]


def _limit(value: int | None) -> str:
    return "-" if value is None else str(value)


def render_tenant_table(registry: TenantRegistry) -> str:
    """A fixed-width per-tenant usage/quota table (the ``repro.cli tenants``
    output).  One row per tenant, sorted by name."""
    header = (
        "tenant",
        "weight",
        "rate/s",
        "in-flight",
        "fn",
        "queued-B",
        "submits",
        "throttled",
    )
    rows: list[tuple[str, ...]] = [header]
    for tenant in registry.snapshot():
        usage, quota = tenant.usage, tenant.quota
        rate = "-" if tenant.bucket is None else f"{tenant.bucket.rate:g}"
        rows.append(
            (
                tenant.name,
                str(tenant.weight),
                rate,
                f"{usage.in_flight}/{_limit(quota.max_in_flight)}",
                f"{usage.functions}/{_limit(quota.max_functions)}",
                f"{usage.queued_bytes}/{_limit(quota.max_queued_bytes)}",
                str(usage.submits),
                str(usage.throttled),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip() for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)
