"""Cloud-managed data transfer (the Globus Transfer substitute)."""

from repro.transfer.client import TransferClient
from repro.transfer.service import (
    TransferEndpoint,
    TransferItem,
    TransferService,
    TransferStatus,
    TransferTask,
)

__all__ = [
    "TransferClient",
    "TransferEndpoint",
    "TransferItem",
    "TransferService",
    "TransferStatus",
    "TransferTask",
]
