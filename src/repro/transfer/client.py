"""Client SDK for the simulated transfer service.

Separating client from service matters because the *client* pays the
costs the paper measures: each API call is an HTTPS request that rides the
caller-site→cloud link and then waits on the web service's processing
latency (≈500 ms median for submissions, §V-D1).

The client also owns end-to-end recovery: :meth:`TransferClient.transfer`
submits, waits, and — under a :class:`repro.chaos.RetryPolicy` — resubmits
the whole task with backoff when the service reports a terminal failure,
while :meth:`TransferClient.wait` cancels abandoned tasks on timeout so
they stop holding a slot of the per-user concurrency limit.
"""

from __future__ import annotations

import hashlib

from repro.chaos.policy import RetryPolicy
from repro.exceptions import DeadlineExceededError, RetryExhaustedError, TransferError
from repro.net.clock import Clock, get_clock
from repro.net.context import current_site
from repro.net.defaults import PaperConstants
from repro.net.topology import LogNormalLatency, Network, Site
from repro.observe import counter_inc, current_context
from repro.transfer.service import (
    TransferItem,
    TransferService,
    TransferStatus,
    TransferTask,
)

__all__ = ["TransferClient"]

# Status polls are lighter-weight GET requests than transfer submissions.
_STATUS_LATENCY = LogNormalLatency(0.12, 0.30, cap=0.8)


class TransferClient:
    """A per-user handle on the transfer service.

    The client is pickleable state-free glue (service handles are looked up
    through the object graph), so it can ride inside proxies' factories.
    """

    def __init__(
        self,
        service: TransferService,
        user: str = "default",
        *,
        site: Site | None = None,
        clock: Clock | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self._service = service
        self._network: Network = service._network
        self._constants: PaperConstants = service._constants
        self.user = user
        self._site = site
        self._clock = clock or get_clock()
        self._retry_policy = retry_policy

    def _caller_site(self) -> Site:
        return self._site or current_site() or self._service.site

    def _pay_request(self, processing: float) -> None:
        caller = self._caller_site()
        cost = self._network.rtt(caller, self._service.site) + processing
        self._clock.sleep(cost)

    # -- API --------------------------------------------------------------
    def submit(
        self,
        src_endpoint: str,
        dst_endpoint: str,
        items: list[TransferItem] | list[tuple[str, str]],
    ) -> str:
        """Submit a transfer task; returns its id after the HTTPS round trip."""
        # Capture the caller's span before the blocking request so the
        # service-side ``globus.transfer`` span lands in the right trace.
        trace_ctx = current_context()
        self._pay_request(
            self._network._sample(self._constants.globus_request_latency)
        )
        return self._service.submit(
            self.user, src_endpoint, dst_endpoint, items, trace_ctx=trace_ctx
        )

    def status(self, task_id: str) -> TransferStatus:
        self._pay_request(self._network._sample(_STATUS_LATENCY))
        return self._service.status(task_id).status

    def task(self, task_id: str) -> TransferTask:
        self._pay_request(self._network._sample(_STATUS_LATENCY))
        return self._service.status(task_id)

    def cancel(self, task_id: str) -> bool:
        """Request cancellation of a transfer; returns False if it had
        already reached a terminal state."""
        self._pay_request(self._network._sample(_STATUS_LATENCY))
        return self._service.cancel(task_id)

    def wait(
        self,
        task_id: str,
        timeout: float | None = None,
        *,
        cancel_on_timeout: bool = True,
    ) -> TransferTask:
        """Block (on the task's completion event, then confirm with a status
        call) until the task reaches a terminal state.

        Timeout is in nominal seconds.  Raises :class:`TransferError` if the
        task failed or the wait timed out.  An abandoned (timed-out) task is
        cancelled by default so it stops holding one of the user's
        concurrent-transfer slots.
        """
        task = self._service.status(task_id)
        if not task.done_event.wait(self._clock.wall_timeout(timeout)):
            if cancel_on_timeout:
                counter_inc("transfer.wait_timeouts", user=self.user)
                self.cancel(task_id)
            raise TransferError(f"timed out waiting for transfer {task_id}")
        # One confirming status poll, like the SDK's task_wait.
        self._pay_request(self._network._sample(_STATUS_LATENCY))
        if task.status is not TransferStatus.SUCCEEDED:
            raise TransferError(
                f"transfer {task_id} failed: {task.error or 'unknown error'}"
            )
        return task

    def transfer(
        self,
        src_endpoint: str,
        dst_endpoint: str,
        items: list[TransferItem] | list[tuple[str, str]],
        *,
        timeout: float | None = None,
    ) -> TransferTask:
        """Submit and wait, retrying the whole task under the retry policy.

        The service already requeues individual attempt failures internally
        (``TransferService.MAX_RETRIES``); this wrapper is the client-side
        last line of defense for tasks that failed *terminally* or timed
        out.  Without a policy it is plain submit-and-wait.
        """
        policy = self._retry_policy
        retry_key = hashlib.sha256(
            "|".join(
                sorted(
                    it.dst_path if isinstance(it, TransferItem) else it[1]
                    for it in items
                )
            ).encode()
        ).hexdigest()[:16]
        attempt = 0
        while True:
            task_id = self.submit(src_endpoint, dst_endpoint, items)
            try:
                return self.wait(task_id, timeout)
            except (TransferError, DeadlineExceededError) as exc:
                if policy is None:
                    raise
                if not policy.retries_left(attempt):
                    raise RetryExhaustedError(
                        f"transfer to {dst_endpoint!r} failed after "
                        f"{attempt + 1} attempts: {exc}",
                        attempts=attempt + 1,
                        last_error=str(exc),
                    ) from exc
                counter_inc("transfer.client_retries", user=self.user)
                self._clock.sleep(policy.delay_for(attempt, key=retry_key))
                attempt += 1
