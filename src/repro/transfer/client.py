"""Client SDK for the simulated transfer service.

Separating client from service matters because the *client* pays the
costs the paper measures: each API call is an HTTPS request that rides the
caller-site→cloud link and then waits on the web service's processing
latency (≈500 ms median for submissions, §V-D1).
"""

from __future__ import annotations

from repro.exceptions import TransferError
from repro.net.clock import Clock, get_clock
from repro.net.context import current_site
from repro.net.defaults import PaperConstants
from repro.net.topology import LogNormalLatency, Network, Site
from repro.observe import current_context
from repro.transfer.service import (
    TransferItem,
    TransferService,
    TransferStatus,
    TransferTask,
)

__all__ = ["TransferClient"]

# Status polls are lighter-weight GET requests than transfer submissions.
_STATUS_LATENCY = LogNormalLatency(0.12, 0.30, cap=0.8)


class TransferClient:
    """A per-user handle on the transfer service.

    The client is pickleable state-free glue (service handles are looked up
    through the object graph), so it can ride inside proxies' factories.
    """

    def __init__(
        self,
        service: TransferService,
        user: str = "default",
        *,
        site: Site | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._service = service
        self._network: Network = service._network
        self._constants: PaperConstants = service._constants
        self.user = user
        self._site = site
        self._clock = clock or get_clock()

    def _caller_site(self) -> Site:
        return self._site or current_site() or self._service.site

    def _pay_request(self, processing: float) -> None:
        caller = self._caller_site()
        cost = self._network.rtt(caller, self._service.site) + processing
        self._clock.sleep(cost)

    # -- API --------------------------------------------------------------
    def submit(
        self,
        src_endpoint: str,
        dst_endpoint: str,
        items: list[TransferItem] | list[tuple[str, str]],
    ) -> str:
        """Submit a transfer task; returns its id after the HTTPS round trip."""
        # Capture the caller's span before the blocking request so the
        # service-side ``globus.transfer`` span lands in the right trace.
        trace_ctx = current_context()
        self._pay_request(
            self._network._sample(self._constants.globus_request_latency)
        )
        return self._service.submit(
            self.user, src_endpoint, dst_endpoint, items, trace_ctx=trace_ctx
        )

    def status(self, task_id: str) -> TransferStatus:
        self._pay_request(self._network._sample(_STATUS_LATENCY))
        return self._service.status(task_id).status

    def task(self, task_id: str) -> TransferTask:
        self._pay_request(self._network._sample(_STATUS_LATENCY))
        return self._service.status(task_id)

    def wait(self, task_id: str, timeout: float | None = None) -> TransferTask:
        """Block (on the task's completion event, then confirm with a status
        call) until the task reaches a terminal state.

        Timeout is in nominal seconds.  Raises :class:`TransferError` if the
        task failed or the wait timed out.
        """
        task = self._service.status(task_id)
        if not task.done_event.wait(self._clock.wall_timeout(timeout)):
            raise TransferError(f"timed out waiting for transfer {task_id}")
        # One confirming status poll, like the SDK's task_wait.
        self._pay_request(self._network._sample(_STATUS_LATENCY))
        if task.status is not TransferStatus.SUCCEEDED:
            raise TransferError(
                f"transfer {task_id} failed: {task.error or 'unknown error'}"
            )
        return task
